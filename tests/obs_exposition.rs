//! Golden vector for the metrics text exposition: a committed byte-exact
//! rendering of a registry populated with literal values, guarding the
//! scrape format against accidental drift.
//!
//! The exposition promises determinism — name-sorted metrics, ascending
//! cumulative buckets, no timestamps — so the same registry state must
//! always render the same bytes. Anything that changes this file's output
//! (bucket layout, quantile summary, line order) changes what every
//! scraper and the bench harness parse; if the change is intentional,
//! bless a new vector with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test obs_exposition
//! ```
//!
//! and review the `tests/golden/obs_exposition.txt` diff like any other
//! format change.

use oma_drm2::obs::{Obs, Registry};
use std::path::PathBuf;
use std::sync::Arc;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("obs_exposition.txt")
}

/// A registry exercising all three metric kinds with the real metric
/// names the server cores register, populated from literals only — no
/// RNG, no clocks — so the rendered text depends on nothing but the
/// exposition code and the histogram's bucket layout.
fn populated() -> Arc<Obs> {
    let obs = Obs::new();
    let r: &Registry = obs.registry();

    r.counter("net_accepted_total").add(12);
    r.counter("net_served_total").add(9);
    r.counter("net_shed_total").add(2);
    r.gauge("net_active").set(1);
    r.gauge("net_active_peak").set(4);

    // Values straddling the linear range, one log bucket boundary and a
    // repeat — enough to exercise cumulative bucket lines and the
    // quantile summary comment.
    let frame = r.histogram("net_frame_nanos");
    for v in [3u64, 3, 15, 16, 17, 250, 4_096, 1_000_000] {
        frame.record(v);
    }
    let queue = r.histogram("net_queue_wait_nanos");
    queue.record(0);
    queue.record(u64::MAX); // clamped into the top bucket, not lost

    obs
}

#[test]
fn text_exposition_matches_the_committed_golden_vector() {
    let rendered = populated().render_text();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden vector {}: {e}", path.display()));
    assert_eq!(
        rendered, expected,
        "metrics exposition drift detected; if intentional, re-bless with \
         UPDATE_GOLDEN=1 and review the tests/golden/obs_exposition.txt diff"
    );
}

/// The golden vector stays self-consistent: every `_count` line agrees
/// with its `+Inf` bucket, and rendering twice yields identical bytes.
#[test]
fn exposition_is_deterministic_across_renders() {
    let obs = populated();
    assert_eq!(obs.render_text(), obs.render_text());
}
