//! Trace-accounting tests: the lock-free sharded counters inside
//! [`CryptoEngine`] must account exactly like the mutex-guarded `OpTrace`
//! they replaced — same counts over the full end-to-end lifecycle
//! (Registration → Acquisition → Installation → Consumption), consistent
//! snapshot/take semantics, and no lost updates under concurrency.

use oma_drm2::crypto::{Algorithm, CryptoEngine, OpTrace};
use oma_drm2::drm::{ContentIssuer, DrmAgent, Permission, RightsIssuer, RightsTemplate};
use oma_drm2::pki::{CertificationAuthority, Timestamp};
use rand::SeedableRng;
use std::sync::{Arc, Mutex};

struct Lifecycle {
    ri: RightsIssuer,
    agent: DrmAgent,
    dcf: oma_drm2::drm::Dcf,
}

fn lifecycle(seed: u64) -> Lifecycle {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut ca = CertificationAuthority::new("cmla", 512, &mut rng);
    let mut ri = RightsIssuer::new("ri.example.com", 512, &mut ca, &mut rng);
    let ci = ContentIssuer::new("ci.example.com");
    let agent = DrmAgent::new("phone-001", 512, &mut ca, &mut rng);
    let (dcf, cek) = ci.package(&vec![0x5au8; 4096], "cid:track", &mut rng);
    ri.add_content(
        "cid:track",
        cek,
        &dcf,
        RightsTemplate::unlimited(Permission::Play),
    );
    Lifecycle { ri, agent, dcf }
}

/// Drives the four phases and returns the per-phase traces taken from the
/// engine (the measured runner's access pattern).
fn run_phases(world: &mut Lifecycle) -> [OpTrace; 4] {
    let now = Timestamp::new(1_000);
    world.agent.engine().reset_trace();

    world.agent.register_with(world.ri.service(), now).unwrap();
    let registration = world.agent.engine().take_trace();

    let response = world
        .agent
        .acquire_rights_with(world.ri.service(), "cid:track", now)
        .unwrap();
    let acquisition = world.agent.engine().take_trace();

    let ro_id = world.agent.install_rights(&response, now).unwrap();
    let installation = world.agent.engine().take_trace();

    world
        .agent
        .consume(&ro_id, &world.dcf, Permission::Play, now)
        .unwrap();
    let consumption = world.agent.engine().take_trace();

    [registration, acquisition, installation, consumption]
}

#[test]
fn per_phase_takes_equal_one_cumulative_snapshot() {
    // Run the identical seeded lifecycle twice: once taking the trace at
    // every phase boundary, once only snapshotting at the end. The merged
    // phase traces must equal the cumulative trace — exactly what held for
    // the mutex-guarded recorder.
    let mut taken = lifecycle(0xface);
    let phases = run_phases(&mut taken);
    let mut merged = OpTrace::new();
    for phase in &phases {
        merged.merge(phase);
    }

    let mut snapshotted = lifecycle(0xface);
    let now = Timestamp::new(1_000);
    snapshotted.agent.engine().reset_trace();
    snapshotted
        .agent
        .register_with(snapshotted.ri.service(), now)
        .unwrap();
    let response = snapshotted
        .agent
        .acquire_rights_with(snapshotted.ri.service(), "cid:track", now)
        .unwrap();
    let ro_id = snapshotted.agent.install_rights(&response, now).unwrap();
    snapshotted
        .agent
        .consume(&ro_id, &snapshotted.dcf, Permission::Play, now)
        .unwrap();
    let cumulative = snapshotted.agent.engine().trace();

    assert_eq!(merged, cumulative);
    // Snapshotting does not consume: the trace is still there.
    assert_eq!(snapshotted.agent.engine().trace(), cumulative);
    // Taking does consume.
    assert_eq!(snapshotted.agent.engine().take_trace(), cumulative);
    assert!(snapshotted.agent.engine().trace().is_empty());
}

#[test]
fn lifecycle_counts_match_the_seed_recorder_exactly() {
    // The exact per-phase counts the mutex-guarded implementation recorded
    // on this lifecycle (asserted by the seed's test suite); the lock-free
    // shards must reproduce them.
    let mut world = lifecycle(0xbeef);
    let [registration, acquisition, installation, consumption] = run_phases(&mut world);

    assert_eq!(registration.count(Algorithm::RsaPrivate).invocations, 1);
    assert_eq!(registration.count(Algorithm::RsaPublic).invocations, 3);

    assert_eq!(acquisition.count(Algorithm::RsaPrivate).invocations, 1);
    assert_eq!(acquisition.count(Algorithm::RsaPublic).invocations, 1);

    assert_eq!(installation.count(Algorithm::RsaPrivate).invocations, 1);
    assert_eq!(installation.count(Algorithm::HmacSha1).invocations, 1);
    assert!(installation.count(Algorithm::AesDecrypt).blocks > 0);
    assert!(installation.count(Algorithm::AesEncrypt).blocks > 0);

    assert_eq!(consumption.count(Algorithm::RsaPrivate).invocations, 0);
    assert_eq!(consumption.count(Algorithm::RsaPublic).invocations, 0);
    assert_eq!(consumption.count(Algorithm::HmacSha1).invocations, 1);
    assert_eq!(consumption.count(Algorithm::Sha1).invocations, 1);
    // 4096 bytes of content: 257 ciphertext blocks, plus the two key unwraps
    // (24 + 12 block operations).
    assert_eq!(
        consumption.count(Algorithm::AesDecrypt).blocks,
        257 + 24 + 12
    );
}

#[test]
fn lock_free_counters_match_a_mutex_reference_under_concurrency() {
    // Hammer one shared engine from several threads while mirroring every
    // operation into a mutex-guarded reference OpTrace (the old recorder's
    // data structure). No update may be lost or double-counted.
    let engine = Arc::new(CryptoEngine::with_seed(1));
    let reference = Arc::new(Mutex::new(OpTrace::new()));
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let engine = Arc::clone(&engine);
        let reference = Arc::clone(&reference);
        handles.push(std::thread::spawn(move || {
            for i in 0..250usize {
                let data = vec![t as u8; 16 * (i % 7 + 1)];
                engine.sha1(&data);
                reference
                    .lock()
                    .unwrap()
                    .record(Algorithm::Sha1, 1, (i as u64 % 7) + 1);
                engine.hmac_sha1(b"key", &data);
                reference
                    .lock()
                    .unwrap()
                    .record(Algorithm::HmacSha1, 1, (i as u64 % 7) + 1);
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let lock_free = engine.take_trace();
    let mutex_reference = reference.lock().unwrap().clone();
    assert_eq!(lock_free, mutex_reference);
    assert_eq!(lock_free.total_invocations(), 4 * 250 * 2);
}

#[test]
fn cycle_meter_agrees_with_priced_trace_on_the_full_lifecycle() {
    // The backend's lock-free cycle meter is the second view of the same
    // accounting: over the whole lifecycle it must equal the Table 1
    // software pricing of the recorded trace, to the cycle.
    use oma_drm2::perf::arch::Architecture;
    use oma_drm2::perf::cost::CostTable;

    let mut world = lifecycle(0xcafe);
    world.agent.engine().take_charged_cycles();
    let phases = run_phases(&mut world);
    let charged = world.agent.engine().charged_cycles();

    let mut merged = OpTrace::new();
    for phase in &phases {
        merged.merge(phase);
    }
    let priced = Architecture::software().cycles(&merged, &CostTable::paper());
    assert_eq!(charged, priced);
}
