//! Acceptance tests for ROAP over real sockets: the full device lifecycle
//! completes against a loopback `RoapTcpServer`, and the bytes that come
//! back — `ROResponse` frames, Rights Issuer PSS signatures and all — are
//! **identical** to what the in-process `RiService::dispatch` path
//! produces, even when the client deliberately mangles TCP framing
//! (one-byte writes, two frames coalesced into a single write).
//!
//! The comparison trick is the same as `wire_lifecycle`: two worlds built
//! from one seed, so both agents emit byte-identical request frames; one
//! world answers them in-process, the other across the socket.

use oma_drm2::drm::client::RoapClient;
use oma_drm2::drm::{
    ContentIssuer, Dcf, DrmAgent, DrmError, Permission, RiService, RightsTemplate, RoapPdu,
};
use oma_drm2::load::{run_fleet_tcp, run_sequential, FleetSpec};
use oma_drm2::net::{read_frame, RoapTcpServer, ServerConfig, TcpTransport};
use oma_drm2::pki::{CertificationAuthority, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

const SEED: u64 = 0x07e5_7ec9;
const BITS: usize = 512;

fn now() -> Timestamp {
    Timestamp::new(1_000)
}

struct World {
    service: Arc<RiService>,
    agent: DrmAgent,
    dcf_a: Dcf,
}

/// Builds a deterministic world: CA, service with two catalogue entries, and
/// one agent — all from `SEED`, in a fixed construction order, so two worlds
/// are bit-for-bit clones of each other.
fn world() -> World {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut ca = CertificationAuthority::new("cmla", BITS, &mut rng);
    let service = RiService::new("ri.example.com", BITS, &mut ca, &mut rng);
    let ci = ContentIssuer::new("ci.example.com");
    let (dcf_a, cek_a) = ci.package(b"track one, protected", "cid:a", &mut rng);
    let (dcf_b, cek_b) = ci.package(b"track two, protected", "cid:b", &mut rng);
    service.add_content(
        "cid:a",
        cek_a,
        &dcf_a,
        RightsTemplate::unlimited(Permission::Play),
    );
    service.add_content(
        "cid:b",
        cek_b,
        &dcf_b,
        RightsTemplate::unlimited(Permission::Play),
    );
    let agent = DrmAgent::new("phone-001", BITS, &mut ca, &mut rng);
    World {
        service: Arc::new(service),
        agent,
        dcf_a,
    }
}

/// The full lifecycle through a `RoapClient<TcpTransport>` produces the same
/// protocol outcome as the in-process client, and the `ROResponse` frames —
/// covering the RI signature, the RO MAC and the wrapped keys — are
/// byte-identical between the two paths.
#[test]
fn tcp_lifecycle_matches_in_proc_byte_for_byte() {
    // World 1: in-process.
    let World {
        service,
        mut agent,
        dcf_a,
    } = world();
    let in_proc = RoapClient::in_proc(&service);
    agent.register_via(&in_proc, now()).unwrap();
    let reference = agent
        .acquire_rights_via(&in_proc, "ri.example.com", "cid:a", now())
        .unwrap();
    let ro_id = agent.install_rights(&reference, now()).unwrap();
    let reference_plain = agent
        .consume(&ro_id, &dcf_a, Permission::Play, now())
        .unwrap();

    // World 2: the same bytes, across a real socket.
    let World {
        service,
        mut agent,
        dcf_a,
    } = world();
    let server = RoapTcpServer::bind(
        Arc::clone(&service),
        ServerConfig {
            workers: 2,
            clock: Some(now()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let client = RoapClient::new(TcpTransport::connect(server.local_addr()).unwrap());
    agent.register_via(&client, now()).unwrap();
    let over_tcp = agent
        .acquire_rights_via(&client, "ri.example.com", "cid:a", now())
        .unwrap();
    let ro_id = agent.install_rights(&over_tcp, now()).unwrap();
    let tcp_plain = agent
        .consume(&ro_id, &dcf_a, Permission::Play, now())
        .unwrap();

    assert_eq!(
        RoapPdu::RoResponse(reference).encode(),
        RoapPdu::RoResponse(over_tcp).encode(),
        "the ROResponse crossing TCP must be byte-identical to the in-process one"
    );
    assert_eq!(reference_plain, tcp_plain);
    assert_eq!(service.issued_ro_count(), 1);

    drop(client);
    server.shutdown();
}

/// Frames chopped into 1-byte TCP writes and frames coalesced two-per-write
/// both reach `dispatch` intact: the responses are byte-identical to the
/// in-process path answering the very same request frames.
#[test]
fn split_and_coalesced_frames_decode_identically() {
    // World 1 answers every frame in-process — the reference bytes. (Only
    // its service is needed: the request frames come from the TCP world's
    // agent, and both worlds are seeded clones.)
    let reference_world = world();

    // World 2 is served over TCP with hostile framing.
    let tcp_world = world();
    let mut agent = tcp_world.agent;
    let server = RoapTcpServer::bind(
        Arc::clone(&tcp_world.service),
        ServerConfig {
            workers: 1,
            clock: Some(now()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    // Pass 1-2: the DeviceHello crosses the wire one byte per write.
    let hello_frame =
        RoapPdu::DeviceHello(oma_drm2::drm::roap::DeviceHello::new("phone-001")).encode();
    for byte in &hello_frame {
        stream.write_all(&[*byte]).unwrap();
    }
    let ri_hello_frame = read_frame(&mut stream).unwrap();
    assert_eq!(
        ri_hello_frame,
        reference_world.service.dispatch(&hello_frame),
        "a frame reassembled from 1-byte segments must decode identically"
    );
    let hello = match RoapPdu::decode(&ri_hello_frame).unwrap() {
        RoapPdu::RiHello(h) => h,
        other => panic!("expected RiHello, got {other:?}"),
    };

    // Pass 3-4: the signed RegistrationRequest goes out in 7-byte chunks.
    let request = agent.registration_request(&hello, now()).unwrap();
    let request_frame = RoapPdu::RegistrationRequest(request.clone()).encode();
    for chunk in request_frame.chunks(7) {
        stream.write_all(chunk).unwrap();
    }
    let response_frame = read_frame(&mut stream).unwrap();
    assert_eq!(
        response_frame,
        reference_world.service.dispatch(&request_frame)
    );
    let response = match RoapPdu::decode(&response_frame).unwrap() {
        RoapPdu::RegistrationResponse(r) => r,
        other => panic!("expected RegistrationResponse, got {other:?}"),
    };
    agent
        .complete_registration(&hello, &request, &response, now())
        .unwrap();

    // Acquisition: two RORequests coalesced into ONE TCP write; the server
    // must slice them apart and answer each in order.
    let ro_a = agent
        .ro_request("ri.example.com", "cid:a", None, now())
        .unwrap();
    let ro_b = agent
        .ro_request("ri.example.com", "cid:b", None, now())
        .unwrap();
    let frame_a = RoapPdu::RoRequest(ro_a.clone()).encode();
    let frame_b = RoapPdu::RoRequest(ro_b.clone()).encode();
    let coalesced: Vec<u8> = [frame_a.clone(), frame_b.clone()].concat();
    stream.write_all(&coalesced).unwrap();
    let tcp_response_a = read_frame(&mut stream).unwrap();
    let tcp_response_b = read_frame(&mut stream).unwrap();
    assert_eq!(
        tcp_response_a,
        reference_world.service.dispatch(&frame_a),
        "first coalesced frame must be answered byte-identically"
    );
    assert_eq!(
        tcp_response_b,
        reference_world.service.dispatch(&frame_b),
        "second coalesced frame must be answered byte-identically"
    );

    // And the responses verify: same signatures, same wrapped keys.
    for (request, frame) in [(ro_a, tcp_response_a), (ro_b, tcp_response_b)] {
        let response = match RoapPdu::decode(&frame).unwrap() {
            RoapPdu::RoResponse(r) => r,
            other => panic!("expected RoResponse, got {other:?}"),
        };
        agent.verify_ro_response(&request, &response).unwrap();
    }

    assert_eq!(tcp_world.service.issued_ro_count(), 2);
    drop(stream);
    server.shutdown();
}

/// The TCP fleet driver reports the same deterministic observables — RO
/// ids, content digests, per-phase traces and cycle bills — as the
/// single-threaded in-process reference. Registration counts come from the
/// server-side service, so nothing is lost across connection churn.
#[test]
fn tcp_fleet_matches_sequential_reference() {
    let spec = FleetSpec::new(6, 3);
    let tcp = run_fleet_tcp(&spec).unwrap();
    let reference = run_sequential(&spec).unwrap();
    assert_eq!(tcp.registrations, spec.devices as u64);
    assert!(tcp.duplicate_ro_ids().is_empty());
    assert!(
        tcp.matches(&reference),
        "loopback TCP must not change any deterministic observable"
    );
}

/// A dead client connection ends its conversation with a clean transport
/// error server-side, and a shut-down server refuses further roundtrips
/// with a clean transport error client-side.
#[test]
fn disconnects_surface_cleanly_on_both_ends() {
    let World { service, .. } = world();
    let server = RoapTcpServer::bind(
        service,
        ServerConfig {
            workers: 1,
            clock: Some(now()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let client = RoapClient::new(TcpTransport::connect(server.local_addr()).unwrap());
    client
        .hello(&oma_drm2::drm::roap::DeviceHello::new("phone-001"))
        .unwrap();
    server.shutdown();
    let err = client
        .hello(&oma_drm2::drm::roap::DeviceHello::new("phone-001"))
        .unwrap_err();
    assert!(matches!(err, DrmError::Transport(_)), "got {err:?}");
}
