//! Acceptance test for the wire redesign: the full lifecycle —
//! Registration → Acquisition → Installation → Consumption → Join Domain →
//! Domain Acquisition → Leave Domain — completes over a
//! `RoapClient<ChannelTransport>` (a real serialized byte channel with the
//! service dispatching on another thread), and produces **byte-identical
//! signatures and identical crypto cycle counts** to the direct-call path.
//!
//! Two independent worlds are built from the same seed; one is driven
//! through `*_with(&RiService)` calls, the other through encoded PDU frames
//! over the channel. Everything deterministic must match: the encoded
//! `ROResponse` frames (covering the Rights Issuer PSS signatures, the RO
//! MAC and the wrapped keys byte for byte), the recovered plaintexts, the
//! per-phase operation traces and the per-phase cycle totals charged by the
//! metered backend.

use oma_drm2::crypto::backend::{CryptoBackend, SoftwareBackend};
use oma_drm2::crypto::OpTrace;
use oma_drm2::drm::client::{serve, ChannelTransport, RoapClient};
use oma_drm2::drm::{
    ContentIssuer, Dcf, DomainId, DrmAgent, DrmError, Permission, RiService, RightsTemplate,
    RoapPdu,
};
use oma_drm2::pki::{CertificationAuthority, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const SEED: u64 = 0x0a7e_57a7;
const BITS: usize = 512;

struct World {
    service: RiService,
    agent: DrmAgent,
    backend: Arc<SoftwareBackend>,
    dcf: Dcf,
    domain: DomainId,
}

fn world() -> World {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut ca = CertificationAuthority::new("cmla", BITS, &mut rng);
    let service = RiService::new("ri.example.com", BITS, &mut ca, &mut rng);
    let ci = ContentIssuer::new("ci.example.com");
    let (dcf, cek) = ci.package(b"wire-identical audio bytes", "cid:track", &mut rng);
    service.add_content(
        "cid:track",
        cek,
        &dcf,
        RightsTemplate::unlimited(Permission::Play),
    );
    let domain = service.create_domain("family", 4);
    let backend = Arc::new(SoftwareBackend::new());
    let agent = DrmAgent::with_backend(
        "phone-001",
        BITS,
        &mut ca,
        Arc::<SoftwareBackend>::clone(&backend),
        &mut rng,
    );
    World {
        service,
        agent,
        backend,
        dcf,
        domain,
    }
}

/// Everything deterministic one lifecycle run produces.
#[derive(Debug, PartialEq)]
struct Outcome {
    ro_response_frame: Vec<u8>,
    domain_ro_response_frame: Vec<u8>,
    plaintexts: Vec<Vec<u8>>,
    phase_traces: Vec<OpTrace>,
    phase_cycles: Vec<u64>,
}

/// Drives the whole lifecycle, with `acquire` and friends abstracted over
/// the two paths via closures so both runs share the exact phase structure.
fn run_lifecycle(direct: bool) -> Outcome {
    let w = world();
    let World {
        service,
        mut agent,
        backend,
        dcf,
        domain,
    } = w;
    let now = Timestamp::new(1_000);

    let mut phase_traces = Vec::new();
    let mut phase_cycles = Vec::new();
    let mut plaintexts = Vec::new();

    agent.engine().reset_trace();
    backend.take_charged_cycles();

    let (ro_frame, domain_ro_frame) = if direct {
        agent.register_with(&service, now).unwrap();
        phase_traces.push(agent.engine().take_trace());
        phase_cycles.push(backend.take_charged_cycles());

        let response = agent
            .acquire_rights_with(&service, "cid:track", now)
            .unwrap();
        phase_traces.push(agent.engine().take_trace());
        phase_cycles.push(backend.take_charged_cycles());

        let ro_id = agent.install_rights(&response, now).unwrap();
        plaintexts.push(agent.consume(&ro_id, &dcf, Permission::Play, now).unwrap());
        phase_traces.push(agent.engine().take_trace());
        phase_cycles.push(backend.take_charged_cycles());

        agent.join_domain_with(&service, &domain, now).unwrap();
        let domain_response = agent
            .acquire_domain_rights_with(&service, "cid:track", &domain, now)
            .unwrap();
        let domain_ro_id = agent.install_rights(&domain_response, now).unwrap();
        plaintexts.push(
            agent
                .consume(&domain_ro_id, &dcf, Permission::Play, now)
                .unwrap(),
        );
        agent.leave_domain_with(&service, &domain).unwrap();
        phase_traces.push(agent.engine().take_trace());
        phase_cycles.push(backend.take_charged_cycles());

        (
            RoapPdu::RoResponse(response).encode(),
            RoapPdu::RoResponse(domain_response).encode(),
        )
    } else {
        let (client_end, server_end) = ChannelTransport::pair();
        std::thread::scope(|scope| {
            let service_ref = &service;
            let server = scope.spawn(move || serve(service_ref, &server_end));
            let client = RoapClient::new(client_end);

            agent.register_via(&client, now).unwrap();
            phase_traces.push(agent.engine().take_trace());
            phase_cycles.push(backend.take_charged_cycles());

            let response = agent
                .acquire_rights_via(&client, "ri.example.com", "cid:track", now)
                .unwrap();
            phase_traces.push(agent.engine().take_trace());
            phase_cycles.push(backend.take_charged_cycles());

            let ro_id = agent.install_rights(&response, now).unwrap();
            plaintexts.push(agent.consume(&ro_id, &dcf, Permission::Play, now).unwrap());
            phase_traces.push(agent.engine().take_trace());
            phase_cycles.push(backend.take_charged_cycles());

            agent
                .join_domain_via(&client, "ri.example.com", &domain, now)
                .unwrap();
            let domain_response = agent
                .acquire_domain_rights_via(&client, "ri.example.com", "cid:track", &domain, now)
                .unwrap();
            let domain_ro_id = agent.install_rights(&domain_response, now).unwrap();
            plaintexts.push(
                agent
                    .consume(&domain_ro_id, &dcf, Permission::Play, now)
                    .unwrap(),
            );
            agent.leave_domain_via(&client, &domain).unwrap();
            phase_traces.push(agent.engine().take_trace());
            phase_cycles.push(backend.take_charged_cycles());

            // Dropping the client closes the channel; `serve` surfaces the
            // disconnect as a Transport error instead of spinning on the
            // dead endpoint.
            drop(client);
            assert!(matches!(
                server.join().unwrap(),
                Err(DrmError::Transport(_))
            ));
            (
                RoapPdu::RoResponse(response).encode(),
                RoapPdu::RoResponse(domain_response).encode(),
            )
        })
    };

    assert_eq!(service.registered_count(), 1);
    assert_eq!(service.issued_ro_count(), 2);
    assert_eq!(service.domain_member_count(&domain), Some(0));

    Outcome {
        ro_response_frame: ro_frame,
        domain_ro_response_frame: domain_ro_frame,
        plaintexts,
        phase_traces,
        phase_cycles,
    }
}

#[test]
fn channel_lifecycle_is_byte_identical_to_direct_calls() {
    let direct = run_lifecycle(true);
    let wire = run_lifecycle(false);

    assert_eq!(
        direct.ro_response_frame, wire.ro_response_frame,
        "Device-RO response (RI signature, MAC, wrapped keys) must be byte-identical"
    );
    assert_eq!(
        direct.domain_ro_response_frame, wire.domain_ro_response_frame,
        "Domain-RO response must be byte-identical"
    );
    assert_eq!(direct.plaintexts, wire.plaintexts);
    assert_eq!(
        direct.phase_traces, wire.phase_traces,
        "per-phase operation traces must match between wire and direct paths"
    );
    assert_eq!(
        direct.phase_cycles, wire.phase_cycles,
        "per-phase crypto cycle counts must match between wire and direct paths"
    );
    assert_eq!(direct.plaintexts[0], b"wire-identical audio bytes");
}

#[test]
fn relabelled_ri_identity_is_rejected_at_registration() {
    use oma_drm2::drm::roap::DeviceHello;
    use oma_drm2::drm::{DrmError, RoapError};
    let World {
        service, mut agent, ..
    } = world();
    let now = Timestamp::new(1_000);
    let client = RoapClient::in_proc(&service);
    let hello = client.hello(&DeviceHello::new("phone-001")).unwrap();
    let request = agent.registration_request(&hello, now).unwrap();
    let response = client.register(&request).unwrap();

    // A wire attacker controls both the hello and the response, so it can
    // make the ri_id echo self-consistent — but it cannot make the
    // CA-attested certificate subject match the stolen identity.
    let mut relabelled_hello = hello.clone();
    relabelled_hello.ri_id = "ri.evil.example".into();
    let mut relabelled_response = response.clone();
    relabelled_response.ri_id = "ri.evil.example".into();
    assert_eq!(
        agent.complete_registration(&relabelled_hello, &request, &relabelled_response, now),
        Err(DrmError::Roap(RoapError::CertificateInvalid))
    );
    assert!(!agent.is_registered_with("ri.evil.example"));

    // The untampered exchange still completes.
    agent
        .complete_registration(&hello, &request, &response, now)
        .unwrap();
    assert!(agent.is_registered_with("ri.example.com"));
}

#[test]
fn dispatch_at_pins_the_server_clock() {
    use oma_drm2::drm::roap::DeviceHello;
    use oma_drm2::drm::wire::RoapStatus;
    use oma_drm2::drm::{RoapError, CERT_VALIDITY_SECONDS};
    let World {
        service, mut agent, ..
    } = world();

    let hello_frame = RoapPdu::DeviceHello(DeviceHello::new("phone-001")).encode();
    let ri_hello = match RoapPdu::decode(&service.dispatch(&hello_frame)).unwrap() {
        RoapPdu::RiHello(h) => h,
        other => panic!("expected RiHello, got {}", other.name()),
    };
    // The request back-dates itself inside the certificate's validity
    // window; a server that owns a clock must not honour that.
    let request = agent
        .registration_request(&ri_hello, Timestamp::new(1_000))
        .unwrap();
    let frame = RoapPdu::RegistrationRequest(request).encode();
    let expired = Timestamp::new(CERT_VALIDITY_SECONDS + 10_000);
    assert_eq!(
        RoapPdu::decode(&service.dispatch_at(&frame, expired)).unwrap(),
        RoapPdu::Status(RoapStatus::Roap(RoapError::CertificateInvalid)),
        "dispatch_at must validate the certificate at the server's clock"
    );
}

#[test]
fn wire_errors_carry_protocol_reasons_across_the_channel() {
    use oma_drm2::drm::{DrmError, RoapError};
    let World {
        service, mut agent, ..
    } = world();
    let now = Timestamp::new(1_000);
    let (client_end, server_end) = ChannelTransport::pair();
    std::thread::scope(|scope| {
        let service_ref = &service;
        scope.spawn(move || serve(service_ref, &server_end));
        let client = RoapClient::new(client_end);
        agent.register_via(&client, now).unwrap();
        // Unknown content: the wire peer reports the specific ROAP error.
        assert_eq!(
            agent
                .acquire_rights_via(&client, "ri.example.com", "cid:nope", now)
                .unwrap_err(),
            DrmError::Roap(RoapError::UnknownRightsObject)
        );
        // Unknown domain on leave: status PDUs round-trip both error kinds.
        assert_eq!(
            agent
                .leave_domain_via(&client, &DomainId::new("ghost"))
                .unwrap_err(),
            DrmError::Roap(RoapError::UnknownDomain)
        );
        assert_eq!(
            agent
                .join_domain_via(&client, "ri.example.com", &DomainId::new("ghost"), now)
                .unwrap_err(),
            DrmError::Roap(RoapError::UnknownDomain)
        );
        drop(client);
    });
}
