//! The crash-recovery invariant, end to end, under fleet load.
//!
//! A fleet run is interrupted by killing the Rights Issuer service
//! mid-wave — after it has served an arbitrary number of frames — and
//! recovered from WAL + snapshot. The recovered run must be
//! **indistinguishable** from an uninterrupted reference run of the same
//! spec:
//!
//! * the same registered-device set (no lost registrations),
//! * no duplicate Rights Object ids,
//! * byte-identical `RoResponse` frames (signatures, wrapped keys, ids),
//! * the identical final service state image, RNG checkpoint included.
//!
//! Run under `--release` in CI.

use oma_drm2::load::{run_fleet_durable, run_fleet_durable_with, run_sequential, FleetSpec};
use oma_drm2::store::{RiStore, StoreConfig};
use std::sync::Arc;

fn spec() -> FleetSpec {
    FleetSpec::new(5, 3).with_acquisitions(2)
}

#[test]
fn kill_at_every_wave_boundary_class_recovers_indistinguishably() {
    let spec = spec();
    let reference = run_fleet_durable(&spec, None).expect("reference run");
    assert_eq!(reference.recoveries, 0);

    // Total frames served: 5 hellos + 5 registrations + 2 rounds x 5 ROs.
    // Kill points cover: mid-hello-wave, mid-registration-wave, mid-first
    // and mid-second acquisition round.
    for kill_after in [2u64, 7, 12, 17] {
        let killed = run_fleet_durable(&spec, Some(kill_after)).expect("killed run");
        assert_eq!(killed.recoveries, 1, "kill point {kill_after} must fire");
        assert!(
            killed.events_replayed > 0,
            "recovery at {kill_after} replayed nothing"
        );

        // No lost registrations, no duplicate RO ids.
        assert_eq!(killed.fleet.registrations, spec.devices as u64);
        assert!(killed.fleet.duplicate_ro_ids().is_empty());

        // Byte-identical protocol output and final state.
        assert_eq!(
            killed.ro_response_frames, reference.ro_response_frames,
            "kill point {kill_after}: RoResponse frames diverged"
        );
        assert_eq!(
            killed.final_state, reference.final_state,
            "kill point {kill_after}: recovered service state diverged"
        );
        assert!(
            killed.fleet.matches(&reference.fleet),
            "kill point {kill_after}: device outcomes diverged"
        );
    }
}

#[test]
fn durable_fleet_matches_the_plain_sequential_reference() {
    // Journaling and crash recovery must be invisible to the devices: the
    // killed-and-recovered fleet still matches the plain (storeless)
    // sequential driver in every deterministic observable.
    let spec = spec();
    let killed = run_fleet_durable(&spec, Some(9)).expect("killed run");
    let plain = run_sequential(&spec).expect("sequential reference");
    assert!(killed.fleet.matches(&plain));
}

#[test]
fn crash_spans_real_disk_bytes() {
    // The same invariant with the WAL on an actual FileLog directory: the
    // killed service instance is dropped wholesale and the recovered one
    // reads its history back from files.
    let dir = std::env::temp_dir().join(format!(
        "oma-durable-recovery-{}-{}",
        std::process::id(),
        std::thread::current().name().unwrap_or("t").len()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = FleetSpec::smoke();
    let reference = run_fleet_durable(&spec, None).expect("reference run");

    let store = Arc::new(RiStore::open_dir(&dir, StoreConfig::default()).expect("open store"));
    let killed = run_fleet_durable_with(&spec, store, Some(4)).expect("killed run on disk");
    assert_eq!(killed.recoveries, 1);
    assert_eq!(killed.ro_response_frames, reference.ro_response_frames);
    assert_eq!(killed.final_state, reference.final_state);

    // The directory holds a post-run snapshot: a fresh store over the same
    // files recovers the full final state without replaying anything.
    let reopened = RiStore::open_dir(&dir, StoreConfig::default()).expect("reopen store");
    let (image, report) = reopened.load_with_report().expect("recover from disk");
    assert_eq!(report.events_applied, 0, "final snapshot covers everything");
    assert_eq!(image, killed.final_state);
    std::fs::remove_dir_all(&dir).ok();
}
