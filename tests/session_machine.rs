//! The typed ROAP session machines, checked three ways:
//!
//! 1. **Exhaustive transition tables** — every `(state, input)` pair of
//!    both machines either steps or returns its documented [`RoapError`],
//!    checked pair by pair against the tables in the module docs.
//! 2. **Property walks** — random input sequences never panic, stay inside
//!    the state set, and only ever reject with documented codes
//!    (vendored proptest).
//! 3. **Named wire replays** — scripted attacks and interleavings driven
//!    through [`RiService::dispatch`], asserting the exact status frame on
//!    the wire *and* that the service's derived machine state
//!    ([`RiService::session_state`]) tracks the reference model step by
//!    step.
//!
//! [`RiService::dispatch`]: oma_drm2::drm::RiService
//! [`RiService::session_state`]: oma_drm2::drm::RiService

use oma_drm2::crypto::rsa::RsaKeyPair;
use oma_drm2::crypto::CryptoEngine;
use oma_drm2::drm::roap::{DeviceHello, RegistrationRequest, RoRequest, NONCE_LEN};
use oma_drm2::drm::session::{AgentEvent, AgentSessionState, PduKind, RiSessionState};
use oma_drm2::drm::wire::RoapStatus;
use oma_drm2::drm::{
    ContentIssuer, DomainId, Permission, RiService, RightsTemplate, RoapError, RoapPdu,
};
use oma_drm2::pki::{Certificate, CertificationAuthority, EntityRole, Timestamp, ValidityPeriod};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BITS: usize = 384;
const NOW: u64 = 1_000;

// ---------------------------------------------------------------------------
// 1. Exhaustive transition tables
// ---------------------------------------------------------------------------

/// The server machine's documented verdict for one `(state, kind)` pair.
fn server_table(state: RiSessionState, kind: PduKind) -> Result<RiSessionState, RoapError> {
    use RiSessionState as S;
    match kind {
        PduKind::DeviceHello => Ok(match state {
            S::Idle | S::ChallengeIssued => S::ChallengeIssued,
            S::Registered | S::Reregistering => S::Reregistering,
        }),
        PduKind::RegistrationRequest => match state {
            S::ChallengeIssued | S::Reregistering => Ok(S::Registered),
            S::Idle | S::Registered => Err(RoapError::UnknownSession),
        },
        PduKind::RoRequest | PduKind::JoinDomainRequest | PduKind::LeaveDomainRequest => {
            match state {
                S::Registered | S::Reregistering => Ok(state),
                S::Idle | S::ChallengeIssued => Err(RoapError::DeviceNotRegistered),
            }
        }
        PduKind::RiHello
        | PduKind::RegistrationResponse
        | PduKind::RoResponse
        | PduKind::JoinDomainResponse
        | PduKind::Status => Err(RoapError::Malformed),
    }
}

#[test]
fn every_server_state_pdu_pair_matches_the_documented_table() {
    for state in RiSessionState::ALL {
        for kind in PduKind::ALL {
            assert_eq!(
                state.step(kind),
                server_table(state, kind),
                "({state}, {kind})"
            );
        }
    }
}

/// The agent machine's documented verdict for one `(state, event)` pair.
fn agent_table(
    state: AgentSessionState,
    event: AgentEvent,
) -> Result<AgentSessionState, RoapError> {
    use AgentSessionState as S;
    match event {
        AgentEvent::SendHello => Ok(S::HelloSent),
        AgentEvent::ChallengeReceived => match state {
            S::HelloSent | S::ChallengeReceived | S::RegistrationSent => Ok(S::ChallengeReceived),
            _ => Err(RoapError::UnknownSession),
        },
        AgentEvent::SendRegistration => match state {
            S::ChallengeReceived | S::RegistrationSent => Ok(S::RegistrationSent),
            _ => Err(RoapError::UnknownSession),
        },
        AgentEvent::ResponseVerified => match state {
            S::RegistrationSent => Ok(S::Registered),
            _ => Err(RoapError::UnknownSession),
        },
        AgentEvent::SendRoRequest => match state {
            S::Registered | S::RoRequested | S::RoDelivered => Ok(S::RoRequested),
            _ => Err(RoapError::DeviceNotRegistered),
        },
        AgentEvent::RoVerified => match state {
            S::RoRequested => Ok(S::RoDelivered),
            _ => Err(RoapError::UnknownSession),
        },
    }
}

#[test]
fn every_agent_state_event_pair_matches_the_documented_table() {
    for state in AgentSessionState::ALL {
        for event in AgentEvent::ALL {
            assert_eq!(
                state.step(event),
                agent_table(state, event),
                "({state}, {event})"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Property walks
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any input sequence keeps the server machine inside its state set and
    /// only rejects with the three documented codes.
    #[test]
    fn server_machine_is_total_under_random_walks(seed in 0u64..u64::MAX) {
        let mut state = RiSessionState::default();
        let mut x = seed;
        for _ in 0..64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let kind = PduKind::ALL[(x >> 33) as usize % PduKind::ALL.len()];
            match state.step(kind) {
                Ok(next) => {
                    prop_assert!(RiSessionState::ALL.contains(&next));
                    // Registration trust is sticky: no input ever walks a
                    // registered device back to untrusted.
                    if state.is_registered() {
                        prop_assert!(next.is_registered(), "{state} --{kind}--> {next}");
                    }
                    state = next;
                }
                Err(e) => prop_assert!(
                    matches!(
                        e,
                        RoapError::UnknownSession
                            | RoapError::DeviceNotRegistered
                            | RoapError::Malformed
                    ),
                    "undocumented rejection {e:?} for ({state}, {kind})"
                ),
            }
        }
    }

    /// Same totality property for the agent machine; `settle` never leaves
    /// the state set either.
    #[test]
    fn agent_machine_is_total_under_random_walks(seed in 0u64..u64::MAX) {
        let mut state = AgentSessionState::default();
        let mut x = seed;
        for _ in 0..64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let event = AgentEvent::ALL[(x >> 33) as usize % AgentEvent::ALL.len()];
            match state.step(event) {
                Ok(next) => {
                    prop_assert!(AgentSessionState::ALL.contains(&next));
                    prop_assert!(AgentSessionState::ALL.contains(&next.settle()));
                    state = next;
                }
                Err(e) => prop_assert!(
                    matches!(
                        e,
                        RoapError::UnknownSession | RoapError::DeviceNotRegistered
                    ),
                    "undocumented rejection {e:?} for ({state}, {event})"
                ),
            }
        }
    }

    /// `derive` and the flag accessors are inverses over the whole state
    /// space (the service's map-derived view loses nothing).
    #[test]
    fn derive_roundtrips_for_any_flag_combination(flags in 0u8..4) {
        let (registered, pending) = (flags & 1 != 0, flags & 2 != 0);
        let state = RiSessionState::derive(registered, pending);
        prop_assert_eq!(state.is_registered(), registered);
        prop_assert_eq!(state.challenge_pending(), pending);
    }
}

// ---------------------------------------------------------------------------
// 3. Named wire replays
// ---------------------------------------------------------------------------

struct World {
    ca: CertificationAuthority,
    service: RiService,
    rng: StdRng,
}

fn world(seed: u64) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ca = CertificationAuthority::new("cmla", BITS, &mut rng);
    let service = RiService::new("ri.example.com", BITS, &mut ca, &mut rng);
    World { ca, service, rng }
}

struct Peer {
    id: String,
    keys: RsaKeyPair,
    certificate: Certificate,
    engine: CryptoEngine,
}

impl Peer {
    fn new(w: &mut World, id: &str, engine_seed: u64) -> Peer {
        let keys = RsaKeyPair::generate(BITS, &mut w.rng);
        let certificate = w.ca.issue(
            id,
            EntityRole::DrmAgent,
            keys.public().clone(),
            ValidityPeriod::starting_at(Timestamp::new(0), 1_000_000),
        );
        Peer {
            id: id.to_string(),
            keys,
            certificate,
            engine: CryptoEngine::with_seed(engine_seed),
        }
    }

    fn hello_frame(&self) -> Vec<u8> {
        RoapPdu::DeviceHello(DeviceHello::new(&self.id)).encode()
    }

    fn pass3_frame(&self, session_id: u64) -> Vec<u8> {
        let now = Timestamp::new(NOW);
        let device_nonce = self.engine.random_nonce(NONCE_LEN);
        let signed = RegistrationRequest::signed_bytes(
            session_id,
            &self.id,
            &device_nonce,
            now,
            &self.certificate,
        );
        let signature = self.engine.pss_sign(self.keys.private(), &signed).unwrap();
        RoapPdu::RegistrationRequest(RegistrationRequest {
            session_id,
            device_id: self.id.clone(),
            device_nonce,
            request_time: now,
            certificate: self.certificate.clone(),
            signature,
        })
        .encode()
    }

    fn ro_frame(&self, content_id: &str) -> Vec<u8> {
        let now = Timestamp::new(NOW);
        let device_nonce = self.engine.random_nonce(NONCE_LEN);
        let signed = RoRequest::signed_bytes(
            &self.id,
            "ri.example.com",
            content_id,
            None,
            &device_nonce,
            now,
        );
        let signature = self.engine.pss_sign(self.keys.private(), &signed).unwrap();
        RoapPdu::RoRequest(RoRequest {
            device_id: self.id.clone(),
            ri_id: "ri.example.com".to_string(),
            content_id: content_id.to_string(),
            domain_id: None,
            device_nonce,
            request_time: now,
            signature,
        })
        .encode()
    }
}

fn decoded(service: &RiService, frame: &[u8]) -> RoapPdu {
    RoapPdu::decode(&service.dispatch(frame)).expect("service answers well-formed frames")
}

fn session_of(reply: &RoapPdu) -> u64 {
    match reply {
        RoapPdu::RiHello(hello) => hello.session_id,
        other => panic!("expected RiHello, got {other:?}"),
    }
}

fn status_of(reply: &RoapPdu) -> RoapStatus {
    match reply {
        RoapPdu::Status(status) => *status,
        other => panic!("expected Status, got {other:?}"),
    }
}

#[test]
fn replayed_pass_three_is_rejected_and_trust_survives() {
    let mut w = world(0x9e01);
    let alice = Peer::new(&mut w, "alice", 21);
    assert_eq!(w.service.session_state("alice"), RiSessionState::Idle);

    let session = session_of(&decoded(&w.service, &alice.hello_frame()));
    assert_eq!(
        w.service.session_state("alice"),
        RiSessionState::ChallengeIssued
    );

    let pass3 = alice.pass3_frame(session);
    assert!(matches!(
        decoded(&w.service, &pass3),
        RoapPdu::RegistrationResponse(_)
    ));
    assert_eq!(w.service.session_state("alice"), RiSessionState::Registered);

    // The replayed frame answers the machine's UnknownSession — and the
    // registered state is untouched.
    assert_eq!(
        status_of(&decoded(&w.service, &pass3)),
        RoapStatus::Roap(RoapError::UnknownSession)
    );
    assert_eq!(w.service.session_state("alice"), RiSessionState::Registered);
}

#[test]
fn superseding_hello_invalidates_the_stale_challenge() {
    let mut w = world(0x9e02);
    let bob = Peer::new(&mut w, "bob", 22);

    let stale = session_of(&decoded(&w.service, &bob.hello_frame()));
    let fresh = session_of(&decoded(&w.service, &bob.hello_frame()));
    assert_ne!(stale, fresh);
    assert_eq!(
        w.service.session_state("bob"),
        RiSessionState::ChallengeIssued
    );

    // Answering the superseded challenge fails; the fresh one succeeds.
    assert_eq!(
        status_of(&decoded(&w.service, &bob.pass3_frame(stale))),
        RoapStatus::Roap(RoapError::UnknownSession)
    );
    assert!(matches!(
        decoded(&w.service, &bob.pass3_frame(fresh)),
        RoapPdu::RegistrationResponse(_)
    ));
    assert_eq!(w.service.session_state("bob"), RiSessionState::Registered);
}

#[test]
fn requests_before_registration_answer_the_machine_codes() {
    let mut w = world(0x9e03);
    let carol = Peer::new(&mut w, "carol", 23);
    w.service.create_domain("family", 4);

    // Acquisition and (unsigned) leave-domain both need Registered state.
    assert_eq!(
        status_of(&decoded(&w.service, &carol.ro_frame("cid:any"))),
        RoapStatus::Roap(RoapError::DeviceNotRegistered)
    );
    let leave = RoapPdu::LeaveDomainRequest {
        device_id: "carol".to_string(),
        domain_id: DomainId::new("family"),
    }
    .encode();
    assert_eq!(
        status_of(&decoded(&w.service, &leave)),
        RoapStatus::Roap(RoapError::DeviceNotRegistered)
    );
    // A challenge alone is still not registration.
    let _ = session_of(&decoded(&w.service, &carol.hello_frame()));
    assert_eq!(
        status_of(&decoded(&w.service, &carol.ro_frame("cid:any"))),
        RoapStatus::Roap(RoapError::DeviceNotRegistered)
    );
}

#[test]
fn interleaved_registrations_keep_per_device_machines_independent() {
    let mut w = world(0x9e04);
    let left = Peer::new(&mut w, "left", 24);
    let right = Peer::new(&mut w, "right", 25);

    // Interleave the two registrations pass by pass.
    let left_session = session_of(&decoded(&w.service, &left.hello_frame()));
    let right_session = session_of(&decoded(&w.service, &right.hello_frame()));
    assert_ne!(left_session, right_session);

    // Crossing the streams — left answering right's challenge — is the
    // session/device binding violation, not a machine step.
    assert!(matches!(
        decoded(&w.service, &left.pass3_frame(right_session)),
        RoapPdu::Status(RoapStatus::Roap(RoapError::Malformed))
    ));

    assert!(matches!(
        decoded(&w.service, &right.pass3_frame(right_session)),
        RoapPdu::RegistrationResponse(_)
    ));
    assert_eq!(
        w.service.session_state("left"),
        RiSessionState::ChallengeIssued,
        "right's registration must not advance left's machine"
    );
    assert!(matches!(
        decoded(&w.service, &left.pass3_frame(left_session)),
        RoapPdu::RegistrationResponse(_)
    ));
    assert_eq!(w.service.session_state("left"), RiSessionState::Registered);
    assert_eq!(w.service.session_state("right"), RiSessionState::Registered);
}

#[test]
fn reregistration_walks_through_reregistering_and_keeps_serving() {
    let mut w = world(0x9e05);
    let dave = Peer::new(&mut w, "dave", 27);
    let ci = ContentIssuer::new("ci");
    let (dcf, cek) = ci.package(b"track", "cid:track", &mut w.rng);
    w.service.add_content(
        "cid:track",
        cek,
        &dcf,
        RightsTemplate::unlimited(Permission::Play),
    );

    let session = session_of(&decoded(&w.service, &dave.hello_frame()));
    assert!(matches!(
        decoded(&w.service, &dave.pass3_frame(session)),
        RoapPdu::RegistrationResponse(_)
    ));

    // A new hello from a registered device: trust is kept while the new
    // challenge is outstanding, and acquisitions still work.
    let renewal = session_of(&decoded(&w.service, &dave.hello_frame()));
    assert_eq!(
        w.service.session_state("dave"),
        RiSessionState::Reregistering
    );
    assert!(matches!(
        decoded(&w.service, &dave.ro_frame("cid:track")),
        RoapPdu::RoResponse(_)
    ));

    assert!(matches!(
        decoded(&w.service, &dave.pass3_frame(renewal)),
        RoapPdu::RegistrationResponse(_)
    ));
    assert_eq!(w.service.session_state("dave"), RiSessionState::Registered);
}

#[test]
fn duplicated_ro_requests_are_served_with_distinct_ids() {
    let mut w = world(0x9e06);
    let erin = Peer::new(&mut w, "erin", 28);
    let ci = ContentIssuer::new("ci");
    let (dcf, cek) = ci.package(b"track", "cid:track", &mut w.rng);
    w.service.add_content(
        "cid:track",
        cek,
        &dcf,
        RightsTemplate::unlimited(Permission::Play),
    );
    let session = session_of(&decoded(&w.service, &erin.hello_frame()));
    assert!(matches!(
        decoded(&w.service, &erin.pass3_frame(session)),
        RoapPdu::RegistrationResponse(_)
    ));

    // The same RO-request frame delivered twice: acquisition is a
    // registered-state self-loop, so both deliveries are answered — with
    // two *different* Rights-Object ids (the no-duplicate-id invariant).
    let request = erin.ro_frame("cid:track");
    let first = match decoded(&w.service, &request) {
        RoapPdu::RoResponse(r) => r.rights_object.id().as_str().to_string(),
        other => panic!("expected RoResponse, got {other:?}"),
    };
    let second = match decoded(&w.service, &request) {
        RoapPdu::RoResponse(r) => r.rights_object.id().as_str().to_string(),
        other => panic!("expected RoResponse, got {other:?}"),
    };
    assert_ne!(first, second);
    assert_eq!(w.service.session_state("erin"), RiSessionState::Registered);
}
