//! Golden wire vectors: committed byte-exact encodings of one literal PDU
//! per variant, guarding the codec against accidental format drift.
//!
//! Every PDU here is built from fully literal field values — no RNG, no key
//! generation — so the expected bytes depend on nothing but the codec
//! itself. If an encoding change is intentional (a new wire version), bless
//! new vectors with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test wire_golden
//! ```
//!
//! and review the resulting `tests/golden/*.bin` diff like any other wire
//! format change.

use oma_drm2::bignum::BigUint;
use oma_drm2::crypto::kem::WrappedKeys;
use oma_drm2::crypto::pss::PssSignature;
use oma_drm2::crypto::rsa::RsaPublicKey;
use oma_drm2::drm::ro::{
    KeyProtection, ProtectedRightsObject, RightsObjectId, RightsObjectPayload,
};
use oma_drm2::drm::roap::{
    DeviceHello, JoinDomainRequest, JoinDomainResponse, RegistrationRequest, RegistrationResponse,
    RiHello, RoRequest, RoResponse,
};
use oma_drm2::drm::wire::RoapStatus;
use oma_drm2::drm::{Constraint, DomainId, Permission, Rights, RoapError, RoapPdu};
use oma_drm2::pki::ocsp::{CertificateStatus, OcspResponse, TbsOcspResponse};
use oma_drm2::pki::{Certificate, EntityRole, TbsCertificate, Timestamp, ValidityPeriod};
use std::path::PathBuf;

fn signature(byte: u8, len: usize) -> PssSignature {
    PssSignature::from_bytes(vec![byte; len])
}

fn certificate() -> Certificate {
    Certificate::new(
        TbsCertificate {
            serial: 7,
            issuer: "cmla".into(),
            subject: "phone-001".into(),
            role: EntityRole::DrmAgent,
            public_key: RsaPublicKey::new(
                BigUint::from_bytes_be(&[0xC3; 48]),
                BigUint::from_bytes_be(&65_537u32.to_be_bytes()),
            ),
            validity: ValidityPeriod::new(Timestamp::new(0), Timestamp::new(10_000)),
        },
        signature(0xA1, 48),
    )
}

fn ocsp() -> OcspResponse {
    OcspResponse::new(
        TbsOcspResponse {
            responder: "cmla".into(),
            serial: 3,
            status: CertificateStatus::Good,
            produced_at: Timestamp::new(900),
            nonce: Vec::new(),
        },
        signature(0xB2, 48),
    )
}

fn device_ro() -> ProtectedRightsObject {
    ProtectedRightsObject {
        payload: RightsObjectPayload {
            id: RightsObjectId::new("ro:ri:dev:phone-001:0"),
            rights_issuer: "ri.example.com".into(),
            content_id: "cid:track-1".into(),
            rights: Rights::new()
                .grant(Permission::Play, Constraint::Count(5))
                .grant(
                    Permission::Display,
                    Constraint::Datetime(ValidityPeriod::new(
                        Timestamp::new(100),
                        Timestamp::new(200),
                    )),
                )
                .grant(Permission::Export, Constraint::Interval(3_600))
                .grant(Permission::Print, Constraint::Unconstrained),
            dcf_hash: [0x5A; 20],
            encrypted_cek: vec![0x11; 24],
            issued_at: Timestamp::new(1_000),
        },
        key_protection: KeyProtection::Device(WrappedKeys {
            c1: vec![0x22; 48],
            c2: vec![0x33; 40],
        }),
        mac: [0x44; 20],
        signature: None,
    }
}

fn domain_ro() -> ProtectedRightsObject {
    let mut ro = device_ro();
    ro.key_protection = KeyProtection::Domain {
        domain_id: DomainId::new("family"),
        generation: 2,
        wrapped: vec![0x55; 40],
    };
    ro.signature = Some(signature(0x66, 48));
    ro
}

/// The named golden PDUs: one per envelope variant, plus both Rights Object
/// protection shapes and both status flavours.
fn golden_pdus() -> Vec<(&'static str, RoapPdu)> {
    vec![
        (
            "device_hello",
            RoapPdu::DeviceHello(DeviceHello::new("phone-001")),
        ),
        (
            "ri_hello",
            RoapPdu::RiHello(RiHello {
                ri_id: "ri.example.com".into(),
                session_id: 42,
                ri_nonce: vec![0x77; 14],
                selected_algorithms: vec!["SHA-1".into(), "RSA-PSS".into()],
                trusted_authorities: vec!["cmla".into()],
            }),
        ),
        (
            "registration_request",
            RoapPdu::RegistrationRequest(RegistrationRequest {
                session_id: 42,
                device_id: "phone-001".into(),
                device_nonce: vec![0x88; 14],
                request_time: Timestamp::new(1_000),
                certificate: certificate(),
                signature: signature(0x99, 48),
            }),
        ),
        (
            "registration_response",
            RoapPdu::RegistrationResponse(RegistrationResponse {
                session_id: 42,
                ri_id: "ri.example.com".into(),
                device_nonce: vec![0x88; 14],
                ri_certificate: certificate(),
                ocsp_response: ocsp(),
                signature: signature(0xAA, 48),
            }),
        ),
        (
            "ro_request",
            RoapPdu::RoRequest(RoRequest {
                device_id: "phone-001".into(),
                ri_id: "ri.example.com".into(),
                content_id: "cid:track-1".into(),
                domain_id: None,
                device_nonce: vec![0xBB; 14],
                request_time: Timestamp::new(1_000),
                signature: signature(0xCC, 48),
            }),
        ),
        (
            "ro_request_domain",
            RoapPdu::RoRequest(RoRequest {
                device_id: "phone-001".into(),
                ri_id: "ri.example.com".into(),
                content_id: "cid:track-1".into(),
                domain_id: Some(DomainId::new("family")),
                device_nonce: vec![0xBB; 14],
                request_time: Timestamp::new(1_000),
                signature: signature(0xCC, 48),
            }),
        ),
        (
            "ro_response_device",
            RoapPdu::RoResponse(RoResponse {
                device_id: "phone-001".into(),
                ri_id: "ri.example.com".into(),
                device_nonce: vec![0xBB; 14],
                rights_object: device_ro(),
                signature: signature(0xDD, 48),
            }),
        ),
        (
            "ro_response_domain",
            RoapPdu::RoResponse(RoResponse {
                device_id: "phone-001".into(),
                ri_id: "ri.example.com".into(),
                device_nonce: vec![0xBB; 14],
                rights_object: domain_ro(),
                signature: signature(0xDD, 48),
            }),
        ),
        (
            "join_domain_request",
            RoapPdu::JoinDomainRequest(JoinDomainRequest {
                device_id: "phone-001".into(),
                ri_id: "ri.example.com".into(),
                domain_id: DomainId::new("family"),
                device_nonce: vec![0xEE; 14],
                request_time: Timestamp::new(1_000),
                signature: signature(0xF0, 48),
            }),
        ),
        (
            "join_domain_response",
            RoapPdu::JoinDomainResponse(JoinDomainResponse {
                device_id: "phone-001".into(),
                ri_id: "ri.example.com".into(),
                domain_id: DomainId::new("family"),
                generation: 2,
                encrypted_domain_key: vec![0xF1; 48],
                device_nonce: vec![0xEE; 14],
                signature: signature(0xF2, 48),
            }),
        ),
        (
            "leave_domain_request",
            RoapPdu::LeaveDomainRequest {
                device_id: "phone-001".into(),
                domain_id: DomainId::new("family"),
            },
        ),
        ("status_ok", RoapPdu::Status(RoapStatus::Ok)),
        (
            "status_domain_full",
            RoapPdu::Status(RoapStatus::Roap(RoapError::DomainFull)),
        ),
        (
            "status_not_in_domain",
            RoapPdu::Status(RoapStatus::NotInDomain),
        ),
        (
            "status_not_primary",
            RoapPdu::Status(RoapStatus::NotPrimary(3)),
        ),
    ]
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.bin"))
}

#[test]
fn golden_vectors_match_committed_bytes() {
    let bless = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut drifted = Vec::new();
    for (name, pdu) in golden_pdus() {
        let encoded = pdu.encode();
        let path = golden_path(name);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &encoded).unwrap();
            continue;
        }
        let expected = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing golden vector {}: {e}", path.display()));
        if encoded != expected {
            drifted.push(name);
        }
        // The committed bytes must also decode back to the very same PDU.
        assert_eq!(
            RoapPdu::decode(&expected).as_ref(),
            Ok(&pdu),
            "golden vector {name} no longer decodes to its PDU"
        );
    }
    assert!(
        drifted.is_empty(),
        "wire codec drift detected for {drifted:?}; if intentional, bump the \
         wire version and re-bless with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_coverage_spans_every_envelope_tag() {
    use std::collections::HashSet;
    let tags: HashSet<u8> = golden_pdus().iter().map(|(_, p)| p.tag()).collect();
    assert_eq!(tags.len(), 10, "one golden vector per envelope tag");
}
