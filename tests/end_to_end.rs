//! Cross-crate integration tests: the full OMA DRM 2 life-cycle driven
//! through the umbrella crate's public API.

use oma_drm2::drm::{ContentIssuer, DrmAgent, DrmError, Permission, RightsIssuer, RightsTemplate};
use oma_drm2::pki::{CertificationAuthority, PkiError, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;

const BITS: usize = 512;

struct Fixture {
    ca: CertificationAuthority,
    ri: RightsIssuer,
    agent: DrmAgent,
    dcf: oma_drm2::drm::Dcf,
    content: Vec<u8>,
}

fn fixture(seed: u64, template: RightsTemplate) -> Fixture {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ca = CertificationAuthority::new("cmla", BITS, &mut rng);
    let mut ri = RightsIssuer::new("ri.example.com", BITS, &mut ca, &mut rng);
    let agent = DrmAgent::new("terminal", BITS, &mut ca, &mut rng);
    let ci = ContentIssuer::new("ci.example.com");
    let content = b"protected media payload ".repeat(64);
    let (dcf, cek) = ci.package(&content, "cid:content", &mut rng);
    ri.add_content("cid:content", cek, &dcf, template);
    Fixture {
        ca,
        ri,
        agent,
        dcf,
        content,
    }
}

#[test]
fn lifecycle_through_umbrella_crate() {
    let mut f = fixture(1, RightsTemplate::unlimited(Permission::Play));
    let now = Timestamp::new(500);
    f.agent.register_with(f.ri.service(), now).unwrap();
    let response = f
        .agent
        .acquire_rights_with(f.ri.service(), "cid:content", now)
        .unwrap();
    let ro_id = f.agent.install_rights(&response, now).unwrap();
    let plaintext = f
        .agent
        .consume(&ro_id, &f.dcf, Permission::Play, now)
        .unwrap();
    assert_eq!(plaintext, f.content);
}

#[test]
fn repeated_playback_with_count_constraint() {
    let mut f = fixture(2, RightsTemplate::counted(Permission::Play, 3));
    let now = Timestamp::new(500);
    f.agent.register_with(f.ri.service(), now).unwrap();
    let response = f
        .agent
        .acquire_rights_with(f.ri.service(), "cid:content", now)
        .unwrap();
    let ro_id = f.agent.install_rights(&response, now).unwrap();
    for i in 0..3 {
        assert!(
            f.agent
                .consume(&ro_id, &f.dcf, Permission::Play, now.plus(i))
                .is_ok(),
            "playback {i}"
        );
    }
    assert_eq!(
        f.agent
            .consume(&ro_id, &f.dcf, Permission::Play, now.plus(10)),
        Err(DrmError::ConstraintViolated)
    );
}

#[test]
fn revoked_rights_issuer_cannot_register_devices() {
    let mut f = fixture(3, RightsTemplate::unlimited(Permission::Play));
    let now = Timestamp::new(500);
    f.ca.revoke(f.ri.certificate().serial());
    f.ri.refresh_ocsp(&f.ca, now);
    assert_eq!(
        f.agent.register_with(f.ri.service(), now),
        Err(DrmError::Pki(PkiError::CertificateRevoked))
    );
}

#[test]
fn tampered_content_and_rights_objects_are_rejected() {
    let mut f = fixture(4, RightsTemplate::unlimited(Permission::Play));
    let now = Timestamp::new(500);
    f.agent.register_with(f.ri.service(), now).unwrap();
    let mut response = f
        .agent
        .acquire_rights_with(f.ri.service(), "cid:content", now)
        .unwrap();

    // Tampered DCF detected at consumption time.
    let ro_id = f.agent.install_rights(&response, now).unwrap();
    assert_eq!(
        f.agent
            .consume(&ro_id, &f.dcf.tampered(), Permission::Play, now),
        Err(DrmError::DcfIntegrity)
    );

    // Tampered RO payload detected at installation time.
    response.rights_object.payload.content_id = "cid:other".into();
    assert_eq!(
        f.agent
            .install_protected_ro(&response.rights_object, "ri.example.com", now),
        Err(DrmError::RightsObjectIntegrity)
    );
}

#[test]
fn second_rights_object_for_same_content_can_coexist() {
    let mut f = fixture(5, RightsTemplate::counted(Permission::Play, 1));
    let now = Timestamp::new(500);
    f.agent.register_with(f.ri.service(), now).unwrap();

    let first = f
        .agent
        .acquire_rights_with(f.ri.service(), "cid:content", now)
        .unwrap();
    let first_id = f.agent.install_rights(&first, now).unwrap();
    let second = f
        .agent
        .acquire_rights_with(f.ri.service(), "cid:content", now)
        .unwrap();
    let second_id = f.agent.install_rights(&second, now).unwrap();
    assert_ne!(first_id, second_id);
    assert_eq!(f.agent.rights_for_content("cid:content").len(), 2);

    // Exhaust the first license, fall back to the second — the scenario the
    // paper gives for keeping K_CEK wrapped under K_REK after installation.
    assert!(f
        .agent
        .consume(&first_id, &f.dcf, Permission::Play, now)
        .is_ok());
    assert_eq!(
        f.agent.consume(&first_id, &f.dcf, Permission::Play, now),
        Err(DrmError::ConstraintViolated)
    );
    assert!(f
        .agent
        .consume(&second_id, &f.dcf, Permission::Play, now)
        .is_ok());
}

#[test]
fn consumption_uses_only_symmetric_crypto() {
    use oma_drm2::crypto::Algorithm;
    let mut f = fixture(6, RightsTemplate::unlimited(Permission::Play));
    let now = Timestamp::new(500);
    f.agent.register_with(f.ri.service(), now).unwrap();
    let response = f
        .agent
        .acquire_rights_with(f.ri.service(), "cid:content", now)
        .unwrap();
    let ro_id = f.agent.install_rights(&response, now).unwrap();

    f.agent.engine().reset_trace();
    f.agent
        .consume(&ro_id, &f.dcf, Permission::Play, now)
        .unwrap();
    let trace = f.agent.engine().take_trace();
    assert_eq!(trace.count(Algorithm::RsaPrivate).invocations, 0);
    assert_eq!(trace.count(Algorithm::RsaPublic).invocations, 0);
    assert!(trace.count(Algorithm::AesDecrypt).blocks > 0);
    assert!(trace.count(Algorithm::Sha1).blocks > 0);
    assert!(trace.count(Algorithm::HmacSha1).invocations > 0);
}
