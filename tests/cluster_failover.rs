//! Cluster failover acceptance suite: kill the primary of a sharded,
//! replicated Rights Issuer fleet mid-wave and prove the failover is
//! invisible.
//!
//! The invariants, in order of decreasing strength:
//!
//! 1. **Byte-identical takeover** — the promoted follower's
//!    `RiStateImage` equals the killed primary's state at the instant it
//!    died, field for field, RNG checkpoint included. Replication ships
//!    the WAL synchronously with every served frame, so the follower can
//!    never be behind an acknowledged response.
//! 2. **No identity is ever re-issued** — Rights Object ids and
//!    registration session ids are monotone counters inside the
//!    replicated state; the epoch change cannot reset them.
//! 3. **Surviving devices cannot tell** — every device completes its full
//!    lifecycle, and the raw `RoResponse` frames are byte-identical to an
//!    unkilled run of the same topology. The whole cluster run `matches`
//!    the single-service sequential reference, so sharding + replication
//!    + failover together change no deterministic observable.
//!
//! Run under `--release` in CI (two full cluster runs plus the sequential
//! reference).

use oma_drm2::cluster::{replicate, AckPolicy, Follower, Primary};
use oma_drm2::drm::journal::RiJournal;
use oma_drm2::drm::roap::DeviceHello;
use oma_drm2::drm::RiService;
use oma_drm2::load::{run_fleet_cluster, run_sequential, FleetSpec};
use oma_drm2::pki::{CertificationAuthority, Timestamp};
use oma_drm2::store::RiStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The acceptance scenario: a 6-device fleet over 3 shards, 2 acquisition
/// cycles each, with the primary serving the 8th frame killed mid-wave.
#[test]
fn kill_the_primary_mid_wave_is_invisible() {
    let spec = FleetSpec::new(6, 3).with_acquisitions(2);
    let reference = run_fleet_cluster(&spec, 3, None).unwrap();
    let killed = run_fleet_cluster(&spec, 3, Some(7)).unwrap();

    // Exactly one primary died and was failed over; the deposed node
    // redirected at least one misrouted client.
    assert_eq!(killed.failovers, 1);
    assert!(killed.redirects >= 1, "the deposed node must redirect");
    let promoted_shards = killed
        .final_epochs
        .iter()
        .filter(|&&epoch| epoch > 1)
        .count();
    assert_eq!(promoted_shards, 1, "exactly one shard changed epoch");

    // Invariant 1: byte-identical takeover.
    let pre_kill = killed.pre_kill_image.as_ref().expect("a primary died");
    let promoted = killed
        .promoted_image
        .as_ref()
        .expect("a follower took over");
    assert_eq!(
        pre_kill, promoted,
        "promoted follower must hold the dead primary's exact durable state"
    );

    // Invariant 2: no identity re-issued across the epoch change.
    assert!(killed.fleet.duplicate_ro_ids().is_empty());

    // Invariant 3: surviving devices cannot tell.
    assert!(killed.fleet.matches(&reference.fleet));
    assert_eq!(
        killed.ro_response_frames, reference.ro_response_frames,
        "RoResponse bytes must survive the failover byte-identically"
    );
}

/// The cluster run — sharded, replicated, failed over — still matches the
/// plain single-service sequential reference: scale-out changes nothing a
/// device can observe.
#[test]
fn failed_over_cluster_matches_the_sequential_reference() {
    let spec = FleetSpec::new(6, 3).with_acquisitions(2);
    let killed = run_fleet_cluster(&spec, 3, Some(7)).unwrap();
    let sequential = run_sequential(&spec).unwrap();
    assert_eq!(killed.failovers, 1);
    assert_eq!(killed.shard_devices.iter().sum::<usize>(), spec.devices);
    assert!(
        killed.fleet.matches(&sequential),
        "cluster observables must equal the single-service reference"
    );
}

/// Session ids keep counting across a promotion: the next registration on
/// the promoted node continues the deposed primary's sequence instead of
/// restarting it — the direct mechanism behind invariant 2.
#[test]
fn promotion_continues_the_session_sequence() {
    let mut rng = StdRng::seed_from_u64(0xfa11);
    let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
    let service = Arc::new(RiService::new("ri.pair", 384, &mut ca, &mut rng));
    let store = Arc::new(RiStore::in_memory());
    service.set_journal(Arc::clone(&store) as Arc<dyn RiJournal>);
    store.snapshot(&|| service.state_image()).unwrap();
    let primary = Primary::new("node.a", 1, store);

    let now = Timestamp::new(1_000);
    let mut sessions: Vec<u64> = (0..4)
        .map(|i| {
            service
                .hello_at(&DeviceHello::new(&format!("dev-{i}")), now)
                .session_id
        })
        .collect();

    let mut follower = Follower::in_memory("node.b", AckPolicy::OnFsync);
    replicate(&primary, &mut follower).unwrap();
    primary.fence();
    let promoted = follower.promote(2).unwrap();

    sessions.extend((4..8).map(|i| {
        promoted
            .service
            .hello_at(&DeviceHello::new(&format!("dev-{i}")), now)
            .session_id
    }));
    let mut deduped = sessions.clone();
    deduped.sort_unstable();
    deduped.dedup();
    assert_eq!(
        deduped.len(),
        sessions.len(),
        "session ids must stay unique across the epoch change: {sessions:?}"
    );
    for pair in sessions.windows(2) {
        assert!(pair[0] < pair[1], "session ids stay monotone: {sessions:?}");
    }
}
