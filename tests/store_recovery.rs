//! WAL robustness corpus: recovery over corrupted storage must never panic
//! and must stop cleanly at the last valid record.
//!
//! Mirrors the structure of `tests/wire_codec.rs` for the storage layer: a
//! real journaled service writes a log once (expensive RSA setup happens a
//! single time), then every proptest case clones those raw bytes, corrupts
//! them — torn tails, single-bit flips, inflated length prefixes, random
//! garbage — rebuilds a store over them and recovers. Two properties:
//!
//! 1. **Totality** — `load_with_report` returns, never panics, whatever the
//!    bytes look like.
//! 2. **Clean prefix** — whatever survives is a *prefix* of the original
//!    event sequence: `events_applied <= total`, and the recovered state
//!    equals what replaying exactly that many events produces. Corruption
//!    can only truncate history, never corrupt the surviving part
//!    (the CRC sees to that).
//!
//! Run under `--release` in CI (the corpus loops over every byte position).

use oma_drm2::drm::journal::RiJournal;
use oma_drm2::drm::roap::DeviceHello;
use oma_drm2::drm::{RiService, RightsTemplate};
use oma_drm2::pki::{CertificationAuthority, Timestamp};
use oma_drm2::store::log::SEGMENT_HEADER;
use oma_drm2::store::{MemLog, RiStore, StoreConfig, StoreError, Wal};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::sync::OnceLock;

/// The pristine store bytes: snapshot blob + one segment of `EVENTS`
/// records, produced once by a real journaled service.
struct Fixture {
    snapshot: Vec<u8>,
    segment: Vec<u8>,
    /// Pending-session count after replaying exactly `k` events.
    sessions_after: Vec<usize>,
}

const EVENTS: usize = 12;

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xc0_dec);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let service = RiService::new("ri", 384, &mut ca, &mut rng);
        let store = Arc::new(RiStore::in_memory());
        service.set_journal(Arc::clone(&store) as Arc<dyn RiJournal>);
        store.snapshot(&|| service.state_image()).unwrap();
        // A mix of event kinds; hellos dominate because they are cheap and
        // every one changes observable state (the pending-session count).
        let mut sessions_after = vec![0usize];
        for i in 0..EVENTS {
            match i {
                3 => {
                    service.create_domain("family", 4);
                }
                7 => {
                    let ci = oma_drm2::drm::ContentIssuer::new("ci");
                    let (dcf, cek) = ci.package(b"bytes", "cid:x", &mut rng);
                    service.add_content(
                        "cid:x",
                        cek,
                        &dcf,
                        RightsTemplate::unlimited(oma_drm2::drm::Permission::Play),
                    );
                }
                _ => {
                    service.hello_at(&DeviceHello::new(&format!("dev-{i:02}")), Timestamp::new(0));
                }
            }
            sessions_after.push(service.pending_session_count());
        }
        let segments = store.log().raw_segments();
        assert_eq!(segments.len(), 1, "fixture fits one segment");
        Fixture {
            snapshot: store.log().read_snapshot().unwrap().unwrap(),
            segment: segments.into_iter().next().unwrap().1,
            sessions_after,
        }
    })
}

/// Builds a store over raw bytes (the snapshot must be valid; a corrupt
/// snapshot is rejected at open — see
/// `corrupt_snapshot_is_an_error_never_a_panic`).
fn store_over(snapshot: &[u8], segment: &[u8]) -> RiStore<MemLog> {
    try_store_over(snapshot, segment).expect("opening over corrupt segment bytes must not fail")
}

fn try_store_over(snapshot: &[u8], segment: &[u8]) -> Result<RiStore<MemLog>, StoreError> {
    let log = MemLog::new();
    log.write_snapshot(snapshot).unwrap();
    log.mutate_segment(1, |bytes| *bytes = segment.to_vec());
    RiStore::new(log, StoreConfig::default())
}

/// The clean-prefix property: recovery over `segment` yields some prefix of
/// the original event sequence, with the state matching that prefix exactly.
fn assert_clean_prefix(segment: &[u8], expect_full: bool) {
    let fx = fixture();
    let store = store_over(&fx.snapshot, segment);
    let (image, report) = store
        .load_with_report()
        .expect("valid snapshot: recovery must succeed");
    let applied = report.events_applied as usize;
    assert!(applied <= EVENTS, "cannot replay more than was written");
    if expect_full {
        assert_eq!(applied, EVENTS);
        assert_eq!(report.stopped_early, None);
    }
    // The surviving state is exactly the state after `applied` events: the
    // pending-session count is a faithful proxy (hellos dominate the log).
    assert_eq!(
        image.sessions.len(),
        fx.sessions_after[applied],
        "recovered state must match the replayed prefix exactly"
    );
    // And the recovered image must actually build a serving instance.
    let service = RiService::from_image(image);
    assert_eq!(service.pending_session_count(), fx.sessions_after[applied]);
}

#[test]
fn pristine_log_replays_everything() {
    assert_clean_prefix(&fixture().segment, true);
}

#[test]
fn corrupt_snapshot_is_an_error_never_a_panic() {
    let fx = fixture();
    for pos in (0..fx.snapshot.len()).step_by((fx.snapshot.len() / 97).max(1)) {
        let mut snapshot = fx.snapshot.clone();
        snapshot[pos] ^= 1 << (pos % 8);
        // A corrupt snapshot is refused already at open time (a store that
        // can never recover must not accept more appends); a flip the CRC
        // cannot see — the coverage watermark in bytes 5..13 — opens and
        // loads, merely shifting which records replay.
        match try_store_over(&snapshot, &fx.segment) {
            Ok(store) => {
                assert!((5..13).contains(&pos), "undetected flip at byte {pos}");
                store
                    .load_with_report()
                    .expect("watermark flip still loads");
            }
            Err(StoreError::Corrupt(_)) => {}
            Err(e) => panic!("unexpected error class: {e}"),
        }
    }
}

#[test]
fn missing_segment_header_drops_the_whole_segment() {
    let fx = fixture();
    let mut segment = fx.segment.clone();
    segment[0] = b'X';
    assert_clean_prefix(&segment, false);
    let store = store_over(&fx.snapshot, &segment);
    let (_, report) = store.load_with_report().unwrap();
    assert_eq!(
        report.events_applied, 0,
        "unscannable segment yields nothing"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Torn final write: any truncation point leaves a clean prefix.
    #[test]
    fn truncated_tail_recovers_cleanly(cut in 0usize..4096) {
        let fx = fixture();
        let body = fx.segment.len() - SEGMENT_HEADER.len();
        let keep = SEGMENT_HEADER.len() + cut % (body + 1);
        assert_clean_prefix(&fx.segment[..keep], keep == fx.segment.len());
    }

    /// A single flipped bit anywhere in the log: recovery never panics and
    /// the surviving prefix is still consistent.
    #[test]
    fn bit_flip_recovers_cleanly(pos in 0usize..4096, bit in 0u8..8) {
        let fx = fixture();
        let pos = SEGMENT_HEADER.len() + pos % (fx.segment.len() - SEGMENT_HEADER.len());
        let mut segment = fx.segment.clone();
        segment[pos] ^= 1 << bit;
        // A flip in a length field may or may not be caught *at* that
        // record, but whatever replays is a clean prefix.
        assert_clean_prefix(&segment, false);
    }

    /// An inflated length prefix (hostile or rotted) must be rejected
    /// before any allocation, leaving the prior records intact.
    #[test]
    fn inflated_length_prefix_recovers_cleanly(record_idx in 0usize..EVENTS, len in any::<u32>()) {
        let fx = fixture();
        let mut segment = fx.segment.clone();
        // Walk to the framed record `record_idx` and overwrite its length.
        let mut offset = SEGMENT_HEADER.len();
        for _ in 0..record_idx {
            let record_len = u32::from_be_bytes(segment[offset..offset + 4].try_into().unwrap());
            offset += 8 + record_len as usize;
        }
        segment[offset..offset + 4].copy_from_slice(&len.to_be_bytes());
        assert_clean_prefix(&segment, false);
        let store = store_over(&fx.snapshot, &segment);
        let (_, report) = store.load_with_report().unwrap();
        // Records before the clobbered one always survive.
        prop_assert!(report.events_applied as usize <= EVENTS);
    }

    /// Random garbage appended after the valid log: the valid records all
    /// replay; the garbage is reported as a stopped-early tail (or, in the
    /// astronomically unlikely case it frames+CRCs as a record, it must
    /// still form a valid sequence to be accepted).
    #[test]
    fn appended_garbage_never_corrupts_the_prefix(garbage in proptest::collection::vec(any::<u8>(), 1..64)) {
        let fx = fixture();
        let mut segment = fx.segment.clone();
        segment.extend_from_slice(&garbage);
        assert_clean_prefix(&segment, false);
    }

    /// Pure random bytes as a segment body: nothing replays, nothing panics.
    #[test]
    fn random_segment_body_recovers_to_the_snapshot(noise in proptest::collection::vec(any::<u8>(), 0..512)) {
        let fx = fixture();
        let mut segment = SEGMENT_HEADER.to_vec();
        segment.extend_from_slice(&noise);
        let store = store_over(&fx.snapshot, &segment);
        let (image, _) = store.load_with_report().expect("never panics");
        let service = RiService::from_image(image);
        prop_assert_eq!(service.id(), "ri");
    }
}
