//! Property and corpus tests for the ROAP wire codec.
//!
//! Two properties must hold for every PDU variant:
//!
//! 1. **Round-trip** — `decode(encode(pdu)) == pdu`, for randomly generated
//!    field values (including empty strings, empty byte fields and every
//!    constraint/key-protection shape).
//! 2. **Totality** — `decode` never panics and returns `Err` for malformed
//!    input: truncations at every byte position, single-bit flips, inflated
//!    length fields, and purely random buffers.

use oma_drm2::bignum::BigUint;
use oma_drm2::crypto::kem::WrappedKeys;
use oma_drm2::crypto::pss::PssSignature;
use oma_drm2::crypto::rsa::RsaPublicKey;
use oma_drm2::drm::ro::{
    KeyProtection, ProtectedRightsObject, RightsObjectId, RightsObjectPayload,
};
use oma_drm2::drm::roap::{
    DeviceHello, JoinDomainRequest, JoinDomainResponse, RegistrationRequest, RegistrationResponse,
    RiHello, RoRequest, RoResponse,
};
use oma_drm2::drm::wire::RoapStatus;
use oma_drm2::drm::{Constraint, DomainId, Permission, Rights, RoapError, RoapPdu};
use oma_drm2::pki::ocsp::{CertificateStatus, OcspResponse, TbsOcspResponse};
use oma_drm2::pki::{Certificate, EntityRole, TbsCertificate, Timestamp, ValidityPeriod};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Number of distinct PDU shapes `pdu_from_seed` can produce.
const VARIANTS: u64 = 11;

fn rand_string(rng: &mut StdRng, max_len: u64) -> String {
    let len = rng.next_u64() % (max_len + 1);
    (0..len)
        .map(|_| char::from(b'a' + (rng.next_u64() % 26) as u8))
        .collect()
}

fn rand_bytes(rng: &mut StdRng, max_len: u64) -> Vec<u8> {
    let len = (rng.next_u64() % (max_len + 1)) as usize;
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

fn rand_signature(rng: &mut StdRng) -> PssSignature {
    PssSignature::from_bytes(rand_bytes(rng, 64))
}

fn rand_timestamp(rng: &mut StdRng) -> Timestamp {
    Timestamp::new(rng.next_u64())
}

fn rand_validity(rng: &mut StdRng) -> ValidityPeriod {
    let a = rng.next_u64();
    let b = rng.next_u64();
    ValidityPeriod::new(Timestamp::new(a.min(b)), Timestamp::new(a.max(b)))
}

fn rand_public_key(rng: &mut StdRng) -> RsaPublicKey {
    RsaPublicKey::new(
        BigUint::from_bytes_be(&rand_bytes(rng, 48)),
        BigUint::from_bytes_be(&[rand_bytes(rng, 4), vec![1]].concat()),
    )
}

fn rand_role(rng: &mut StdRng) -> EntityRole {
    match rng.next_u64() % 3 {
        0 => EntityRole::CertificationAuthority,
        1 => EntityRole::RightsIssuer,
        _ => EntityRole::DrmAgent,
    }
}

fn rand_certificate(rng: &mut StdRng) -> Certificate {
    let tbs = TbsCertificate {
        serial: rng.next_u64(),
        issuer: rand_string(rng, 12),
        subject: rand_string(rng, 12),
        role: rand_role(rng),
        public_key: rand_public_key(rng),
        validity: rand_validity(rng),
    };
    Certificate::new(tbs, rand_signature(rng))
}

fn rand_ocsp(rng: &mut StdRng) -> OcspResponse {
    let tbs = TbsOcspResponse {
        responder: rand_string(rng, 12),
        serial: rng.next_u64(),
        status: match rng.next_u64() % 3 {
            0 => CertificateStatus::Good,
            1 => CertificateStatus::Revoked,
            _ => CertificateStatus::Unknown,
        },
        produced_at: rand_timestamp(rng),
        nonce: rand_bytes(rng, 14),
    };
    OcspResponse::new(tbs, rand_signature(rng))
}

fn rand_constraint(rng: &mut StdRng) -> Constraint {
    match rng.next_u64() % 4 {
        0 => Constraint::Unconstrained,
        1 => Constraint::Count(rng.next_u64() as u32),
        2 => Constraint::Datetime(rand_validity(rng)),
        _ => Constraint::Interval(rng.next_u64()),
    }
}

fn rand_rights(rng: &mut StdRng) -> Rights {
    let permissions = [
        Permission::Play,
        Permission::Display,
        Permission::Execute,
        Permission::Print,
        Permission::Export,
    ];
    let mut rights = Rights::new();
    for _ in 0..rng.next_u64() % 4 {
        let p = permissions[(rng.next_u64() % 5) as usize];
        rights = rights.grant(p, rand_constraint(rng));
    }
    rights
}

fn rand_digest(rng: &mut StdRng) -> [u8; 20] {
    let mut out = [0u8; 20];
    rng.fill_bytes(&mut out);
    out
}

fn rand_protected_ro(rng: &mut StdRng) -> ProtectedRightsObject {
    let payload = RightsObjectPayload {
        id: RightsObjectId::new(&rand_string(rng, 24)),
        rights_issuer: rand_string(rng, 12),
        content_id: rand_string(rng, 24),
        rights: rand_rights(rng),
        dcf_hash: rand_digest(rng),
        encrypted_cek: rand_bytes(rng, 24),
        issued_at: rand_timestamp(rng),
    };
    let key_protection = if rng.next_u64().is_multiple_of(2) {
        KeyProtection::Device(WrappedKeys {
            c1: rand_bytes(rng, 64),
            c2: rand_bytes(rng, 40),
        })
    } else {
        KeyProtection::Domain {
            domain_id: DomainId::new(&rand_string(rng, 12)),
            generation: rng.next_u64() as u32,
            wrapped: rand_bytes(rng, 40),
        }
    };
    let signature = if rng.next_u64().is_multiple_of(2) {
        Some(rand_signature(rng))
    } else {
        None
    };
    ProtectedRightsObject {
        payload,
        key_protection,
        mac: rand_digest(rng),
        signature,
    }
}

fn rand_str_list(rng: &mut StdRng) -> Vec<String> {
    (0..rng.next_u64() % 5)
        .map(|_| rand_string(rng, 10))
        .collect()
}

/// Builds one PDU of shape `variant` with field values drawn from `seed`.
fn pdu_from_seed(variant: u64, seed: u64) -> RoapPdu {
    let rng = &mut StdRng::seed_from_u64(seed);
    match variant % VARIANTS {
        0 => RoapPdu::DeviceHello(DeviceHello {
            device_id: rand_string(rng, 20),
            version: rand_string(rng, 6),
            supported_algorithms: rand_str_list(rng),
        }),
        1 => RoapPdu::RiHello(RiHello {
            ri_id: rand_string(rng, 20),
            session_id: rng.next_u64(),
            ri_nonce: rand_bytes(rng, 14),
            selected_algorithms: rand_str_list(rng),
            trusted_authorities: rand_str_list(rng),
        }),
        2 => RoapPdu::RegistrationRequest(RegistrationRequest {
            session_id: rng.next_u64(),
            device_id: rand_string(rng, 20),
            device_nonce: rand_bytes(rng, 14),
            request_time: rand_timestamp(rng),
            certificate: rand_certificate(rng),
            signature: rand_signature(rng),
        }),
        3 => RoapPdu::RegistrationResponse(RegistrationResponse {
            session_id: rng.next_u64(),
            ri_id: rand_string(rng, 20),
            device_nonce: rand_bytes(rng, 14),
            ri_certificate: rand_certificate(rng),
            ocsp_response: rand_ocsp(rng),
            signature: rand_signature(rng),
        }),
        4 => RoapPdu::RoRequest(RoRequest {
            device_id: rand_string(rng, 20),
            ri_id: rand_string(rng, 20),
            content_id: rand_string(rng, 24),
            domain_id: if rng.next_u64().is_multiple_of(2) {
                Some(DomainId::new(&rand_string(rng, 12)))
            } else {
                None
            },
            device_nonce: rand_bytes(rng, 14),
            request_time: rand_timestamp(rng),
            signature: rand_signature(rng),
        }),
        5 => RoapPdu::RoResponse(RoResponse {
            device_id: rand_string(rng, 20),
            ri_id: rand_string(rng, 20),
            device_nonce: rand_bytes(rng, 14),
            rights_object: rand_protected_ro(rng),
            signature: rand_signature(rng),
        }),
        6 => RoapPdu::JoinDomainRequest(JoinDomainRequest {
            device_id: rand_string(rng, 20),
            ri_id: rand_string(rng, 20),
            domain_id: DomainId::new(&rand_string(rng, 12)),
            device_nonce: rand_bytes(rng, 14),
            request_time: rand_timestamp(rng),
            signature: rand_signature(rng),
        }),
        7 => RoapPdu::JoinDomainResponse(JoinDomainResponse {
            device_id: rand_string(rng, 20),
            ri_id: rand_string(rng, 20),
            domain_id: DomainId::new(&rand_string(rng, 12)),
            generation: rng.next_u64() as u32,
            encrypted_domain_key: rand_bytes(rng, 64),
            device_nonce: rand_bytes(rng, 14),
            signature: rand_signature(rng),
        }),
        8 => RoapPdu::LeaveDomainRequest {
            device_id: rand_string(rng, 20),
            domain_id: DomainId::new(&rand_string(rng, 12)),
        },
        9 => RoapPdu::Status(RoapStatus::from_code((rng.next_u64() % 12) as u8).unwrap()),
        _ => RoapPdu::Status(RoapStatus::Ok),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_variant_roundtrips(seed in 0u64..u64::MAX) {
        for variant in 0..VARIANTS {
            let pdu = pdu_from_seed(variant, seed);
            let frame = pdu.encode();
            let decoded = RoapPdu::decode(&frame);
            prop_assert_eq!(decoded.as_ref(), Ok(&pdu), "variant {} seed {}", variant, seed);
        }
    }

    #[test]
    fn truncation_never_decodes_and_never_panics(seed in 0u64..u64::MAX) {
        for variant in 0..VARIANTS {
            let frame = pdu_from_seed(variant, seed).encode();
            // Every strict prefix must be rejected.
            let step = (frame.len() / 37).max(1);
            for cut in (0..frame.len()).step_by(step) {
                prop_assert!(RoapPdu::decode(&frame[..cut]).is_err());
            }
        }
    }

    #[test]
    fn bit_flips_decode_or_fail_but_never_panic(seed in 0u64..u64::MAX) {
        for variant in 0..VARIANTS {
            let frame = pdu_from_seed(variant, seed).encode();
            let step = (frame.len() / 53).max(1);
            for pos in (0..frame.len()).step_by(step) {
                let mut mutated = frame.clone();
                mutated[pos] ^= 1 << (pos % 8);
                // A flip may still decode (e.g. inside a nonce); it must
                // never panic and never produce the original PDU bytes.
                let _ = RoapPdu::decode(&mutated);
            }
        }
    }
}

#[test]
fn random_buffers_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xf22);
    for len in [0usize, 1, 4, 17, 18, 19, 64, 256, 4096] {
        for _ in 0..64 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            let _ = RoapPdu::decode(&buf);
            let _ = oma_drm2::drm::wire::decode_stream(&buf);
        }
    }
}

#[test]
fn inflated_length_fields_are_rejected() {
    for variant in 0..VARIANTS {
        let frame = pdu_from_seed(variant, 7).encode();
        // Inflate every aligned 4-byte window as if it were a length field.
        for pos in (0..frame.len().saturating_sub(4)).step_by(2) {
            let mut mutated = frame.clone();
            mutated[pos..pos + 4].copy_from_slice(&u32::MAX.to_be_bytes());
            let _ = RoapPdu::decode(&mutated); // must not panic or hang
        }
        // Declaring a huge body without providing it must fail cleanly.
        let mut huge = frame.clone();
        huge[14..18].copy_from_slice(&(u32::MAX).to_be_bytes());
        assert!(RoapPdu::decode(&huge).is_err());
    }
}

#[test]
fn envelope_session_ids_surface() {
    let pdu = pdu_from_seed(2, 99);
    if let RoapPdu::RegistrationRequest(r) = &pdu {
        assert_eq!(pdu.session_id(), r.session_id);
    } else {
        panic!("variant 2 is a registration request");
    }
    assert_eq!(pdu_from_seed(8, 99).session_id(), 0);
}

#[test]
fn unsupported_version_is_a_distinct_error() {
    let mut frame = pdu_from_seed(0, 3).encode();
    frame[4] = 99;
    assert_eq!(RoapPdu::decode(&frame), Err(RoapError::UnsupportedVersion));
}
