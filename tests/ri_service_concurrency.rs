//! Concurrency test for the sharded `RiService`: a multi-threaded device
//! fleet must lose no registrations, duplicate no Rights Object ids, and
//! produce outcomes byte-identical to a sequential run with the same
//! per-device seeds.
//!
//! The full 8-thread × 64-device configuration runs in release builds (CI
//! runs this file under `--release` so the sharded path sees real
//! contention); debug builds use a scaled-down fleet to keep the tier-1
//! `cargo test` pass fast.

use oma_drm2::load::{run_fleet, run_sequential, FleetSpec};
use std::collections::HashSet;

/// 8 threads × 64 devices in release; 4 × 16 in debug builds.
fn spec() -> FleetSpec {
    if cfg!(debug_assertions) {
        FleetSpec::new(16, 4)
    } else {
        FleetSpec::new(64, 8)
    }
}

#[test]
fn concurrent_fleet_is_consistent_and_deterministic() {
    let spec = spec();
    let concurrent = run_fleet(&spec).expect("concurrent fleet run");
    let sequential = run_sequential(&spec).expect("sequential reference run");

    // No lost updates: every device ended up registered.
    assert_eq!(concurrent.registrations, spec.devices as u64);
    assert_eq!(
        concurrent.devices.len(),
        spec.devices,
        "every device produced an outcome"
    );

    // No duplicate RO ids, and the expected number were issued.
    assert!(concurrent.duplicate_ro_ids().is_empty());
    assert_eq!(
        concurrent.rights_objects,
        (spec.devices * spec.acquisitions_per_device) as u64
    );
    let distinct: HashSet<&String> = concurrent
        .devices
        .iter()
        .flat_map(|d| d.ro_ids.iter())
        .collect();
    assert_eq!(distinct.len(), spec.devices * spec.acquisitions_per_device);

    // Determinism per device seed: the concurrent run's per-device outcomes
    // (RO ids, recovered-content digests, per-phase traces and cycle bills)
    // are byte-identical to the sequential reference.
    for (c, s) in concurrent.devices.iter().zip(&sequential.devices) {
        assert_eq!(
            c, s,
            "device {} diverged from the sequential run",
            c.device_id
        );
    }
    assert!(concurrent.matches(&sequential));

    // The aggregate per-phase cycle trace equals the sequential reference's
    // trace exactly — addition commutes, scheduling must not matter.
    assert_eq!(concurrent.traces, sequential.traces);
    assert_eq!(concurrent.cycles, sequential.cycles);
}

#[test]
fn reregistration_is_idempotent_for_the_count() {
    // Running the same fleet twice against one service would re-register the
    // same device ids; the registered set must not double-count. Simulate by
    // running a fleet where two spec runs share ids through determinism.
    let spec = FleetSpec::new(4, 2);
    let first = run_fleet(&spec).expect("first run");
    let second = run_fleet(&spec).expect("second run");
    // Each run uses its own service, so counts match rather than accumulate,
    // and outcomes are identical run over run.
    assert_eq!(first.registrations, second.registrations);
    assert!(first.matches(&second));
}
