//! Golden store vectors: committed byte-exact encodings of one journal
//! record per event variant plus a full snapshot blob, guarding the WAL and
//! snapshot formats against accidental drift — a drifted store format means
//! yesterday's logs stop recovering.
//!
//! Every value is a literal (no RNG, no key generation), so the expected
//! bytes depend on nothing but the codec. If a format change is intentional,
//! bless new vectors with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test store_golden
//! ```
//!
//! and review the resulting `tests/golden/store_*.bin` diff like any other
//! storage format change.

use oma_drm2::bignum::BigUint;
use oma_drm2::crypto::pss::PssSignature;
use oma_drm2::crypto::rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
use oma_drm2::drm::journal::{
    ContentImage, DomainImage, RegisteredImage, RiEvent, RiStateImage, SessionImage,
};
use oma_drm2::drm::{Constraint, DomainId, Permission, Rights, RightsTemplate};
use oma_drm2::pki::ocsp::{CertificateStatus, OcspResponse, TbsOcspResponse};
use oma_drm2::pki::{Certificate, EntityRole, TbsCertificate, Timestamp, ValidityPeriod};
use oma_drm2::store::codec::{
    decode_record_prefix, decode_snapshot, encode_record, encode_snapshot, Record,
};
use std::path::PathBuf;

fn signature(byte: u8, len: usize) -> PssSignature {
    PssSignature::from_bytes(vec![byte; len])
}

fn certificate(subject: &str, serial: u64) -> Certificate {
    Certificate::new(
        TbsCertificate {
            serial,
            issuer: "cmla".into(),
            subject: subject.into(),
            role: EntityRole::DrmAgent,
            public_key: RsaPublicKey::new(
                BigUint::from_bytes_be(&[0xC3; 48]),
                BigUint::from_bytes_be(&65_537u32.to_be_bytes()),
            ),
            validity: ValidityPeriod::new(Timestamp::new(0), Timestamp::new(10_000)),
        },
        signature(0xA1, 48),
    )
}

fn ocsp() -> OcspResponse {
    OcspResponse::new(
        TbsOcspResponse {
            responder: "cmla".into(),
            serial: 3,
            status: CertificateStatus::Good,
            produced_at: Timestamp::new(900),
            nonce: Vec::new(),
        },
        signature(0xB2, 48),
    )
}

/// A tiny literal RSA key (real primes 251 x 241, toy exponents): enough to
/// exercise the component encoding without any key generation.
fn literal_keys() -> RsaKeyPair {
    let public = RsaPublicKey::new(BigUint::from_u64(60_491), BigUint::from_u64(7));
    let private = RsaPrivateKey::from_components(
        public,
        BigUint::from_u64(17),
        BigUint::from_u64(251),
        BigUint::from_u64(241),
    )
    .expect("literal components are consistent");
    RsaKeyPair::from_private(private)
}

/// The named golden records: one per event tag, all-literal field values.
fn golden_records() -> Vec<(&'static str, Record)> {
    let record = |event: RiEvent| Record {
        sequence: 7,
        rng_after: [0x5C; 32],
        event,
    };
    vec![
        (
            "store_content_added",
            record(RiEvent::ContentAdded {
                content_id: "cid:track-1".into(),
                cek: [0x11; 16],
                dcf_hash: [0x5A; 20],
                template: RightsTemplate::from_rights(
                    Rights::new()
                        .grant(Permission::Play, Constraint::Count(5))
                        .grant(
                            Permission::Display,
                            Constraint::Datetime(ValidityPeriod::new(
                                Timestamp::new(100),
                                Timestamp::new(200),
                            )),
                        )
                        .grant(Permission::Export, Constraint::Interval(3_600))
                        .grant(Permission::Print, Constraint::Unconstrained),
                ),
            }),
        ),
        (
            "store_session_opened",
            record(RiEvent::SessionOpened {
                session_id: 42,
                device_id: "phone-001".into(),
                ri_nonce: vec![0x77; 14],
                opened_at: Timestamp::new(1_000),
            }),
        ),
        (
            "store_device_registered",
            record(RiEvent::DeviceRegistered {
                session_id: 42,
                device_id: "phone-001".into(),
                certificate: certificate("phone-001", 9),
            }),
        ),
        (
            "store_ro_issued",
            record(RiEvent::RoIssued {
                scope: "dev:phone-001".into(),
                sequence: 3,
            }),
        ),
        (
            "store_domain_created",
            record(RiEvent::DomainCreated {
                domain_id: DomainId::new("family"),
                key: [0x22; 16],
                max_members: 4,
            }),
        ),
        (
            "store_domain_joined",
            record(RiEvent::DomainJoined {
                domain_id: DomainId::new("family"),
                device_id: "phone-001".into(),
                key: [0x22; 16],
                generation: 2,
                max_members: 4,
            }),
        ),
        (
            "store_domain_left",
            record(RiEvent::DomainLeft {
                domain_id: DomainId::new("family"),
                device_id: "phone-001".into(),
            }),
        ),
        (
            "store_ocsp_refreshed",
            record(RiEvent::OcspRefreshed { response: ocsp() }),
        ),
        (
            "store_sessions_swept",
            record(RiEvent::SessionsSwept {
                now: Timestamp::new(2_000),
                session_ids: vec![7, 9, 40],
            }),
        ),
        (
            "store_session_ttl_set",
            record(RiEvent::SessionTtlSet { seconds: 3_600 }),
        ),
    ]
}

/// A literal state image exercising every section of the snapshot encoding.
fn golden_image() -> RiStateImage {
    RiStateImage {
        id: "ri.example.com".into(),
        keys: literal_keys(),
        certificate: certificate("ri.example.com", 1),
        ca_root: certificate("cmla", 0),
        ocsp: ocsp(),
        next_session: 43,
        issued_ros: 5,
        session_ttl: 3_600,
        sessions: vec![SessionImage {
            session_id: 42,
            device_id: "phone-002".into(),
            ri_nonce: vec![0x88; 14],
            opened_at: Timestamp::new(950),
        }],
        registered: vec![RegisteredImage {
            device_id: "phone-001".into(),
            certificate: certificate("phone-001", 9),
        }],
        content: vec![ContentImage {
            content_id: "cid:track-1".into(),
            cek: [0x11; 16],
            dcf_hash: [0x5A; 20],
            template: RightsTemplate::counted(Permission::Play, 5),
        }],
        domains: vec![DomainImage {
            domain_id: DomainId::new("family"),
            key: [0x22; 16],
            generation: 2,
            max_members: 4,
            members: vec!["phone-001".into(), "phone-002".into()],
        }],
        ro_sequences: vec![("dev:phone-001".into(), 4), ("dom:family".into(), 1)],
        rng_state: [0x5C; 32],
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.bin"))
}

fn check(name: &str, encoded: &[u8], drifted: &mut Vec<String>) {
    let bless = std::env::var_os("UPDATE_GOLDEN").is_some();
    let path = golden_path(name);
    if bless {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, encoded).unwrap();
        return;
    }
    let expected = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing golden vector {}: {e}", path.display()));
    if encoded != expected {
        drifted.push(name.to_string());
    }
}

#[test]
fn golden_records_match_committed_bytes() {
    let mut drifted = Vec::new();
    for (name, record) in golden_records() {
        let encoded = encode_record(&record);
        check(name, &encoded, &mut drifted);
        if std::env::var_os("UPDATE_GOLDEN").is_none() {
            // The committed bytes must also decode back to the same record.
            let expected = std::fs::read(golden_path(name)).unwrap();
            let (decoded, consumed) = decode_record_prefix(&expected)
                .unwrap_or_else(|e| panic!("golden record {name} no longer decodes: {e}"));
            assert_eq!(consumed, expected.len(), "{name} has trailing bytes");
            assert_eq!(decoded, record, "golden record {name} decodes differently");
        }
    }
    assert!(
        drifted.is_empty(),
        "store record drift detected for {drifted:?}; if intentional, bump the \
         snapshot/record version and re-bless with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_snapshot_matches_committed_bytes() {
    let image = golden_image();
    let encoded = encode_snapshot(&image, 7);
    let mut drifted = Vec::new();
    check("store_snapshot", &encoded, &mut drifted);
    if std::env::var_os("UPDATE_GOLDEN").is_none() {
        let expected = std::fs::read(golden_path("store_snapshot")).unwrap();
        let (decoded, last_sequence) = decode_snapshot(&expected)
            .unwrap_or_else(|e| panic!("golden snapshot no longer decodes: {e}"));
        assert_eq!(last_sequence, 7);
        assert_eq!(decoded, image, "golden snapshot decodes differently");
    }
    assert!(
        drifted.is_empty(),
        "store snapshot drift detected; if intentional, bump the snapshot \
         version and re-bless with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_coverage_spans_every_event_tag() {
    use std::collections::HashSet;
    let names: HashSet<&str> = golden_records().iter().map(|(n, _)| *n).collect();
    assert_eq!(names.len(), 10, "one golden vector per event variant");
}
