//! Adversarial ROAP tests: replayed, forged and stale protocol messages
//! must be rejected with the specific error the protocol defines — the seed
//! suite only exercised happy paths.

use oma_drm2::crypto::pss::PssSignature;
use oma_drm2::crypto::rsa::RsaKeyPair;
use oma_drm2::crypto::CryptoEngine;
use oma_drm2::drm::agent::OCSP_MAX_AGE_SECONDS;
use oma_drm2::drm::roap::{DeviceHello, RegistrationRequest, RoapError, NONCE_LEN};
use oma_drm2::drm::{
    ContentIssuer, DrmAgent, DrmError, Permission, RiService, RightsTemplate, RoapTransport,
};
use oma_drm2::explore::fuzz;
use oma_drm2::net::{RoapEventServer, RoapTcpServer, ServerConfig, TcpTransport};
use oma_drm2::pki::{CertificationAuthority, EntityRole, PkiError, Timestamp, ValidityPeriod};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const BITS: usize = 384;

struct World {
    ca: CertificationAuthority,
    service: RiService,
    rng: StdRng,
}

fn world(seed: u64) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ca = CertificationAuthority::new("cmla", BITS, &mut rng);
    let service = RiService::new("ri.example.com", BITS, &mut ca, &mut rng);
    World { ca, service, rng }
}

/// Builds and signs a pass-3 RegistrationRequest exactly as an honest
/// device would.
fn signed_registration_request(
    session_id: u64,
    device_id: &str,
    keys: &RsaKeyPair,
    certificate: &oma_drm2::pki::Certificate,
    engine: &CryptoEngine,
    now: Timestamp,
) -> RegistrationRequest {
    let device_nonce = engine.random_nonce(NONCE_LEN);
    let signed =
        RegistrationRequest::signed_bytes(session_id, device_id, &device_nonce, now, certificate);
    let signature = engine.pss_sign(keys.private(), &signed).unwrap();
    RegistrationRequest {
        session_id,
        device_id: device_id.to_string(),
        device_nonce,
        request_time: now,
        certificate: certificate.clone(),
        signature,
    }
}

#[test]
fn replayed_registration_request_is_rejected() {
    let mut w = world(0xbad0);
    let now = Timestamp::new(1_000);
    let keys = RsaKeyPair::generate(BITS, &mut w.rng);
    let cert = w.ca.issue(
        "victim-phone",
        EntityRole::DrmAgent,
        keys.public().clone(),
        ValidityPeriod::starting_at(Timestamp::new(0), 1_000_000),
    );
    let engine = CryptoEngine::with_seed(7);

    let hello = w.service.hello(&DeviceHello::new("victim-phone"));
    let request =
        signed_registration_request(hello.session_id, "victim-phone", &keys, &cert, &engine, now);

    // The honest exchange succeeds and consumes the session...
    w.service.process_registration(&request, now).unwrap();
    assert!(w.service.is_registered("victim-phone"));

    // ...so replaying the very same request (same session id, same nonce)
    // must be rejected: the session was claimed atomically.
    assert_eq!(
        w.service.process_registration(&request, now),
        Err(RoapError::UnknownSession)
    );
    assert_eq!(
        DrmError::from(RoapError::UnknownSession),
        DrmError::Roap(RoapError::UnknownSession)
    );
}

#[test]
fn registration_with_wrong_device_signature_is_rejected() {
    let mut w = world(0xbad1);
    let now = Timestamp::new(1_000);
    let keys = RsaKeyPair::generate(BITS, &mut w.rng);
    // The certificate is honest, but the attacker signs with a different key.
    let wrong_keys = RsaKeyPair::generate(BITS, &mut w.rng);
    let cert = w.ca.issue(
        "spoofed-phone",
        EntityRole::DrmAgent,
        keys.public().clone(),
        ValidityPeriod::starting_at(Timestamp::new(0), 1_000_000),
    );
    let engine = CryptoEngine::with_seed(8);
    let hello = w.service.hello(&DeviceHello::new("spoofed-phone"));
    let request = signed_registration_request(
        hello.session_id,
        "spoofed-phone",
        &wrong_keys,
        &cert,
        &engine,
        now,
    );
    assert_eq!(
        w.service.process_registration(&request, now),
        Err(RoapError::SignatureInvalid)
    );
    assert!(!w.service.is_registered("spoofed-phone"));
}

#[test]
fn certificate_from_wrong_ca_is_rejected() {
    let mut w = world(0xbad2);
    let now = Timestamp::new(1_000);
    // A parallel trust hierarchy the Rights Issuer does not anchor to.
    let mut evil_ca = CertificationAuthority::new("evil-ca", BITS, &mut w.rng);
    let keys = RsaKeyPair::generate(BITS, &mut w.rng);
    let cert = evil_ca.issue(
        "rogue-phone",
        EntityRole::DrmAgent,
        keys.public().clone(),
        ValidityPeriod::starting_at(Timestamp::new(0), 1_000_000),
    );
    let engine = CryptoEngine::with_seed(9);
    let hello = w.service.hello(&DeviceHello::new("rogue-phone"));
    let request =
        signed_registration_request(hello.session_id, "rogue-phone", &keys, &cert, &engine, now);
    assert_eq!(
        w.service.process_registration(&request, now),
        Err(RoapError::CertificateInvalid)
    );
    assert!(!w.service.is_registered("rogue-phone"));
}

#[test]
fn tampered_ro_response_signature_is_rejected() {
    let mut w = world(0xbad3);
    let now = Timestamp::new(1_000);
    let ci = ContentIssuer::new("ci");
    let (dcf, cek) = ci.package(b"protected track", "cid:track", &mut w.rng);
    w.service.add_content(
        "cid:track",
        cek,
        &dcf,
        RightsTemplate::unlimited(Permission::Play),
    );
    let mut agent = DrmAgent::new("honest-phone", BITS, &mut w.ca, &mut w.rng);
    agent.register_with(&w.service, now).unwrap();
    let response = agent
        .acquire_rights_with(&w.service, "cid:track", now)
        .unwrap();

    let ri_cert = agent
        .ri_context("ri.example.com")
        .unwrap()
        .ri_certificate
        .clone();
    let nonce = response.device_nonce.clone();

    // The genuine response verifies.
    response.verify(agent.engine(), &ri_cert, &nonce).unwrap();

    // A man-in-the-middle flips one signature byte: SignatureInvalid.
    let mut tampered = response.clone();
    let mut bytes = tampered.signature.as_bytes().to_vec();
    bytes[0] ^= 0x80;
    tampered.signature = PssSignature::from_bytes(bytes);
    assert_eq!(
        tampered.verify(agent.engine(), &ri_cert, &nonce),
        Err(RoapError::SignatureInvalid)
    );
    assert_eq!(
        DrmError::from(RoapError::SignatureInvalid),
        DrmError::Roap(RoapError::SignatureInvalid)
    );

    // A replayed response with a stale nonce echo: Malformed.
    let other_nonce = vec![0u8; NONCE_LEN];
    assert_eq!(
        response.verify(agent.engine(), &ri_cert, &other_nonce),
        Err(RoapError::Malformed)
    );

    // Tampering with the Rights Object itself is caught at installation.
    let mut mac_tampered = response.clone();
    mac_tampered.rights_object.mac[0] ^= 1;
    assert_eq!(
        agent.install_rights(&mac_tampered, now),
        Err(DrmError::RightsObjectIntegrity)
    );
}

#[test]
fn stale_ocsp_response_is_rejected() {
    let mut w = world(0xbad4);
    let mut agent = DrmAgent::new("late-phone", BITS, &mut w.ca, &mut w.rng);

    // The service fetched its OCSP response at t = 0; far past the maximum
    // age the agent must refuse to trust it.
    let far_future = Timestamp::new(OCSP_MAX_AGE_SECONDS + 50_000);
    assert_eq!(
        agent.register_with(&w.service, far_future),
        Err(DrmError::Pki(PkiError::OcspResponseStale))
    );
    assert!(!agent.is_registered_with("ri.example.com"));

    // A fresh response fixes it — `refresh_ocsp` takes `&self` and swaps the
    // shared response atomically for all concurrent registrations.
    w.service.refresh_ocsp(&w.ca, far_future);
    agent.register_with(&w.service, far_future).unwrap();

    // A revoked Rights Issuer is rejected even with a fresh response.
    let mut victim = DrmAgent::new("careful-phone", BITS, &mut w.ca, &mut w.rng);
    w.ca.revoke(w.service.certificate().serial());
    w.service.refresh_ocsp(&w.ca, far_future);
    assert_eq!(
        victim.register_with(&w.service, far_future),
        Err(DrmError::Pki(PkiError::CertificateRevoked))
    );
}

// ---------------------------------------------------------------------------
// The malicious-peer corpus, replayed through every server core
// ---------------------------------------------------------------------------

/// Seed of the fuzz world; [`fuzz::build_corpus`] is a pure function of it,
/// so each core gets a byte-identical world and byte-identical attack
/// frames.
const CORPUS_SEED: u64 = 42;

/// Delivers the corpus through one already-connected transport, returning
/// the raw response frames in corpus order.
fn deliver_corpus<T: RoapTransport>(attacks: &[fuzz::Attack], transport: &T) -> Vec<Vec<u8>> {
    attacks
        .iter()
        .map(|attack| {
            transport
                .roundtrip(&attack.frame)
                .unwrap_or_else(|e| panic!("{}: transport failed: {e:?}", attack.name))
        })
        .collect()
}

#[test]
fn malicious_corpus_is_answered_identically_by_all_three_server_cores() {
    // Core 1: in-process dispatch — also the oracle for the expected
    // status frame of every attack.
    let (world, attacks) = fuzz::build_corpus(CORPUS_SEED);
    let in_proc: Vec<Vec<u8>> = attacks
        .iter()
        .map(|attack| world.service.dispatch(&attack.frame))
        .collect();
    for (attack, response) in attacks.iter().zip(&in_proc) {
        assert_eq!(
            response,
            &attack.expected_frame(),
            "{}: wrong status frame from in-process dispatch",
            attack.name
        );
    }

    // Core 2: the thread-pool TCP server, fresh identical world.
    let (world, attacks_tcp) = fuzz::build_corpus(CORPUS_SEED);
    let server = RoapTcpServer::bind(Arc::clone(&world.service), ServerConfig::default())
        .expect("bind thread-pool server");
    let transport = TcpTransport::connect(server.local_addr()).expect("connect");
    let tcp = deliver_corpus(&attacks_tcp, &transport);
    drop(transport);
    server.shutdown();

    // Core 3: the readiness event-loop server, fresh identical world.
    let (world, attacks_event) = fuzz::build_corpus(CORPUS_SEED);
    let server = RoapEventServer::bind(Arc::clone(&world.service), ServerConfig::default())
        .expect("bind event-loop server");
    let transport = TcpTransport::connect(server.local_addr()).expect("connect");
    let event = deliver_corpus(&attacks_event, &transport);
    drop(transport);
    server.shutdown();

    // Byte identity across all three cores, attack by attack.
    for ((attack, by_tcp), by_event) in attacks.iter().zip(&tcp).zip(&event) {
        let reference = attack.expected_frame();
        assert_eq!(
            by_tcp, &reference,
            "{}: thread-pool TCP core diverged from the in-process oracle",
            attack.name
        );
        assert_eq!(
            by_event, &reference,
            "{}: event-loop core diverged from the in-process oracle",
            attack.name
        );
    }
    assert_eq!(in_proc, tcp);
    assert_eq!(in_proc, event);
}
