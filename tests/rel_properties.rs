//! Stateful property tests for REL enforcement.
//!
//! A random program of `consume` calls is interleaved across several devices
//! that each installed Rights Objects from the same templates. The system is
//! checked against a simple reference model:
//!
//! * a count-constrained template never yields more successful consumptions
//!   per device than its count, and every consumption after exhaustion fails
//!   with `ConstraintViolated`,
//! * a datetime-constrained template never allows a consumption outside its
//!   window — in particular never after expiry,
//! * devices are independent: one device's consumption must not spend
//!   another device's count.

use oma_drm2::drm::{
    ContentIssuer, Dcf, DrmAgent, DrmError, Permission, RiService, RightsObjectId, RightsTemplate,
};
use oma_drm2::pki::{CertificationAuthority, Timestamp, ValidityPeriod};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BITS: usize = 384;
const DEVICES: usize = 2;
const WINDOW_START: u64 = 500;
const WINDOW_END: u64 = 2_000;

struct Device {
    agent: DrmAgent,
    counted_ro: RightsObjectId,
    timed_ro: RightsObjectId,
    remaining: u32,
}

struct World {
    devices: Vec<Device>,
    counted_dcf: Dcf,
    timed_dcf: Dcf,
}

fn world(seed: u64, count: u32) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ca = CertificationAuthority::new("cmla", BITS, &mut rng);
    let service = RiService::new("ri", BITS, &mut ca, &mut rng);
    let ci = ContentIssuer::new("ci");
    let now = Timestamp::new(WINDOW_START);

    let (counted_dcf, counted_cek) = ci.package(b"counted content", "cid:counted", &mut rng);
    service.add_content(
        "cid:counted",
        counted_cek,
        &counted_dcf,
        RightsTemplate::counted(Permission::Play, count),
    );
    let (timed_dcf, timed_cek) = ci.package(b"timed content", "cid:timed", &mut rng);
    service.add_content(
        "cid:timed",
        timed_cek,
        &timed_dcf,
        RightsTemplate::timed(
            Permission::Play,
            ValidityPeriod::new(Timestamp::new(WINDOW_START), Timestamp::new(WINDOW_END)),
        ),
    );

    let devices = (0..DEVICES)
        .map(|i| {
            let mut agent = DrmAgent::new(&format!("phone-{i}"), BITS, &mut ca, &mut rng);
            agent.register_with(&service, now).unwrap();
            let response = agent
                .acquire_rights_with(&service, "cid:counted", now)
                .unwrap();
            let counted_ro = agent.install_rights(&response, now).unwrap();
            let response = agent
                .acquire_rights_with(&service, "cid:timed", now)
                .unwrap();
            let timed_ro = agent.install_rights(&response, now).unwrap();
            Device {
                agent,
                counted_ro,
                timed_ro,
                remaining: count,
            }
        })
        .collect();
    World {
        devices,
        counted_dcf,
        timed_dcf,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_interleavings_never_overspend_or_outlive_rights(
        count in 1u32..4,
        ops in proptest::collection::vec(any::<u8>(), 1..48),
    ) {
        let World {
            mut devices,
            counted_dcf,
            timed_dcf,
        } = world(0x7e57 ^ (count as u64), count);
        let mut successes = [0u32; DEVICES];

        for op in ops {
            let device = (op as usize) % DEVICES;
            let timed = op & 0x40 != 0;
            let past_expiry = op & 0x80 != 0;
            let d = &mut devices[device];

            if timed {
                let t = if past_expiry {
                    WINDOW_END + 1 + (op & 0x3f) as u64
                } else {
                    WINDOW_START + (op & 0x3f) as u64
                };
                let result =
                    d.agent
                        .consume(&d.timed_ro, &timed_dcf, Permission::Play, Timestamp::new(t));
                if past_expiry {
                    prop_assert_eq!(
                        result,
                        Err(DrmError::ConstraintViolated),
                        "datetime RO must never be consumable after expiry (t={})",
                        t
                    );
                } else {
                    prop_assert!(result.is_ok(), "inside the window consumption succeeds");
                }
            } else {
                let result = d.agent.consume(
                    &d.counted_ro,
                    &counted_dcf,
                    Permission::Play,
                    Timestamp::new(WINDOW_START),
                );
                if d.remaining > 0 {
                    prop_assert!(result.is_ok(), "count not exhausted yet");
                    d.remaining -= 1;
                    successes[device] += 1;
                } else {
                    prop_assert_eq!(result, Err(DrmError::ConstraintViolated));
                }
            }
        }

        for (device, spent) in successes.iter().enumerate() {
            prop_assert!(
                *spent <= count,
                "device {} consumed {} times against a count of {}",
                device,
                spent,
                count
            );
            let d = &devices[device];
            prop_assert_eq!(
                d.agent.remaining_count(&d.counted_ro, Permission::Play),
                if *spent == 0 { None } else { Some(count - spent) },
                "device-side state must mirror the model"
            );
        }
    }
}
