//! Metrics parity between the two server cores.
//!
//! The thread-pool server and the readiness event loop are supposed to be
//! drop-in replacements for each other — and that promise extends to what
//! an operator sees on the metrics surface. This test drives both cores
//! through an **identical** shed/reap/busy scenario: two connections held
//! open while a third is shed with `Busy`, one connection reaped for byte
//! idleness, one reaped for stalling mid-frame. At the end, both cores
//! must report the same `MetricsSnapshot` counter for counter.
//!
//! The one sanctioned divergence is the hand-off queue: the thread core
//! parks accepted connections in a bounded queue (`queue_depth` /
//! `peak_queue_depth` move), the event core has no queue at all (both
//! stay 0 forever). The comparison pins that down explicitly instead of
//! papering over it.

use oma_drm2::drm::{RiService, RoapPdu, RoapStatus};
use oma_drm2::net::{read_frame, MetricsSnapshot, RoapEventServer, RoapTcpServer, ServerConfig};
use oma_drm2::pki::{CertificationAuthority, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const SEED: u64 = 0x9a41_17e5;
const BITS: usize = 512;

/// Generous total deadline per polling stage; the scenario itself is paced
/// by `IDLE_TIMEOUT` + `FRAME_TIMEOUT`, not by this.
const STAGE_DEADLINE: Duration = Duration::from_secs(15);
const IDLE_TIMEOUT: Duration = Duration::from_millis(1_500);
const FRAME_TIMEOUT: Duration = Duration::from_millis(400);

fn service() -> Arc<RiService> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut ca = CertificationAuthority::new("cmla", BITS, &mut rng);
    Arc::new(RiService::new("ri.example.com", BITS, &mut ca, &mut rng))
}

fn config() -> ServerConfig {
    ServerConfig {
        // Thread core: one worker plus a one-slot queue ⇒ the third
        // simultaneous connection is shed. Event core: a two-slot
        // connection table ⇒ the third simultaneous connection is shed.
        workers: 1,
        queue_depth: 1,
        max_connections: 2,
        idle_timeout: IDLE_TIMEOUT,
        frame_timeout: FRAME_TIMEOUT,
        clock: Some(Timestamp::new(1_000)),
        ..ServerConfig::default()
    }
}

/// Polls the server's metrics until `pred` holds, panicking with the last
/// snapshot when the stage deadline passes. Every stage transition in the
/// scenario waits on observable state instead of sleeping a fixed amount,
/// so the test is timing-robust without being slow.
fn wait_for(
    metrics: &oma_drm2::net::ServerMetrics,
    what: &str,
    pred: impl Fn(&MetricsSnapshot) -> bool,
) -> MetricsSnapshot {
    let deadline = Instant::now() + STAGE_DEADLINE;
    loop {
        let snap = metrics.snapshot();
        if pred(&snap) {
            return snap;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last snapshot: {snap}"
        );
        thread::sleep(Duration::from_millis(10));
    }
}

/// Drives the shed/reap/busy scenario against a bound server and returns
/// the final snapshot once everything has drained.
fn run_scenario(metrics: &oma_drm2::net::ServerMetrics, addr: SocketAddr) -> MetricsSnapshot {
    // Stage 1: connection A occupies the single serving slot. On the
    // thread core that means "dequeued by the worker" (queue back to 0);
    // on the event core accept is immediate and the queue never moves.
    let conn_a = TcpStream::connect(addr).expect("connect A");
    wait_for(metrics, "A in service", |s| {
        s.accepted == 1 && s.active == 1 && s.queue_depth == 0
    });

    // Stage 2: connection B fills the last free slot (thread: the one
    // queue slot; event: the second table slot).
    let conn_b = TcpStream::connect(addr).expect("connect B");
    wait_for(metrics, "B accepted", |s| s.accepted == 2 && s.active == 2);

    // Stage 3: connection C finds the server full and is shed. Both cores
    // promise a best-effort `Busy` status before hanging up — read it back
    // and hold them to the exact bytes.
    let mut conn_c = TcpStream::connect(addr).expect("connect C");
    wait_for(metrics, "C shed", |s| s.shed == 1 && s.active == 2);
    let busy = read_frame(&mut conn_c).expect("read Busy frame from shed connection");
    assert_eq!(
        busy,
        RoapPdu::Status(RoapStatus::Busy).encode(),
        "a shed connection must be told Busy, byte-for-byte"
    );
    drop(conn_c);

    // Stage 4: A and B hang up; the server serves out both (an orderly
    // EOF counts as a finished conversation).
    drop(conn_a);
    drop(conn_b);
    wait_for(metrics, "A and B served", |s| {
        s.served == 2 && s.active == 0
    });

    // Stage 5: D connects and never sends a byte — reaped for idleness.
    let conn_d = TcpStream::connect(addr).expect("connect D");
    wait_for(metrics, "D idle-reaped", |s| {
        s.reaped_idle == 1 && s.served == 3
    });
    drop(conn_d);

    // Stage 6: E starts a frame but never completes it — reaped by the
    // frame deadline (the slowloris guard), not the idle one.
    let mut conn_e = TcpStream::connect(addr).expect("connect E");
    let frame = RoapPdu::Status(RoapStatus::Busy).encode();
    conn_e
        .write_all(&frame[..frame.len() - 1])
        .expect("write partial frame");
    wait_for(metrics, "E frame-reaped", |s| {
        s.reaped_frame == 1 && s.served == 4
    });
    drop(conn_e);

    wait_for(metrics, "all drained", |s| s.active == 0)
}

/// Zeroes the queue-gauge fields so the backend-agnostic counters can be
/// compared with one `assert_eq!`; the queue fields are asserted
/// separately, per backend.
fn normalized(snap: &MetricsSnapshot) -> MetricsSnapshot {
    MetricsSnapshot {
        queue_depth: 0,
        peak_queue_depth: 0,
        ..*snap
    }
}

#[test]
fn both_server_cores_report_identical_metrics_for_the_same_scenario() {
    let threads = RoapTcpServer::bind(service(), config()).expect("bind thread server");
    let threads_snap = run_scenario(threads.metrics(), threads.local_addr());
    threads.shutdown();

    let event = RoapEventServer::bind(service(), config()).expect("bind event server");
    let event_snap = run_scenario(event.metrics(), event.local_addr());
    event.shutdown();

    // The scenario's ground truth, spelled out once: 5 accepts, of which
    // 1 shed, 2 served by EOF, 1 idle-reaped, 1 frame-reaped (reaped
    // conversations count as served — they finished, just not happily);
    // 3 connections existed at the moment C was shed.
    for (core, snap) in [("threads", &threads_snap), ("event", &event_snap)] {
        assert_eq!(snap.accepted, 5, "{core}: {snap}");
        assert_eq!(snap.served, 4, "{core}: {snap}");
        assert_eq!(snap.shed, 1, "{core}: {snap}");
        assert_eq!(snap.reaped_idle, 1, "{core}: {snap}");
        assert_eq!(snap.reaped_frame, 1, "{core}: {snap}");
        assert_eq!(snap.active, 0, "{core}: {snap}");
        assert_eq!(snap.peak_active, 3, "{core}: {snap}");
    }

    // Counter-for-counter parity, queue gauges aside.
    assert_eq!(
        normalized(&threads_snap),
        normalized(&event_snap),
        "the two cores disagreed about an identical scenario:\n  threads: {threads_snap}\n  event:   {event_snap}"
    );

    // The sanctioned divergence: the thread core's hand-off queue was
    // exercised (B parked in it; C bounced off it while briefly counted),
    // the event core has no queue to park in.
    assert!(
        threads_snap.peak_queue_depth >= 1,
        "thread core never used its hand-off queue: {threads_snap}"
    );
    assert_eq!(threads_snap.queue_depth, 0, "threads: {threads_snap}");
    assert_eq!(event_snap.peak_queue_depth, 0, "event: {event_snap}");
    assert_eq!(event_snap.queue_depth, 0, "event: {event_snap}");
}
