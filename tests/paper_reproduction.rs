//! Integration tests that reproduce the paper's headline numbers from the
//! public API of the umbrella crate — the executable form of EXPERIMENTS.md.

use oma_drm2::perf::arch::Architecture;
use oma_drm2::perf::cost::CostTable;
use oma_drm2::perf::report;
use oma_drm2::perf::runner;
use oma_drm2::perf::usecase::UseCaseSpec;

fn assert_close(actual: f64, expected: f64, tolerance: f64, what: &str) {
    assert!(
        (actual - expected).abs() / expected <= tolerance,
        "{what}: model {actual:.1} vs paper {expected:.1} (tolerance {tolerance})"
    );
}

#[test]
fn figure6_music_player_totals() {
    let comparison = report::architecture_comparison(
        &UseCaseSpec::music_player(),
        &CostTable::paper(),
        &Architecture::standard_variants(),
    );
    assert_close(
        comparison.total_millis("SW").unwrap(),
        7_730.0,
        0.15,
        "Figure 6 SW",
    );
    assert_close(
        comparison.total_millis("SW/HW").unwrap(),
        800.0,
        0.15,
        "Figure 6 SW/HW",
    );
    assert_close(
        comparison.total_millis("HW").unwrap(),
        190.0,
        0.15,
        "Figure 6 HW",
    );
}

#[test]
fn figure7_ringtone_totals() {
    let comparison = report::architecture_comparison(
        &UseCaseSpec::ringtone(),
        &CostTable::paper(),
        &Architecture::standard_variants(),
    );
    assert_close(
        comparison.total_millis("SW").unwrap(),
        900.0,
        0.15,
        "Figure 7 SW",
    );
    assert_close(
        comparison.total_millis("SW/HW").unwrap(),
        620.0,
        0.15,
        "Figure 7 SW/HW",
    );
    assert_close(
        comparison.total_millis("HW").unwrap(),
        12.0,
        0.15,
        "Figure 7 HW",
    );
}

#[test]
fn figure5_dominance_flips_between_use_cases() {
    use oma_drm2::perf::report::BreakdownCategory;
    let breakdowns = report::figure5(&CostTable::paper());
    let ringtone = breakdowns
        .iter()
        .find(|b| b.use_case == "Ringtone")
        .unwrap();
    let music = breakdowns
        .iter()
        .find(|b| b.use_case == "Music Player")
        .unwrap();

    // Ringtone: PKI dominates. Music Player: bulk data (AES + SHA-1) dominates.
    assert!(
        ringtone.share(BreakdownCategory::PkiPrivateKeyOp)
            > ringtone.share(BreakdownCategory::AesDecryption)
    );
    assert!(
        music.share(BreakdownCategory::AesDecryption) + music.share(BreakdownCategory::Sha1) > 85.0
    );
}

#[test]
fn measured_protocol_trace_prices_close_to_the_analytic_model() {
    // Run the real protocol at ringtone scale and compare the priced trace
    // with the analytic model's prediction for the same spec — the two paths
    // of the methodology must agree.
    let spec = UseCaseSpec::ringtone().with_rsa_modulus_bits(512);
    let run = runner::measure_use_case(&spec, 99).expect("protocol run");
    let table = CostTable::paper();

    let analytic_traces = oma_drm2::perf::analytic::phase_traces(&spec);
    for arch in Architecture::standard_variants() {
        let measured_ms = arch.millis(&run.traces.total(spec.accesses()), &table);
        let analytic_ms = arch.millis(&analytic_traces.total(spec.accesses()), &table);
        assert!(
            (measured_ms - analytic_ms).abs() / analytic_ms < 0.05,
            "{}: measured {measured_ms:.1} ms vs analytic {analytic_ms:.1} ms",
            arch.name()
        );
    }
}

#[test]
fn rsa_accelerator_alone_is_a_poor_investment_for_bulk_content() {
    // The §4 discussion: PKI hardware has "only limited benefits" for the
    // Music Player case because its cost does not depend on the DCF size.
    use oma_drm2::crypto::Algorithm;
    use oma_drm2::perf::arch::{Implementation, DEFAULT_CLOCK_HZ};

    let rsa_only = Architecture::custom(
        "RSA-HW",
        |alg| match alg {
            Algorithm::RsaPublic | Algorithm::RsaPrivate => Implementation::Hardware,
            _ => Implementation::Software,
        },
        DEFAULT_CLOCK_HZ,
    );
    let table = CostTable::paper();
    let spec = UseCaseSpec::music_player();
    let traces = oma_drm2::perf::analytic::phase_traces(&spec);
    let total = traces.total(spec.accesses());

    let software_ms = Architecture::software().millis(&total, &table);
    let rsa_only_ms = rsa_only.millis(&total, &table);
    let hybrid_ms = Architecture::hybrid().millis(&total, &table);

    // RSA acceleration saves well under 10% on the music player...
    assert!(rsa_only_ms > software_ms * 0.90);
    // ...whereas AES/SHA-1 acceleration saves close to 90%.
    assert!(hybrid_ms < software_ms * 0.15);
}
