//! Acceptance tests for the readiness event loop (`RoapEventServer`).
//!
//! Two claims are on trial. **Equivalence:** the event loop is a drop-in
//! replacement for the thread-pool server — a TCP fleet driven against it
//! produces byte-identical per-device observables (RO ids, recovered
//! content digests, operation traces, cycle bills) to both the thread-pool
//! run and the sequential in-process reference. **Independence:** its
//! concurrency does not come from the `workers` knob — a single-worker
//! event server holds a parked fleet far larger than any thread pool
//! could, while still answering the few devices that wake up.

use oma_drm2::load::{
    run_fleet_tcp_with, run_idle_fleet, run_sequential, FleetSpec, IdleFleetSpec, TcpBackend,
};

/// A fleet big enough to overlap connections but small enough for CI.
fn spec() -> FleetSpec {
    FleetSpec::new(5, 3).with_acquisitions(2)
}

#[test]
fn event_loop_fleet_matches_the_sequential_reference() {
    let spec = spec();
    let event = run_fleet_tcp_with(&spec, TcpBackend::EventLoop).expect("event-loop fleet");
    let reference = run_sequential(&spec).expect("sequential reference");
    assert!(
        event.matches(&reference),
        "event-loop TCP fleet diverged from the in-process reference"
    );
}

#[test]
fn event_loop_and_thread_pool_are_byte_identical() {
    let spec = spec();
    let event = run_fleet_tcp_with(&spec, TcpBackend::EventLoop).expect("event-loop fleet");
    let threads = run_fleet_tcp_with(&spec, TcpBackend::ThreadPool).expect("thread-pool fleet");
    assert!(
        event.matches(&threads),
        "the two server cores disagreed about identical devices"
    );
    assert_eq!(event.devices.len(), spec.devices);
    for (e, t) in event.devices.iter().zip(&threads.devices) {
        assert_eq!(e, t, "per-device outcome diverged between backends");
    }
}

#[test]
fn single_worker_event_loop_holds_a_parked_fleet() {
    // 300 parked connections, 6 of which wake up for a full life-cycle,
    // against a server configured with ONE worker. A thread-per-connection
    // core starves at `workers` parked sockets; the event loop must not.
    let mut spec = IdleFleetSpec::new(300, 6);
    spec.client_threads = 8;
    assert_eq!(spec.fleet.workers, 1);

    let report = run_idle_fleet(&spec).expect("idle fleet");
    assert_eq!(report.parked, 300);
    assert_eq!(report.active.len(), 6, "every active device completed");
    assert!(
        report.metrics.peak_active >= 300,
        "peak_active {} never reached the parked population",
        report.metrics.peak_active
    );
    assert_eq!(report.metrics.shed, 0);
    assert_eq!(report.metrics.reaped_idle, 0);
    assert_eq!(report.metrics.reaped_frame, 0);

    // Outcomes were already verified byte-for-byte against the in-process
    // reference inside the harness; spot-check the shape here.
    for outcome in &report.active {
        assert_eq!(outcome.ro_ids.len(), spec.fleet.acquisitions_per_device);
    }
}
