//! # oma-drm2
//!
//! An OMA DRM 2 functional model together with the embedded
//! hardware/software performance model of Thull & Sannino,
//! *"Performance Considerations for an Embedded Implementation of OMA DRM 2"*
//! (DATE 2005).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`bignum`] — arbitrary-precision arithmetic (RSA substrate),
//! * [`crypto`] — from-scratch AES-128, SHA-1, HMAC, AES key wrap, KDF2,
//!   RSA-1024 and RSA-PSS, the pluggable
//!   [`CryptoBackend`](crypto::backend::CryptoBackend) layer (software vs
//!   simulated hardware macros), plus the instrumented
//!   [`CryptoEngine`](crypto::CryptoEngine),
//! * [`pki`] — certificates, certification authority and OCSP,
//! * [`drm`] — DCF, Rights Objects, ROAP, DRM Agent, Rights Issuer, Content
//!   Issuer and domains (every actor accepts a crypto backend),
//! * [`net`] — ROAP over TCP: the [`RoapTcpServer`](net::RoapTcpServer)
//!   bounded-pool server, the [`RoapEventServer`](net::RoapEventServer)
//!   readiness event loop (10k+ idle connections on one thread) and the
//!   [`TcpTransport`](net::TcpTransport) client transport, std-only,
//! * [`store`] — durable Rights Issuer storage: the CRC-framed write-ahead
//!   log, full-state snapshots and crash recovery behind
//!   [`RiService::recover`](drm::RiService::recover),
//! * [`cluster`] — multi-RI scale-out: WAL log-shipping replication
//!   ([`Primary`](cluster::ship::Primary)/[`Follower`](cluster::ship::Follower)),
//!   epoch-fenced primary failover that provably never re-issues an id,
//!   and consistent-hash sharding via
//!   [`ClusterRouter`](cluster::ClusterRouter),
//! * [`perf`] — the Table 1 cost model, architecture variants (each mapping
//!   1:1 onto an executable backend), use cases, the analytic and measured
//!   models and figure generators,
//! * [`load`] — the deterministic device-fleet load harness: worker threads
//!   drive per-device-seeded agents against one shared concurrent
//!   [`RiService`](drm::RiService) and report throughput next to the paper's
//!   tables,
//! * [`explore`] — the model-checking-style interleaving
//!   [`explorer`](explore::explore) over the typed ROAP session machines
//!   (reorder/duplicate/drop faults, state-hash pruning, protocol
//!   invariants) and the malicious-peer protocol
//!   [`fuzzer`](explore::fuzz),
//! * [`obs`] — the std-only observability surface: mergeable log-bucketed
//!   [`Histogram`](obs::Histogram)s, counters and gauges behind a named
//!   [`Registry`](obs::Registry), the bounded per-frame
//!   [`SpanRecorder`](obs::SpanRecorder) ring, the deterministic
//!   Prometheus-style text exposition and the optional admin listener —
//!   threaded through every server core behind
//!   [`ObsConfig`](obs::ObsConfig).
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the benchmark harness that regenerates every table and
//! figure of the paper.
//!
//! # Quickstart
//!
//! ```
//! use oma_drm2::drm::{ContentIssuer, DrmAgent, Permission, RightsIssuer, RightsTemplate};
//! use oma_drm2::pki::{CertificationAuthority, Timestamp};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), oma_drm2::drm::DrmError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut ca = CertificationAuthority::new("cmla", 512, &mut rng);
//! let mut ri = RightsIssuer::new("ri.example.com", 512, &mut ca, &mut rng);
//! let ci = ContentIssuer::new("ci.example.com");
//! let mut agent = DrmAgent::new("phone-001", 512, &mut ca, &mut rng);
//!
//! let now = Timestamp::new(1_000);
//! let (dcf, cek) = ci.package(b"ringtone bytes", "cid:ring", &mut rng);
//! ri.add_content("cid:ring", cek, &dcf, RightsTemplate::unlimited(Permission::Play));
//!
//! agent.register_with(ri.service(), now)?;
//! let response = agent.acquire_rights_with(ri.service(), "cid:ring", now)?;
//! let ro_id = agent.install_rights(&response, now)?;
//! assert_eq!(agent.consume(&ro_id, &dcf, Permission::Play, now)?, b"ringtone bytes");
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use oma_bignum as bignum;
pub use oma_cluster as cluster;
pub use oma_crypto as crypto;
pub use oma_drm as drm;
pub use oma_explore as explore;
pub use oma_load as load;
pub use oma_net as net;
pub use oma_obs as obs;
pub use oma_perf as perf;
pub use oma_pki as pki;
pub use oma_store as store;
