//! Ten thousand mostly-idle handsets on one event-loop thread.
//!
//! This is the deployment shape the readiness event loop exists for:
//! almost every connected device is parked, and the few that wake up
//! arrive on a Poisson process. A thread-per-connection core cannot hold
//! it — each parked socket would pin a worker — so the parent binds a
//! single-worker `RoapEventServer` and proves `peak_active >= 10_000`.
//!
//! The fleet is split across **two child processes** (this same binary,
//! re-executed with `--idle-client`) because 10k loopback connections cost
//! 10k file descriptors on *each* side of the socket; one process holding
//! both sides would need >20k fds, which is exactly the default limit.
//! The children rebuild the deterministic world from the shared spec, park
//! 5 000 connections each, rendezvous with the parent over stdin/stdout so
//! the whole fleet is provably connected at the same instant, then wake
//! their active devices and verify every outcome against an in-process
//! reference.
//!
//! Run with: `cargo run --release --example idle_fleet`

use oma_drm2::load::{bind_idle_server, drive_idle_clients_with, IdleFleetSpec};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::SocketAddr;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Instant;

/// Parked connections in total, across both children.
const TOTAL_DEVICES: usize = 10_000;
/// Devices that wake up for a full registration-and-acquisition cycle.
const ACTIVE_DEVICES: usize = 16;
/// Client processes the fleet is split across.
const CHILDREN: usize = 2;

/// The one scenario both the parent and the children construct — the spec
/// is the only thing they share besides the server address.
fn scenario() -> IdleFleetSpec {
    let mut spec = IdleFleetSpec::new(TOTAL_DEVICES, ACTIVE_DEVICES);
    spec.client_threads = 8;
    spec
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 4 && args[1] == "--idle-client" {
        let addr: SocketAddr = args[2].parse().expect("server address");
        let range = parse_range(&args[3]);
        child(addr, range);
    } else {
        parent();
    }
}

fn parse_range(s: &str) -> std::ops::Range<usize> {
    let (start, end) = s.split_once("..").expect("range as start..end");
    start.parse().expect("range start")..end.parse().expect("range end")
}

/// One client process: park the range, report `parked`, wait for `go`,
/// then wake the range's active devices on the Poisson schedule.
fn child(addr: SocketAddr, range: std::ops::Range<usize>) {
    let spec = scenario();
    let report = drive_idle_clients_with(addr, &spec, range, |parked| {
        println!("parked {parked}");
        std::io::stdout().flush().expect("flush parked line");
        let mut go = String::new();
        std::io::stdin().read_line(&mut go).expect("read go line");
    })
    .expect("idle client range");
    println!(
        "done parked={} active={} (all verified against the in-process reference)",
        report.parked,
        report.outcomes.len()
    );
}

fn spawn_child(addr: SocketAddr, start: usize, end: usize) -> (Child, BufReader<ChildStdout>) {
    let exe = std::env::current_exe().expect("own executable path");
    let mut child = Command::new(exe)
        .arg("--idle-client")
        .arg(addr.to_string())
        .arg(format!("{start}..{end}"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn idle-client child");
    let stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    (child, stdout)
}

fn parent() {
    let spec = scenario();
    println!(
        "binding a single-worker RoapEventServer for {TOTAL_DEVICES} parked devices \
         ({ACTIVE_DEVICES} active, {CHILDREN} client processes)..."
    );
    let server = bind_idle_server(&spec).expect("bind idle-fleet server");
    let addr = server.local_addr();
    let started = Instant::now();

    let per_child = TOTAL_DEVICES / CHILDREN;
    let mut children: Vec<(Child, BufReader<ChildStdout>)> = (0..CHILDREN)
        .map(|c| spawn_child(addr, c * per_child, (c + 1) * per_child))
        .collect();

    // Rendezvous: every child reports its range parked before any device
    // wakes up, so the whole fleet is connected simultaneously — no race.
    for (i, (_, stdout)) in children.iter_mut().enumerate() {
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read parked line");
        print!("  child {i}: {line}");
        assert!(line.starts_with("parked "), "unexpected child line: {line}");
    }
    let at_barrier = server.metrics().snapshot();
    println!(
        "  all {CHILDREN} children parked after {:.1?}: server sees {} active connections",
        started.elapsed(),
        at_barrier.active
    );
    assert!(
        at_barrier.active >= TOTAL_DEVICES as u64,
        "only {} of {TOTAL_DEVICES} connections are up at the barrier",
        at_barrier.active
    );
    for (child, _) in children.iter_mut() {
        let stdin = child.stdin.as_mut().expect("child stdin");
        stdin.write_all(b"go\n").expect("send go");
        stdin.flush().expect("flush go");
    }

    for (i, (mut child, mut stdout)) in children.into_iter().enumerate() {
        let status = child.wait().expect("wait for child");
        let mut rest = String::new();
        stdout
            .read_to_string(&mut rest)
            .expect("drain child stdout");
        for line in rest.lines() {
            println!("  child {i}: {line}");
        }
        assert!(status.success(), "child {i} failed: {status}");
    }

    let metrics = server.metrics().snapshot();
    server.shutdown();
    println!("\nscenario complete in {:.1?}", started.elapsed());
    println!("  {metrics}");
    assert!(
        metrics.accepted >= TOTAL_DEVICES as u64,
        "accepted {} < {TOTAL_DEVICES}",
        metrics.accepted
    );
    assert!(
        metrics.peak_active >= TOTAL_DEVICES as u64,
        "peak_active {} < {TOTAL_DEVICES}: the fleet was never fully parked",
        metrics.peak_active
    );
    assert_eq!(metrics.shed, 0, "no connection was shed");
    assert_eq!(metrics.reaped_idle, 0, "no parked device was reaped");
    println!(
        "\n{TOTAL_DEVICES} devices parked simultaneously on one event-loop thread \
         (workers = {}), {ACTIVE_DEVICES} of them served mid-park",
        spec.fleet.workers
    );
}
