//! Quickstart: the full OMA DRM 2 life-cycle in one screen of code.
//!
//! A Certification Authority certifies a Rights Issuer and a phone's DRM
//! Agent; the Content Issuer packages a track; the agent registers, buys a
//! license, installs it and plays the track.
//!
//! Run with: `cargo run --example quickstart`

use oma_drm2::drm::{ContentIssuer, DrmAgent, Permission, RightsIssuer, RightsTemplate};
use oma_drm2::pki::{CertificationAuthority, Timestamp};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);

    // Trust infrastructure (the CMLA role) and the three actors.
    println!("setting up CA, Rights Issuer, Content Issuer and DRM Agent...");
    let mut ca = CertificationAuthority::new("cmla", 1024, &mut rng);
    let mut ri = RightsIssuer::new("ri.example.com", 1024, &mut ca, &mut rng);
    let ci = ContentIssuer::new("ci.example.com");
    let mut agent = DrmAgent::new("phone-001", 1024, &mut ca, &mut rng);

    // The Content Issuer packages a track and hands the CEK to the RI.
    let track = b"IMAGINE THIS IS A PROTECTED AUDIO TRACK".repeat(1024);
    let (dcf, cek) = ci.package(&track, "cid:track-0001@ci.example.com", &mut rng);
    ri.add_content(
        "cid:track-0001@ci.example.com",
        cek,
        &dcf,
        RightsTemplate::unlimited(Permission::Play),
    );
    println!(
        "packaged {} bytes into a {}-byte DCF",
        track.len(),
        dcf.encrypted_payload().len()
    );

    // Registration -> Acquisition -> Installation -> Consumption.
    let now = Timestamp::new(1_000);
    agent.register_with(ri.service(), now)?;
    println!("registered with {} (RI context established)", ri.id());

    let response = agent.acquire_rights_with(ri.service(), "cid:track-0001@ci.example.com", now)?;
    println!(
        "acquired rights object {} ({} bytes on the wire)",
        response.ro_id(),
        response.encoded_len()
    );

    let ro_id = agent.install_rights(&response, now)?;
    println!("installed {ro_id}");

    let plaintext = agent.consume(&ro_id, &dcf, Permission::Play, now)?;
    assert_eq!(plaintext, track);
    println!("played back {} bytes of protected content", plaintext.len());

    // The instrumented engine recorded every cryptographic operation.
    println!("\ncryptographic operations performed by the terminal:");
    let trace = agent.engine().trace();
    for (algorithm, count) in trace.iter() {
        if count.invocations > 0 {
            println!(
                "  {:<26} {:>4} invocations, {:>8} blocks",
                algorithm.label(),
                count.invocations,
                count.blocks
            );
        }
    }
    Ok(())
}
