//! ROAP on the wire: the full lifecycle over a serialized byte channel.
//!
//! The DRM Agent talks to the Rights Issuer exclusively through a
//! `RoapClient<ChannelTransport>`: every ROAP message is encoded into a
//! `RoapPdu` envelope frame, crosses the channel as bytes, and is handled by
//! `RiService::dispatch` running on a server thread — the same frames a TCP
//! or HTTP transport would carry.
//!
//! Run with: `cargo run --release --example roap_wire`

use oma_drm2::drm::client::{serve, ChannelTransport, RoapClient};
use oma_drm2::drm::roap::DeviceHello;
use oma_drm2::drm::{ContentIssuer, DrmAgent, Permission, RiService, RightsTemplate, RoapPdu};
use oma_drm2::pki::{CertificationAuthority, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x0a7e);
    let mut ca = CertificationAuthority::new("cmla", 512, &mut rng);
    let service = RiService::new("ri.example.com", 512, &mut ca, &mut rng);
    let ci = ContentIssuer::new("ci.example.com");
    let (dcf, cek) = ci.package(b"some protected audio content", "cid:track", &mut rng);
    service.add_content(
        "cid:track",
        cek,
        &dcf,
        RightsTemplate::unlimited(Permission::Play),
    );
    let domain = service.create_domain("family", 4);
    let mut agent = DrmAgent::new("phone-001", 512, &mut ca, &mut rng);
    let now = Timestamp::new(1_000);

    // Show the envelope a DeviceHello travels in.
    let hello_frame = RoapPdu::DeviceHello(DeviceHello::new("phone-001")).encode();
    println!(
        "DeviceHello on the wire: {} bytes, magic {:?}, version {}\n",
        hello_frame.len(),
        std::str::from_utf8(&hello_frame[..4]).unwrap(),
        hello_frame[4],
    );

    let (client_end, server_end) = ChannelTransport::pair();
    std::thread::scope(|scope| {
        // The service dispatches frames on its own thread until the client
        // endpoint is dropped, at which point `serve` reports the
        // disconnect as a Transport error.
        let service_ref = &service;
        let server = scope.spawn(move || serve(service_ref, &server_end));
        let client = RoapClient::new(client_end);

        agent.register_via(&client, now).expect("registration");
        println!(
            "registered over the channel: {}",
            agent.is_registered_with("ri.example.com")
        );

        let response = agent
            .acquire_rights_via(&client, "ri.example.com", "cid:track", now)
            .expect("acquisition");
        let frame = RoapPdu::RoResponse(response.clone()).encode();
        println!("ROResponse frame: {} bytes", frame.len());

        let ro_id = agent.install_rights(&response, now).expect("installation");
        let plaintext = agent
            .consume(&ro_id, &dcf, Permission::Play, now)
            .expect("consumption");
        println!("recovered {} plaintext bytes", plaintext.len());

        agent
            .join_domain_via(&client, "ri.example.com", &domain, now)
            .expect("join");
        println!("joined domain: {:?}", agent.joined_domains());
        agent.leave_domain_via(&client, &domain).expect("leave");
        println!("left domain: {:?}", agent.joined_domains());

        drop(client);
        let disconnect = server.join().expect("server thread");
        println!("server saw the hang-up: {:?}", disconnect.unwrap_err());
    });

    assert_eq!(service.issued_ro_count(), 1);
    println!("\nlifecycle complete: 1 RO issued, all messages as PDU frames");
}
