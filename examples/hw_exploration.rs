//! Design-space exploration: which cryptographic accelerators should a
//! terminal SoC include?
//!
//! Sweeps single-macro and combined partitionings over a range of content
//! sizes and access counts, printing the total DRM processing time for each
//! point — the kind of exploration a system architect would run on top of
//! the paper's model before committing silicon area (§3: "a system designer
//! has to identify crucial processing intensive parts of the application and
//! decide whether to provide these using dedicated hardware cells").
//!
//! Run with: `cargo run --release --example hw_exploration`

use oma_drm2::crypto::Algorithm;
use oma_drm2::perf::analytic;
use oma_drm2::perf::arch::{Architecture, Implementation, DEFAULT_CLOCK_HZ};
use oma_drm2::perf::cost::CostTable;
use oma_drm2::perf::energy::EnergyModel;
use oma_drm2::perf::usecase::UseCaseSpec;

fn variants() -> Vec<Architecture> {
    let mk = |name: &str, hw: &'static [Algorithm]| {
        Architecture::custom(
            name,
            move |alg| {
                if hw.contains(&alg) {
                    Implementation::Hardware
                } else {
                    Implementation::Software
                }
            },
            DEFAULT_CLOCK_HZ,
        )
    };
    vec![
        Architecture::software(),
        mk("AES", &[Algorithm::AesEncrypt, Algorithm::AesDecrypt]),
        mk("SHA", &[Algorithm::Sha1, Algorithm::HmacSha1]),
        mk("RSA", &[Algorithm::RsaPublic, Algorithm::RsaPrivate]),
        Architecture::hybrid(),
        Architecture::full_hardware(),
    ]
}

fn main() {
    let table = CostTable::paper();
    let variants = variants();

    println!("Total DRM processing time [ms] per partitioning (200 MHz clock)\n");
    print!("{:<28}", "workload");
    for arch in &variants {
        print!("{:>10}", arch.name());
    }
    println!();

    let workloads = [
        ("ringtone 30KB x25", UseCaseSpec::ringtone()),
        ("music 3.5MB x5", UseCaseSpec::music_player()),
        (
            "podcast 16MB x2",
            UseCaseSpec::new("podcast", 16 * 1024 * 1024, 2),
        ),
        (
            "video 64MB x1",
            UseCaseSpec::new("video", 64 * 1024 * 1024, 1),
        ),
        (
            "wallpaper 100KB x1",
            UseCaseSpec::new("wallpaper", 100 * 1024, 1),
        ),
    ];

    for (label, spec) in &workloads {
        let traces = analytic::phase_traces(spec);
        let total = traces.total(spec.accesses());
        print!("{label:<28}");
        for arch in &variants {
            print!("{:>10.1}", arch.millis(&total, &table));
        }
        println!();
    }

    println!("\nEnergy estimate [mJ] for the Music Player use case");
    println!("(first row: energy proportional to cycles; second row: hardware macros twice as efficient per cycle)");
    let spec = UseCaseSpec::music_player();
    let traces = analytic::phase_traces(&spec);
    let total = traces.total(spec.accesses());
    for (label, model) in [
        ("proportional", EnergyModel::proportional()),
        ("efficient HW", EnergyModel::with_hardware_factor(0.5)),
    ] {
        print!("{label:<28}");
        for arch in &variants {
            print!("{:>10.2}", model.millijoules(&total, arch, &table));
        }
        println!();
    }

    println!("\nObservations (matching the paper's conclusions):");
    println!(" - AES+SHA-1 macros cut the Music Player case by roughly an order of magnitude;");
    println!(" - an RSA-only accelerator helps little unless licenses are acquired very often;");
    println!(" - for small, frequently accessed content the PKI phases dominate, so only the");
    println!("   full-hardware variant brings the Ringtone case down to ~12 ms.");
}
