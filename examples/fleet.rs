//! Device-fleet load run: many terminals, one concurrent Rights Issuer.
//!
//! A shared `RiService` serves a fleet of per-device-seeded DRM Agents from
//! several worker threads; every device runs the full Registration →
//! Acquisition → Installation → Consumption life-cycle. The run is then
//! repeated on a single thread and the two reports are compared: the
//! concurrent service must lose no registrations, duplicate no Rights
//! Object ids, and produce byte-identical per-device outcomes.
//!
//! Run with: `cargo run --release --example fleet`

use oma_drm2::load::{
    run_fleet, run_fleet_durable, run_fleet_tcp, run_fleet_wire, run_sequential, FleetSpec,
};

fn main() {
    let spec = FleetSpec {
        acquisitions_per_device: 2,
        contents: 8,
        content_len: 4 * 1024,
        rsa_modulus_bits: 512,
        ..FleetSpec::new(48, 8)
    };
    println!(
        "driving {} devices x {} acquisitions on {} workers against one RiService...\n",
        spec.devices, spec.acquisitions_per_device, spec.workers
    );

    let concurrent = run_fleet(&spec).expect("concurrent fleet run");
    println!("{}", concurrent.summary("Concurrent fleet"));

    println!("re-running the same fleet sequentially as the reference...\n");
    let sequential = run_sequential(&spec).expect("sequential fleet run");
    println!("{}", sequential.summary("Sequential reference"));

    let duplicates = concurrent.duplicate_ro_ids();
    println!(
        "registrations: {} of {}",
        concurrent.registrations, spec.devices
    );
    println!("duplicate RO ids: {}", duplicates.len());
    println!(
        "per-device outcomes byte-identical to sequential run: {}",
        concurrent.matches(&sequential)
    );
    assert!(
        duplicates.is_empty(),
        "service must never duplicate an RO id"
    );
    assert!(
        concurrent.matches(&sequential),
        "concurrent run must match the sequential reference"
    );

    let speedup = sequential.elapsed.as_secs_f64() / concurrent.elapsed.as_secs_f64();
    println!("wall-clock speedup over sequential: {speedup:.2}x");

    println!("\nre-running the same fleet over the wire (dispatch_batch waves)...\n");
    let wire = run_fleet_wire(&spec).expect("wire fleet run");
    println!("{}", wire.summary("Wire-mode fleet"));
    assert!(
        wire.matches(&sequential),
        "wire-mode outcomes must be byte-identical to the in-process runs"
    );
    println!(
        "wire-mode outcomes byte-identical to in-process runs: {}",
        wire.matches(&sequential)
    );

    println!("\nre-running the same fleet over loopback TCP (one connection per device)...\n");
    let tcp = run_fleet_tcp(&spec).expect("tcp fleet run");
    println!("{}", tcp.summary("Loopback-TCP fleet"));
    assert!(
        tcp.matches(&sequential),
        "TCP outcomes must be byte-identical to the in-process runs"
    );
    println!(
        "TCP outcomes byte-identical to in-process runs: {}",
        tcp.matches(&sequential)
    );

    println!(
        "\nre-running the same fleet against a journaled service (WAL on every mutation)...\n"
    );
    let durable = run_fleet_durable(&spec, None).expect("durable fleet run");
    println!("{}", durable.fleet.summary("Durable (journaled) fleet"));
    assert!(
        durable.fleet.matches(&sequential),
        "journaling must not change any deterministic observable"
    );
    let journaled = durable.fleet.elapsed.as_secs_f64() / wire.elapsed.as_secs_f64();
    println!("journaling overhead vs wire mode: {journaled:.2}x wall-clock");
}
