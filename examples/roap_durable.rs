//! Durable Rights Issuer: kill-and-recover over a real on-disk WAL.
//!
//! Three boots of one license service, state carried solely by the store
//! directory:
//!
//! 1. **Boot #1** — fresh service, genesis snapshot, served over TCP. A
//!    device registers and buys a license; graceful shutdown flushes the
//!    WAL and writes a snapshot.
//! 2. **Boot #2** — recovered from that snapshot; another device registers
//!    (journaled, fsync'd) and then the service is dropped cold: no flush,
//!    no snapshot, no goodbye.
//! 3. **Boot #3** — recovery replays the WAL on top of the snapshot. Both
//!    devices are still registered, the first device's RI context still
//!    works, and its next Rights Object id continues the sequence — the
//!    service never re-issues an id across a crash.
//!
//! Run with: `cargo run --release --example roap_durable`

use oma_drm2::drm::client::RoapClient;
use oma_drm2::drm::journal::RiJournal;
use oma_drm2::drm::{ContentIssuer, DrmAgent, DrmError, Permission, RiService, RightsTemplate};
use oma_drm2::net::{RoapTcpServer, ServerConfig, TcpTransport};
use oma_drm2::pki::{CertificationAuthority, Timestamp};
use oma_drm2::store::{RiStore, StoreConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> Result<(), DrmError> {
    let dir = std::env::temp_dir().join(format!("oma-roap-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let now = Timestamp::new(1_000);
    let mut rng = StdRng::seed_from_u64(42);
    let mut ca = CertificationAuthority::new("cmla", 512, &mut rng);
    let ci = ContentIssuer::new("ci.example.com");
    let (dcf, cek) = ci.package(b"one summer ringtone", "cid:track-1", &mut rng);

    // ---- boot #1: fresh service, genesis snapshot, serve over TCP --------
    println!("boot #1: fresh service, store at {}", dir.display());
    let store = Arc::new(RiStore::open_dir(&dir, StoreConfig::default()).map_err(DrmError::from)?);
    let service = Arc::new(RiService::new("ri.example.com", 512, &mut ca, &mut rng));
    service.set_journal(Arc::clone(&store) as Arc<dyn RiJournal>);
    store.snapshot(&|| service.state_image())?;
    service.add_content(
        "cid:track-1",
        cek,
        &dcf,
        RightsTemplate::unlimited(Permission::Play),
    );

    let server = RoapTcpServer::bind(
        Arc::clone(&service),
        ServerConfig::durable(Arc::clone(&store) as Arc<dyn RiJournal>).with_clock(now),
    )?;
    let mut alice = DrmAgent::new("alice-phone", 512, &mut ca, &mut rng);
    let client = RoapClient::new(TcpTransport::connect(server.local_addr())?);
    alice.register_via(&client, now)?;
    let response = alice.acquire_rights_via(&client, "ri.example.com", "cid:track-1", now)?;
    let first_ro = alice.install_rights(&response, now)?;
    alice.consume(&first_ro, &dcf, Permission::Play, now)?;
    println!("   alice registered over TCP and plays under {first_ro}");
    drop(client);
    server.shutdown(); // graceful: flush + snapshot
    drop(service);

    // ---- boot #2: recover, mutate, die without ceremony ------------------
    println!("boot #2: recover from snapshot, then crash without one");
    let store = Arc::new(RiStore::open_dir(&dir, StoreConfig::default()).map_err(DrmError::from)?);
    let service = RiService::recover(&store)?;
    assert!(
        service.is_registered("alice-phone"),
        "alice's registration must survive the restart"
    );
    service.set_journal(Arc::clone(&store) as Arc<dyn RiJournal>);
    let mut bob = DrmAgent::new("bob-player", 512, &mut ca, &mut rng);
    bob.register_with(&service, now)?;
    println!("   bob registered; killing the service cold (no flush, no snapshot)");
    drop(service); // power loss: only the fsync'd WAL survives

    // ---- boot #3: WAL replay resurrects everything -----------------------
    println!("boot #3: recover from snapshot + WAL replay");
    let store = Arc::new(RiStore::open_dir(&dir, StoreConfig::default()).map_err(DrmError::from)?);
    let (image, report) = store.load_with_report().map_err(DrmError::from)?;
    println!(
        "   replayed {} journal events on top of the snapshot",
        report.events_applied
    );
    assert!(
        report.events_applied > 0,
        "bob's registration lives only in the WAL"
    );
    let service = Arc::new(RiService::from_image(image));
    assert!(service.is_registered("alice-phone"));
    assert!(
        service.is_registered("bob-player"),
        "bob's registration must be replayed from the WAL"
    );

    let server = RoapTcpServer::bind(
        Arc::clone(&service),
        ServerConfig::durable(Arc::clone(&store) as Arc<dyn RiJournal>).with_clock(now),
    )?;
    let client = RoapClient::new(TcpTransport::connect(server.local_addr())?);
    let response = alice.acquire_rights_via(&client, "ri.example.com", "cid:track-1", now)?;
    let second_ro = alice.install_rights(&response, now)?;
    alice.consume(&second_ro, &dcf, Permission::Play, now)?;
    println!("   alice plays again under {second_ro}");
    assert_eq!(first_ro.as_str(), "ro:ri.example.com:dev:alice-phone:0");
    assert_eq!(
        second_ro.as_str(),
        "ro:ri.example.com:dev:alice-phone:1",
        "the RO id sequence must continue across crashes, never restart"
    );
    drop(client);
    server.shutdown();

    std::fs::remove_dir_all(&dir).ok();
    println!("\nkill-and-recover complete: two crashes, zero lost registrations, no id reuse");
    Ok(())
}
