//! ROAP over a real socket: the full lifecycle against a loopback TCP server.
//!
//! A `RoapTcpServer` serves one shared `RiService` from a bounded worker
//! pool; the DRM Agent connects with a `TcpTransport` and runs Registration
//! → Acquisition → Installation → Consumption → Join/Leave Domain — the
//! exact frames of the `roap_wire` example, now crossing the kernel's TCP
//! stack. The server pins the protocol clock (`dispatch_at`), so the peer's
//! `request_time` never decides certificate validity.
//!
//! Run with: `cargo run --release --example roap_tcp`

use oma_drm2::drm::client::RoapClient;
use oma_drm2::drm::{ContentIssuer, DrmAgent, Permission, RiService, RightsTemplate};
use oma_drm2::net::{RoapTcpServer, ServerConfig, TcpTransport};
use oma_drm2::pki::{CertificationAuthority, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x07c9);
    let mut ca = CertificationAuthority::new("cmla", 512, &mut rng);
    let service = Arc::new(RiService::new("ri.example.com", 512, &mut ca, &mut rng));
    let ci = ContentIssuer::new("ci.example.com");
    let (dcf, cek) = ci.package(b"some protected audio content", "cid:track", &mut rng);
    service.add_content(
        "cid:track",
        cek,
        &dcf,
        RightsTemplate::unlimited(Permission::Play),
    );
    let domain = service.create_domain("family", 4);
    let mut agent = DrmAgent::new("phone-001", 512, &mut ca, &mut rng);
    let now = Timestamp::new(1_000);

    // The server owns the protocol clock: every frame is dispatched at a
    // server-chosen timestamp, whatever request_time the peer claims.
    let server = RoapTcpServer::bind(
        Arc::clone(&service),
        ServerConfig {
            workers: 2,
            clock: Some(now),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server");
    println!("RoapTcpServer listening on {}\n", server.local_addr());

    let client = RoapClient::new(TcpTransport::connect(server.local_addr()).expect("connect"));

    agent.register_via(&client, now).expect("registration");
    println!(
        "registered over TCP: {}",
        agent.is_registered_with("ri.example.com")
    );

    let response = agent
        .acquire_rights_via(&client, "ri.example.com", "cid:track", now)
        .expect("acquisition");
    let ro_id = agent.install_rights(&response, now).expect("installation");
    let plaintext = agent
        .consume(&ro_id, &dcf, Permission::Play, now)
        .expect("consumption");
    println!("recovered {} plaintext bytes", plaintext.len());

    agent
        .join_domain_via(&client, "ri.example.com", &domain, now)
        .expect("join");
    println!("joined domain: {:?}", agent.joined_domains());
    agent.leave_domain_via(&client, &domain).expect("leave");
    println!("left domain: {:?}", agent.joined_domains());

    // Hang up, then stop the server: accepting ends, in-flight
    // conversations drain, the worker pool joins.
    drop(client);
    let served_at_least = server.connections_served();
    server.shutdown();
    println!(
        "\nserver shut down gracefully ({} connection(s) already accounted before shutdown)",
        served_at_least
    );

    assert_eq!(service.issued_ro_count(), 1);
    println!("lifecycle complete: 1 RO issued, every frame crossed a real TCP socket");
}
