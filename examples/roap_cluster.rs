//! A replicated Rights Issuer pair with live failover.
//!
//! One primary serves license traffic while shipping its write-ahead log
//! to a follower **over a real TCP replication connection**. The primary
//! is then deposed mid-service; the follower promotes itself under the
//! next epoch and the same device keeps buying licenses — the promoted
//! node holds byte-identical state (session counters, RO sequences, even
//! the RNG checkpoint), so nothing is ever re-issued and nothing breaks.
//!
//! The scene, in order:
//!
//! 1. **Serve** — a journaled primary registers a device and sells it a
//!    first license; every event lands in the WAL.
//! 2. **Replicate** — a follower connects to the primary's replication
//!    endpoint, bootstraps from the snapshot and applies the record tail,
//!    acking each batch after fsync.
//! 3. **Fail over** — the primary is fenced (a deposed node answers
//!    `NotPrimary` redirects, it never forks history), the follower
//!    promotes itself, and the device's second purchase completes against
//!    the new primary with the RO-id sequence intact.
//!
//! Run with: `cargo run --release --example roap_cluster`

use oma_drm2::cluster::{serve_replication, sync_over_tcp, AckPolicy, Follower, Primary};
use oma_drm2::drm::client::RoapClient;
use oma_drm2::drm::journal::RiJournal;
use oma_drm2::drm::wire::{RoapPdu, RoapStatus};
use oma_drm2::drm::{ContentIssuer, DrmAgent, Permission, RiService, RightsTemplate};
use oma_drm2::net::ServerMetrics;
use oma_drm2::pki::{CertificationAuthority, Timestamp};
use oma_drm2::store::RiStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::net::TcpListener;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let now = Timestamp::new(1_000);
    let mut rng = StdRng::seed_from_u64(7);
    let mut ca = CertificationAuthority::new("cmla", 512, &mut rng);
    let ci = ContentIssuer::new("ci.example.com");
    let (dcf, cek) = ci.package(b"one summer ringtone", "cid:track-1", &mut rng);

    // ---- the primary: journaled service + log shipper --------------------
    let service = Arc::new(RiService::new("ri.example.com", 512, &mut ca, &mut rng));
    let store = Arc::new(RiStore::in_memory());
    service.set_journal(Arc::clone(&store) as Arc<dyn RiJournal>);
    store.snapshot(&|| service.state_image())?;
    service.add_content(
        "cid:track-1",
        cek,
        &dcf,
        RightsTemplate::unlimited(Permission::Play),
    );

    let metrics = Arc::new(ServerMetrics::default());
    let primary = Arc::new(Primary::new("node.a", 1, store).with_metrics(Arc::clone(&metrics)));
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let repl_addr = listener.local_addr()?;
    println!("primary node.a: epoch 1, replication endpoint {repl_addr}");

    // The replication endpoint: one catch-up connection at a time. A
    // fenced primary answers with an error and the loop moves on.
    let serve_primary = Arc::clone(&primary);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            if serve_replication(&serve_primary, stream).is_err() {
                break;
            }
        }
    });

    // ---- serve: alice registers and buys her first license --------------
    let mut alice = DrmAgent::new("alice-phone", 512, &mut ca, &mut rng);
    let client = RoapClient::in_proc(&service);
    alice.register_via(&client, now)?;
    let response = alice.acquire_rights_via(&client, "ri.example.com", "cid:track-1", now)?;
    let first_ro = alice.install_rights(&response, now)?;
    alice.consume(&first_ro, &dcf, Permission::Play, now)?;
    println!("alice registered and holds {first_ro:?}");

    // ---- replicate: the follower catches up over TCP ---------------------
    let mut follower = Follower::in_memory("node.b", AckPolicy::OnFsync);
    let applied = sync_over_tcp(&mut follower, repl_addr)?;
    println!(
        "follower node.b: applied {applied} records over TCP, at sequence {}",
        follower.last_sequence()
    );
    println!("primary metrics: {}", metrics.snapshot());
    assert_eq!(
        follower.state_image().unwrap(),
        &service.state_image(),
        "caught-up follower holds byte-identical state"
    );

    // ---- fail over: depose node.a, promote node.b ------------------------
    primary.fence();
    let promoted = follower.promote(2)?;
    println!(
        "node.a fenced; node.b promoted under epoch {}",
        promoted.epoch
    );

    // A client that still talks to the deposed node is redirected.
    let redirect = RoapPdu::Status(RoapStatus::NotPrimary(0)).encode();
    let RoapPdu::Status(status) = RoapPdu::decode(&redirect)? else {
        unreachable!("status frames decode to Status");
    };
    println!("deposed node answers: {status:?} — client re-resolves the shard");

    // Alice's second purchase runs against the promoted node; her RI
    // context is intact and the RO-id sequence continues where it left off.
    let client = RoapClient::in_proc(&promoted.service);
    let response = alice.acquire_rights_via(&client, "ri.example.com", "cid:track-1", now)?;
    let second_ro = alice.install_rights(&response, now)?;
    assert_ne!(
        first_ro, second_ro,
        "a promoted primary never re-issues an id"
    );
    alice.consume(&second_ro, &dcf, Permission::Play, now)?;
    println!("alice bought {second_ro:?} from the promoted node — failover invisible");
    Ok(())
}
