//! Domain sharing: one license, several devices (paper §2.3).
//!
//! A phone and an "unconnected" portable music player both register with the
//! Rights Issuer, join the same domain and share a single Domain Rights
//! Object: the phone acquires it over ROAP, the player installs the very
//! same object copied across (e.g. over USB) and can still play the content
//! because the keys are wrapped under the shared domain key.
//!
//! Run with: `cargo run --release --example domain_sharing`

use oma_drm2::drm::{
    ContentIssuer, DomainId, DrmAgent, DrmError, Permission, RightsIssuer, RightsTemplate,
};
use oma_drm2::pki::{CertificationAuthority, Timestamp};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let now = Timestamp::new(5_000);

    let mut ca = CertificationAuthority::new("cmla", 1024, &mut rng);
    let mut ri = RightsIssuer::new("ri.example.com", 1024, &mut ca, &mut rng);
    let ci = ContentIssuer::new("ci.example.com");
    let mut phone = DrmAgent::new("phone", 1024, &mut ca, &mut rng);
    let mut player = DrmAgent::new("mp3-player", 1024, &mut ca, &mut rng);

    let album = b"FULL ALBUM, DRM PROTECTED".repeat(4096);
    let (dcf, cek) = ci.package(&album, "cid:album", &mut rng);
    ri.add_content(
        "cid:album",
        cek,
        &dcf,
        RightsTemplate::unlimited(Permission::Play),
    );

    // Both devices establish trust with the Rights Issuer.
    phone.register_with(ri.service(), now)?;
    player.register_with(ri.service(), now)?;
    println!("both devices registered with {}", ri.id());

    // The user sets up a family domain and registers both devices.
    let domain: DomainId = ri.create_domain("family-domain", 8);
    phone.join_domain_with(ri.service(), &domain, now)?;
    player.join_domain_with(ri.service(), &domain, now)?;
    println!(
        "domain '{domain}' now has {} member devices",
        ri.domain_member_count(&domain).unwrap_or(0)
    );

    // The phone buys a Domain Rights Object...
    let response = phone.acquire_domain_rights_with(ri.service(), "cid:album", &domain, now)?;
    assert!(response.rights_object.is_domain_ro());
    let ro_id = phone.install_rights(&response, now)?;
    println!("phone acquired and installed domain RO {ro_id}");

    // ...and the player installs the very same Rights Object out of band.
    let ro_id_player = player.install_protected_ro(&response.rights_object, ri.id(), now)?;
    println!("player installed the shared RO {ro_id_player}");

    // Both can play.
    assert_eq!(phone.consume(&ro_id, &dcf, Permission::Play, now)?, album);
    assert_eq!(
        player.consume(&ro_id_player, &dcf, Permission::Play, now)?,
        album
    );
    println!("both devices decrypted the album successfully");

    // A device outside the domain cannot use the Domain RO.
    let mut stranger = DrmAgent::new("strangers-phone", 1024, &mut ca, &mut rng);
    stranger.register_with(ri.service(), now)?;
    match stranger.install_protected_ro(&response.rights_object, ri.id(), now) {
        Err(DrmError::NotInDomain) => println!("outsider correctly rejected (not a domain member)"),
        other => println!("unexpected result for outsider: {other:?}"),
    }

    // Leaving the domain removes the key from the device.
    player.leave_domain_with(ri.service(), &domain)?;
    println!(
        "player left the domain; remaining members: {}",
        ri.domain_member_count(&domain).unwrap_or(0)
    );
    Ok(())
}
