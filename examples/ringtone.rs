//! The paper's Ringtone use case (§4): a 30 KB polyphonic ringtone whose
//! license must be checked on every one of 25 incoming calls.
//!
//! This example runs the *real* protocol end to end at the genuine ringtone
//! size — registration, acquisition, installation and 25 consumptions — and
//! then prices the recorded operation trace under the three architecture
//! variants (Figure 7).
//!
//! Run with: `cargo run --release --example ringtone`

use oma_drm2::drm::{ContentIssuer, DrmAgent, Permission, RightsIssuer, RightsTemplate};
use oma_drm2::perf::arch::Architecture;
use oma_drm2::perf::cost::CostTable;
use oma_drm2::perf::phases::PhaseTraces;
use oma_drm2::perf::report;
use oma_drm2::perf::usecase::UseCaseSpec;
use oma_drm2::pki::{CertificationAuthority, Timestamp};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = UseCaseSpec::ringtone();
    let table = CostTable::paper();
    let variants = Architecture::standard_variants();
    let mut rng = rand::rngs::StdRng::seed_from_u64(25);

    println!(
        "Ringtone use case: {} byte DCF, {} incoming calls\n",
        spec.content_len(),
        spec.accesses()
    );

    // Real protocol run with 1024-bit keys and the real 30 KB ringtone.
    let mut ca = CertificationAuthority::new("cmla", 1024, &mut rng);
    let mut ri = RightsIssuer::new("ri.example.com", 1024, &mut ca, &mut rng);
    let ci = ContentIssuer::new("ci.example.com");
    let mut agent = DrmAgent::new("phone-001", 1024, &mut ca, &mut rng);

    let ringtone = vec![0x3cu8; spec.content_len()];
    let (dcf, cek) = ci.package(&ringtone, "cid:ringtone", &mut rng);
    ri.add_content(
        "cid:ringtone",
        cek,
        &dcf,
        RightsTemplate::unlimited(Permission::Play),
    );

    let now = Timestamp::new(1_000);
    let mut traces = PhaseTraces::new();
    agent.engine().reset_trace();

    agent.register_with(ri.service(), now)?;
    traces.registration = agent.engine().take_trace();

    let response = agent.acquire_rights_with(ri.service(), "cid:ringtone", now)?;
    traces.acquisition = agent.engine().take_trace();

    let ro_id = agent.install_rights(&response, now)?;
    traces.installation = agent.engine().take_trace();

    // The phone rings 25 times.
    for call in 0..spec.accesses() {
        let plaintext = agent.consume(&ro_id, &dcf, Permission::Play, now.plus(call * 60))?;
        assert_eq!(plaintext.len(), ringtone.len());
    }
    // All 25 accesses were recorded; store them as a single-access average.
    let consumption_total = agent.engine().take_trace();
    traces.consumption_per_access = consumption_total.clone();

    println!(
        "measured trace (whole use case, {} accesses):",
        spec.accesses()
    );
    let total = traces.setup_total().merged(&consumption_total);
    for (alg, count) in total.iter() {
        if count.invocations > 0 {
            println!(
                "  {:<26} {:>4} invocations, {:>8} blocks",
                alg.label(),
                count.invocations,
                count.blocks
            );
        }
    }

    println!("\nexecution time of the measured trace under each architecture variant:");
    for arch in &variants {
        println!(
            "  {:<8} {:>8.1} ms",
            arch.name(),
            arch.millis(&total, &table)
        );
    }
    println!("paper reports (Figure 7): SW 900 ms, SW/HW 620 ms, HW 12 ms\n");

    // The analytic model for comparison.
    let comparison = report::architecture_comparison(&spec, &table, &variants);
    println!("analytic model:\n{comparison}");
    Ok(())
}
