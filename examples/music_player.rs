//! The paper's Music Player use case (§4): a 3.5 MB DCF played five times.
//!
//! Prints the per-phase operation traces, the total execution time under the
//! three architecture variants (Figure 6) and the per-algorithm breakdown of
//! the software variant (the Music Player bar of Figure 5).
//!
//! Run with: `cargo run --release --example music_player`

use oma_drm2::perf::arch::Architecture;
use oma_drm2::perf::cost::CostTable;
use oma_drm2::perf::report;
use oma_drm2::perf::usecase::UseCaseSpec;
use oma_drm2::perf::{analytic, runner};

fn main() {
    let spec = UseCaseSpec::music_player();
    let table = CostTable::paper();
    let variants = Architecture::standard_variants();

    println!(
        "Music Player use case: {} byte DCF, {} playbacks, 200 MHz application processor\n",
        spec.content_len(),
        spec.accesses()
    );

    // Analytic per-phase traces (the paper's methodology).
    let traces = analytic::phase_traces(&spec);
    println!("cycles per phase (software variant):");
    let software = Architecture::software();
    for phase in oma_drm2::perf::Phase::ALL {
        let cycles = software.cycles(traces.phase(phase), &table);
        println!("  {:<13} {:>13} cycles", phase.to_string(), cycles);
    }
    println!(
        "  (consumption repeats {} times; total below includes all accesses)\n",
        spec.accesses()
    );

    // Figure 6.
    let comparison = report::architecture_comparison(&spec, &table, &variants);
    println!("{comparison}");
    println!("paper reports: SW 7730 ms, SW/HW 800 ms, HW 190 ms\n");

    // The Music Player bar of Figure 5.
    println!("{}", report::algorithm_breakdown(&spec, &table));

    // Cross-check with a measured run at a reduced scale (64 KiB, 512-bit
    // keys) — operation counts, not absolute cycles, are what the model uses.
    let reduced =
        UseCaseSpec::new("Music Player (reduced)", 64 * 1024, 5).with_rsa_modulus_bits(512);
    match runner::measure_use_case(&reduced, 7) {
        Ok(run) => {
            let total = run.traces.total(reduced.accesses());
            println!("measured protocol run (64 KiB track, per-algorithm invocation counts):");
            for (alg, count) in total.iter() {
                if count.invocations > 0 {
                    println!("  {:<26} {:>4}", alg.label(), count.invocations);
                }
            }
        }
        Err(e) => eprintln!("measured run failed: {e}"),
    }
}
