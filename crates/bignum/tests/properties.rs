//! Property-based tests for the bignum arithmetic core.

use oma_bignum::BigUint;
use proptest::prelude::*;

fn biguint_strategy() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..48).prop_map(|bytes| BigUint::from_bytes_be(&bytes))
}

fn small_biguint_strategy() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 1..16).prop_map(|bytes| BigUint::from_bytes_be(&bytes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn addition_commutes(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn addition_associates(a in biguint_strategy(), b in biguint_strategy(), c in biguint_strategy()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_then_sub_roundtrips(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn multiplication_commutes(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn multiplication_distributes(a in biguint_strategy(), b in biguint_strategy(), c in biguint_strategy()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn division_identity(a in biguint_strategy(), b in small_biguint_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn byte_roundtrip(a in biguint_strategy()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn hex_roundtrip(a in biguint_strategy()) {
        let parsed = BigUint::from_hex(&a.to_hex()).unwrap();
        prop_assert_eq!(parsed, a);
    }

    #[test]
    fn shift_roundtrip(a in biguint_strategy(), s in 0usize..200) {
        prop_assert_eq!(a.shl_bits(s).shr_bits(s), a);
    }

    #[test]
    fn modpow_matches_mul_mod(a in small_biguint_strategy(), m in small_biguint_strategy()) {
        prop_assume!(!m.is_zero() && !m.is_one());
        // a^2 mod m computed two ways
        let two = BigUint::from_u64(2);
        let via_pow = a.modpow(&two, &m);
        let via_mul = a.mul_mod(&a, &m);
        prop_assert_eq!(via_pow, via_mul);
    }

    #[test]
    fn modpow_exponent_addition_law(a in small_biguint_strategy(), m in small_biguint_strategy()) {
        prop_assume!(!m.is_zero() && !m.is_one());
        // a^(2+3) = a^2 * a^3 (mod m)
        let e2 = BigUint::from_u64(2);
        let e3 = BigUint::from_u64(3);
        let e5 = BigUint::from_u64(5);
        let lhs = a.modpow(&e5, &m);
        let rhs = a.modpow(&e2, &m).mul_mod(&a.modpow(&e3, &m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn mod_inverse_is_inverse(a in small_biguint_strategy(), m in small_biguint_strategy()) {
        prop_assume!(!m.is_zero() && !m.is_one());
        if let Some(inv) = a.mod_inverse(&m) {
            prop_assert!(a.mul_mod(&inv, &m).is_one());
            prop_assert!(inv < m);
        }
    }

    #[test]
    fn gcd_divides_both(a in small_biguint_strategy(), b in small_biguint_strategy()) {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = a.gcd(&b);
        prop_assert!(!g.is_zero());
        prop_assert!(a.rem_of(&g).is_zero());
        prop_assert!(b.rem_of(&g).is_zero());
    }

    #[test]
    fn padded_bytes_parse_back(a in biguint_strategy(), extra in 0usize..8) {
        let len = a.to_bytes_be().len() + extra;
        let padded = a.to_bytes_be_padded(len).unwrap();
        prop_assert_eq!(padded.len(), len);
        prop_assert_eq!(BigUint::from_bytes_be(&padded), a);
    }
}
