//! Equivalence of the fixed-window Montgomery exponentiation against the
//! independent reference paths: the naive square-and-multiply over plain
//! modular arithmetic, and the pre-optimisation allocating bit-at-a-time
//! Montgomery ladder (`modpow_bitwise`). The three implementations share no
//! multiplication kernel, so agreement over random operands pins down the
//! window gathering, the squaring kernel, and the REDC fold all at once.

use oma_bignum::{BigUint, Montgomery};
use proptest::prelude::*;

fn biguint_strategy() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..48).prop_map(|bytes| BigUint::from_bytes_be(&bytes))
}

/// Moduli wide enough to need several limbs, odd or even as drawn.
fn modulus_strategy() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 1..40).prop_map(|bytes| BigUint::from_bytes_be(&bytes))
}

/// Odd multi-limb moduli, eligible for the Montgomery context.
fn odd_modulus_strategy() -> impl Strategy<Value = BigUint> {
    modulus_strategy().prop_map(|m| {
        let one = BigUint::one();
        if m.bit(0) {
            m
        } else {
            &m + &one
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fixed_window_matches_naive(
        base in biguint_strategy(),
        exponent in biguint_strategy(),
        modulus in modulus_strategy(),
    ) {
        prop_assume!(!modulus.is_zero());
        prop_assert_eq!(
            base.modpow(&exponent, &modulus),
            base.modpow_naive(&exponent, &modulus)
        );
    }

    #[test]
    fn even_modulus_falls_back_to_naive(
        base in biguint_strategy(),
        exponent in biguint_strategy(),
        modulus in modulus_strategy(),
    ) {
        // Force the modulus even: the Montgomery fast path must bow out and
        // the fallback must still agree with the reference.
        let even = modulus.shl_bits(1);
        prop_assume!(!even.is_zero());
        prop_assert!(Montgomery::new(even.clone()).is_none());
        prop_assert_eq!(
            base.modpow(&exponent, &even),
            base.modpow_naive(&exponent, &even)
        );
    }

    #[test]
    fn trivial_exponents(base in biguint_strategy(), modulus in modulus_strategy()) {
        prop_assume!(!modulus.is_zero());
        let zero = BigUint::zero();
        let one = BigUint::one();
        // x^0 = 1 (or 0 when the modulus is 1), x^1 = x mod m.
        let expected_for_zero = if modulus.is_one() {
            BigUint::zero()
        } else {
            BigUint::one()
        };
        prop_assert_eq!(base.modpow(&zero, &modulus), expected_for_zero);
        prop_assert_eq!(base.modpow(&one, &modulus), base.rem_of(&modulus));
    }

    #[test]
    fn oversized_base_is_reduced_first(
        base in biguint_strategy(),
        exponent in biguint_strategy(),
        modulus in modulus_strategy(),
    ) {
        prop_assume!(!modulus.is_zero());
        // base and base + k·m are congruent, so their powers must agree.
        let shifted = &base + &(&modulus * &BigUint::from_u64(3));
        prop_assert_eq!(
            shifted.modpow(&exponent, &modulus),
            base.rem_of(&modulus).modpow(&exponent, &modulus)
        );
    }

    #[test]
    fn fixed_window_matches_allocating_ladder(
        base in biguint_strategy(),
        exponent in biguint_strategy(),
        modulus in odd_modulus_strategy(),
    ) {
        prop_assume!(!modulus.is_one());
        let ctx = Montgomery::new(modulus).expect("odd modulus above one");
        prop_assert_eq!(ctx.modpow(&base, &exponent), ctx.modpow_bitwise(&base, &exponent));
    }

    #[test]
    fn context_mul_mod_matches_plain(
        a in biguint_strategy(),
        b in biguint_strategy(),
        modulus in odd_modulus_strategy(),
    ) {
        prop_assume!(!modulus.is_one());
        let ctx = Montgomery::new(modulus.clone()).expect("odd modulus above one");
        // `Montgomery::mul_mod` requires inputs already reduced mod n.
        let (a, b) = (a.rem_of(&modulus), b.rem_of(&modulus));
        prop_assert_eq!(ctx.mul_mod(&a, &b), a.mul_mod(&b, &modulus));
    }
}

/// Wide operands cross all the window-size tiers (1, 3, 4 and 5 bits) that
/// random short proptest exponents rarely reach.
#[test]
fn window_tiers_agree_on_wide_operands() {
    // Deterministic ~1600-bit odd modulus: (2^1601 - 1) has small factors,
    // so mix in a multiply to get an arbitrary-looking odd value.
    let mut modulus = BigUint::one().shl_bits(1601);
    modulus = &modulus
        + &BigUint::from_hex("f4a7c3b2d1e0958877665544332211fedcba9876543210ab")
            .expect("valid hex");
    assert!(modulus.bit(0), "modulus must be odd");
    let ctx = Montgomery::new(modulus.clone()).expect("odd modulus");
    let base = BigUint::from_hex("0123456789abcdef55aa55aa55aa55aa0123456789abcdef").unwrap();
    // Exponent widths straddling every window_bits tier boundary.
    for bits in [1usize, 24, 25, 80, 81, 240, 241, 1024] {
        let exponent = &BigUint::one().shl_bits(bits) - &BigUint::from_u64(1);
        let fast = ctx.modpow(&base, &exponent);
        let ladder = ctx.modpow_bitwise(&base, &exponent);
        assert_eq!(fast, ladder, "window path diverged at {bits}-bit exponent");
        assert_eq!(
            fast,
            base.modpow_naive(&exponent, &modulus),
            "naive reference diverged at {bits}-bit exponent"
        );
    }
}
