//! Arbitrary-precision unsigned integer arithmetic.
//!
//! This crate is the numeric substrate for the from-scratch RSA-1024
//! implementation in [`oma-crypto`]. It provides a little-endian,
//! 64-bit-limb unsigned big integer ([`BigUint`]) together with the
//! operations RSA needs:
//!
//! * schoolbook multiplication and long division,
//! * modular exponentiation through a Montgomery multiplication context
//!   ([`Montgomery`]),
//! * modular inversion (extended Euclid),
//! * Miller–Rabin primality testing and random prime generation
//!   ([`prime`]),
//! * the PKCS#1 octet-string conversions I2OSP / OS2IP ([`BigUint::from_bytes_be`],
//!   [`BigUint::to_bytes_be_padded`]).
//!
//! The implementation favours clarity and portability over raw speed: it is
//! meant to model the software path of an embedded terminal, not to compete
//! with production bignum libraries.
//!
//! # Example
//!
//! ```
//! use oma_bignum::BigUint;
//!
//! let a = BigUint::from_u64(1_000_000_007);
//! let b = BigUint::from_u64(998_244_353);
//! let m = BigUint::from_u64(4_294_967_291);
//! let p = a.modpow(&b, &m);
//! assert!(p < m);
//! ```
//!
//! [`oma-crypto`]: ../oma_crypto/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convert;
mod div;
mod error;
mod modular;
mod montgomery;
mod mul;
pub mod prime;
mod uint;

pub use error::ParseBigUintError;
pub use montgomery::Montgomery;
pub use uint::BigUint;
