//! Conversions between [`BigUint`] and byte strings / hex strings.
//!
//! The byte-string conversions implement the PKCS#1 I2OSP and OS2IP
//! primitives used throughout the RSA code in `oma-crypto`.

use crate::error::ParseBigUintError;
use crate::BigUint;
use std::str::FromStr;

impl BigUint {
    /// OS2IP: interprets a big-endian byte string as an unsigned integer.
    ///
    /// ```
    /// use oma_bignum::BigUint;
    /// assert_eq!(BigUint::from_bytes_be(&[0x01, 0x00]).to_u64(), Some(256));
    /// ```
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        BigUint::from_limbs(limbs)
    }

    /// Converts to a big-endian byte string with no leading zero bytes
    /// (the empty slice for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// I2OSP: converts to a big-endian byte string of exactly `len` bytes.
    ///
    /// # Errors
    ///
    /// Returns `None` if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// Parses a hexadecimal string (without `0x` prefix, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigUintError`] if the string is empty or contains a
    /// non-hexadecimal character.
    pub fn from_hex(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError::Empty);
        }
        let mut value = BigUint::zero();
        for c in s.chars() {
            let digit = c.to_digit(16).ok_or(ParseBigUintError::InvalidDigit(c))? as u64;
            value = value.shl_bits(4);
            value.add_assign_ref(&BigUint::from_u64(digit));
        }
        Ok(value)
    }

    /// Formats as a lowercase hexadecimal string without a `0x` prefix
    /// (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        for (i, &limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }
}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    /// Parses a hexadecimal string, accepting an optional `0x` prefix.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .unwrap_or(s);
        BigUint::from_hex(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let cases: &[&[u8]] = &[
            &[],
            &[1],
            &[0xff],
            &[1, 0],
            &[0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11],
        ];
        for &bytes in cases {
            let n = BigUint::from_bytes_be(bytes);
            assert_eq!(n.to_bytes_be(), bytes.to_vec());
        }
    }

    #[test]
    fn leading_zeros_are_ignored_on_parse() {
        let a = BigUint::from_bytes_be(&[0, 0, 1, 2]);
        let b = BigUint::from_bytes_be(&[1, 2]);
        assert_eq!(a, b);
    }

    #[test]
    fn padded_bytes() {
        let n = BigUint::from_u64(0x1234);
        assert_eq!(n.to_bytes_be_padded(4), Some(vec![0, 0, 0x12, 0x34]));
        assert_eq!(n.to_bytes_be_padded(2), Some(vec![0x12, 0x34]));
        assert_eq!(n.to_bytes_be_padded(1), None);
        assert_eq!(BigUint::zero().to_bytes_be_padded(3), Some(vec![0, 0, 0]));
    }

    #[test]
    fn hex_roundtrip() {
        for s in [
            "0",
            "1",
            "ff",
            "deadbeef",
            "0123456789abcdef0123456789abcdef01",
        ] {
            let n = BigUint::from_hex(s).unwrap();
            let expected = s.trim_start_matches('0');
            let expected = if expected.is_empty() { "0" } else { expected };
            assert_eq!(n.to_hex(), expected);
        }
    }

    #[test]
    fn from_str_accepts_prefix() {
        assert_eq!("0xff".parse::<BigUint>().unwrap().to_u64(), Some(255));
        assert_eq!("ff".parse::<BigUint>().unwrap().to_u64(), Some(255));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(BigUint::from_hex(""), Err(ParseBigUintError::Empty));
        assert_eq!(
            BigUint::from_hex("xyz"),
            Err(ParseBigUintError::InvalidDigit('x'))
        );
        assert!("0x".parse::<BigUint>().is_err());
    }

    #[test]
    fn hex_matches_bytes() {
        let n = BigUint::from_bytes_be(&[0xab, 0xcd, 0xef, 0x01, 0x23]);
        assert_eq!(n.to_hex(), "abcdef0123");
    }
}
