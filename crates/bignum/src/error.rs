//! Error types for this crate.

use std::error::Error;
use std::fmt;

/// Error returned when parsing a [`crate::BigUint`] from a string fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseBigUintError {
    /// The input string was empty.
    Empty,
    /// The input contained a character that is not a hexadecimal digit.
    InvalidDigit(char),
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBigUintError::Empty => write!(f, "cannot parse integer from empty string"),
            ParseBigUintError::InvalidDigit(c) => {
                write!(f, "invalid hexadecimal digit {c:?}")
            }
        }
    }
}

impl Error for ParseBigUintError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ParseBigUintError::Empty.to_string(),
            "cannot parse integer from empty string"
        );
        assert!(ParseBigUintError::InvalidDigit('g')
            .to_string()
            .contains('g'));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ParseBigUintError>();
    }
}
