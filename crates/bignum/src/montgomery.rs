//! Montgomery multiplication context.
//!
//! Modular exponentiation for RSA is performed in the Montgomery domain to
//! avoid a long division per multiplication. The [`Montgomery`] context
//! precomputes the constants (`n'`, `R² mod n`, `R mod n`) for a fixed odd
//! modulus and exposes Montgomery multiplication and exponentiation on
//! values reduced modulo that modulus.
//!
//! The multiplication kernel works in place on fixed-width limb slices: a
//! context for a `k`-limb modulus moves `k`-limb operands through one
//! reusable `2k+1`-limb scratch buffer, so an entire exponentiation
//! allocates a handful of buffers up front instead of two fresh vectors per
//! squaring. Exponentiation scans the exponent with a sliding fixed window
//! (up to [`MAX_WINDOW_BITS`] bits) over a precomputed table of odd powers,
//! trading `2^(w-1)` table multiplications for a factor-`w` reduction in
//! per-bit multiplications, and routes the dominant squaring steps through a
//! dedicated squaring kernel that computes each off-diagonal limb product
//! once.

use crate::BigUint;

/// Widest exponentiation window [`Montgomery::modpow`] will use (the `k=5`
/// of a 1024-bit RSA CRT leg; shorter exponents get narrower windows).
pub const MAX_WINDOW_BITS: usize = 5;

/// Precomputed Montgomery reduction context for an odd modulus.
///
/// # Example
///
/// ```
/// use oma_bignum::{BigUint, Montgomery};
///
/// let modulus = BigUint::from_u64(101);
/// let ctx = Montgomery::new(modulus.clone()).expect("odd modulus");
/// let r = ctx.modpow(&BigUint::from_u64(3), &BigUint::from_u64(100));
/// assert_eq!(r.to_u64(), Some(1)); // Fermat's little theorem
/// ```
#[derive(Debug, Clone)]
pub struct Montgomery {
    modulus: BigUint,
    /// Number of 64-bit limbs in the modulus.
    limbs: usize,
    /// `-modulus⁻¹ mod 2⁶⁴`.
    n_prime: u64,
    /// `R² mod modulus` where `R = 2^(64·limbs)`, as `limbs` fixed limbs.
    r_squared: Vec<u64>,
    /// `R mod modulus` — the Montgomery representation of 1.
    r_one: Vec<u64>,
}

impl Montgomery {
    /// Creates a context for `modulus`.
    ///
    /// Returns `None` if the modulus is zero or even (Montgomery reduction
    /// requires an odd modulus).
    pub fn new(modulus: BigUint) -> Option<Self> {
        if modulus.is_zero() || modulus.is_even() {
            return None;
        }
        let limbs = modulus.limbs().len();
        let n0 = modulus.limbs()[0];
        // Newton iteration: invert n0 modulo 2^64, then negate.
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n_prime = inv.wrapping_neg();

        // R^2 mod n with R = 2^(64*limbs), computed once per context by the
        // one full division the context exists to amortise away.
        let r_squared_value = BigUint::one().shl_bits(64 * limbs * 2).rem_of(&modulus);
        let mut r_squared = vec![0u64; limbs];
        r_squared[..r_squared_value.limbs().len()].copy_from_slice(r_squared_value.limbs());

        let mut ctx = Montgomery {
            modulus,
            limbs,
            n_prime,
            r_squared,
            r_one: Vec::new(),
        };
        // R mod n = to_mont(1): derived from R² with one reduction.
        let mut r_one = vec![0u64; limbs];
        let mut one = vec![0u64; limbs];
        one[0] = 1;
        let mut scratch = vec![0u64; 2 * limbs + 1];
        ctx.mont_mul_into(&mut r_one, &one, &ctx.r_squared, &mut scratch);
        ctx.r_one = r_one;
        Some(ctx)
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Copies a reduced value into a fixed `limbs`-wide little-endian buffer.
    fn to_fixed(&self, value: &BigUint) -> Vec<u64> {
        debug_assert!(value.limbs().len() <= self.limbs);
        let mut out = vec![0u64; self.limbs];
        out[..value.limbs().len()].copy_from_slice(value.limbs());
        out
    }

    /// Montgomery product `out = a · b · R⁻¹ mod n`, entirely in place.
    ///
    /// `a`, `b` and `out` are fixed `limbs`-wide buffers holding values below
    /// the modulus; `scratch` is a reusable `2·limbs + 1` buffer. Nothing is
    /// allocated: the double-width product is accumulated into `scratch`,
    /// reduced there (REDC), and conditionally-subtracted into `out`.
    fn mont_mul_into(&self, out: &mut [u64], a: &[u64], b: &[u64], scratch: &mut [u64]) {
        let k = self.limbs;
        debug_assert_eq!(out.len(), k);
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        debug_assert_eq!(scratch.len(), 2 * k + 1);

        // scratch = a * b (schoolbook, accumulating rows in place).
        scratch.fill(0);
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = scratch[i + j] as u128 + (ai as u128) * (bj as u128) + carry;
                scratch[i + j] = cur as u64;
                carry = cur >> 64;
            }
            scratch[i + k] = carry as u64;
        }

        self.redc_into(out, scratch);
    }

    /// Montgomery square `out = a · a · R⁻¹ mod n`, in place.
    ///
    /// Each off-diagonal limb product `aᵢ·aⱼ` (i ≠ j) appears twice in the
    /// schoolbook square; computing it once and doubling cuts the multiply
    /// count of the squaring steps — which dominate an exponentiation —
    /// nearly in half versus routing squares through [`Self::mont_mul_into`].
    fn mont_sqr_into(&self, out: &mut [u64], a: &[u64], scratch: &mut [u64]) {
        let k = self.limbs;
        debug_assert_eq!(out.len(), k);
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(scratch.len(), 2 * k + 1);

        // scratch = Σ aᵢ·aⱼ over i < j (each product computed once).
        scratch.fill(0);
        for i in 0..k {
            let ai = a[i];
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for j in (i + 1)..k {
                let cur = scratch[i + j] as u128 + (ai as u128) * (a[j] as u128) + carry;
                scratch[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let cur = scratch[idx] as u128 + carry;
                scratch[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        // Double it (aᵢ·aⱼ occurs for (i,j) and (j,i))...
        let mut carry = 0u64;
        for limb in scratch.iter_mut() {
            let doubled = (u128::from(*limb) << 1) | u128::from(carry);
            *limb = doubled as u64;
            carry = (doubled >> 64) as u64;
        }
        debug_assert_eq!(carry, 0, "a² overflows the double-width scratch");
        // ...then add the diagonal squares aᵢ² at position 2i.
        let mut carry = 0u128;
        for i in 0..k {
            let sq = (a[i] as u128) * (a[i] as u128);
            let lo = scratch[2 * i] as u128 + (sq as u64) as u128 + carry;
            scratch[2 * i] = lo as u64;
            let hi = scratch[2 * i + 1] as u128 + (sq >> 64) + (lo >> 64);
            scratch[2 * i + 1] = hi as u64;
            carry = hi >> 64;
        }
        debug_assert_eq!(carry, 0, "a² overflows the double-width scratch");

        self.redc_into(out, scratch);
    }

    /// The REDC phase shared by the multiply and square kernels: reduces the
    /// double-width value accumulated in `scratch` and writes the `[0, n)`
    /// result to `out`.
    fn redc_into(&self, out: &mut [u64], scratch: &mut [u64]) {
        let k = self.limbs;
        let n = self.modulus.limbs();

        // Fold in m·n row by row so the low k limbs cancel to zero.
        for i in 0..k {
            let m = scratch[i].wrapping_mul(self.n_prime);
            let mut carry = 0u128;
            for (j, &nj) in n.iter().enumerate() {
                let cur = scratch[i + j] as u128 + (m as u128) * (nj as u128) + carry;
                scratch[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let cur = scratch[idx] as u128 + carry;
                scratch[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }

        // The result t = scratch[k..=2k] is below 2n; one conditional
        // subtraction lands it in [0, n).
        let needs_sub = scratch[2 * k] != 0 || !limbs_less_than(&scratch[k..2 * k], n);
        if needs_sub {
            let mut borrow = 0u64;
            for j in 0..k {
                let (d1, b1) = scratch[k + j].overflowing_sub(n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
        } else {
            out.copy_from_slice(&scratch[k..2 * k]);
        }
    }

    /// Computes `a * b mod n` for values reduced modulo `n`.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let k = self.limbs;
        let mut scratch = vec![0u64; 2 * k + 1];
        let mut am = vec![0u64; k];
        let mut bm = vec![0u64; k];
        let mut product = vec![0u64; k];
        self.mont_mul_into(&mut am, &self.to_fixed(a), &self.r_squared, &mut scratch);
        self.mont_mul_into(&mut bm, &self.to_fixed(b), &self.r_squared, &mut scratch);
        self.mont_mul_into(&mut product, &am, &bm, &mut scratch);
        // Leaving the domain: one more reduction against plain 1.
        let mut one = vec![0u64; k];
        one[0] = 1;
        self.mont_mul_into(&mut am, &product, &one, &mut scratch);
        BigUint::from_limbs(am)
    }

    /// Window width for an exponent of `exp_bits` bits: wide enough that the
    /// `2^(w-1)` table multiplications pay for themselves, capped at
    /// [`MAX_WINDOW_BITS`]. A 384/512-bit RSA CRT leg lands on 4, a
    /// 1024-bit leg on 5; tiny exponents (the public `e = 65537`) fall back
    /// to plain square-and-multiply.
    fn window_bits(exp_bits: usize) -> usize {
        match exp_bits {
            0..=24 => 1,
            25..=80 => 3,
            81..=240 => 4,
            _ => MAX_WINDOW_BITS,
        }
    }

    /// Computes `base^exponent mod n` by fixed-window exponentiation over a
    /// precomputed table of odd powers, in the Montgomery domain.
    ///
    /// `base` does not have to be reduced; it is reduced modulo `n` first.
    pub fn modpow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        if self.modulus.is_one() {
            return BigUint::zero();
        }
        let base = base.rem_of(&self.modulus);
        if exponent.is_zero() {
            return BigUint::one();
        }
        let k = self.limbs;
        let mut scratch = vec![0u64; 2 * k + 1];
        let mut tmp = vec![0u64; k];

        let mut base_m = vec![0u64; k];
        self.mont_mul_into(
            &mut base_m,
            &self.to_fixed(&base),
            &self.r_squared,
            &mut scratch,
        );

        let window = Self::window_bits(exponent.bits());
        // table[i] = base^(2i+1) in the Montgomery domain.
        let mut table = Vec::with_capacity(1 << (window - 1));
        table.push(base_m.clone());
        if window > 1 {
            let mut base_sq = vec![0u64; k];
            self.mont_sqr_into(&mut base_sq, &base_m, &mut scratch);
            for i in 1..(1 << (window - 1)) {
                let mut next = vec![0u64; k];
                self.mont_mul_into(&mut next, &table[i - 1], &base_sq, &mut scratch);
                table.push(next);
            }
        }

        let mut acc = self.r_one.clone();
        let mut i = exponent.bits();
        while i > 0 {
            if !exponent.bit(i - 1) {
                self.mont_sqr_into(&mut tmp, &acc, &mut scratch);
                std::mem::swap(&mut acc, &mut tmp);
                i -= 1;
                continue;
            }
            // Gather the widest window ending on a set bit: bits
            // [low, i) with bit(low) set, so the table index is odd.
            let mut low = i.saturating_sub(window);
            while !exponent.bit(low) {
                low += 1;
            }
            let mut value = 0usize;
            for b in (low..i).rev() {
                value = (value << 1) | exponent.bit(b) as usize;
            }
            for _ in 0..(i - low) {
                self.mont_sqr_into(&mut tmp, &acc, &mut scratch);
                std::mem::swap(&mut acc, &mut tmp);
            }
            self.mont_mul_into(&mut tmp, &acc, &table[value >> 1], &mut scratch);
            std::mem::swap(&mut acc, &mut tmp);
            i = low;
        }

        let mut one = vec![0u64; k];
        one[0] = 1;
        self.mont_mul_into(&mut tmp, &acc, &one, &mut scratch);
        BigUint::from_limbs(tmp)
    }

    /// Montgomery reduction of a double-width product held in `t` — the
    /// pre-optimisation implementation, allocating a fresh `BigUint` per
    /// reduction. Kept verbatim so [`Self::modpow_bitwise`] measures what
    /// the code cost before the in-place kernel landed.
    fn redc_alloc(&self, mut t: Vec<u64>) -> BigUint {
        let k = self.limbs;
        let n = self.modulus.limbs();
        t.resize(2 * k + 1, 0);
        for i in 0..k {
            let m = t[i].wrapping_mul(self.n_prime);
            let mut carry = 0u128;
            for (j, &nj) in n.iter().enumerate() {
                let cur = t[i + j] as u128 + (m as u128) * (nj as u128) + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let cur = t[idx] as u128 + carry;
                t[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        let reduced = BigUint::from_limbs(t[k..].to_vec());
        if reduced.cmp_magnitude(&self.modulus) != std::cmp::Ordering::Less {
            &reduced - &self.modulus
        } else {
            reduced
        }
    }

    /// Montgomery product through general `BigUint` multiplication plus
    /// [`Self::redc_alloc`] — the pre-optimisation multiplication step.
    fn mont_mul_alloc(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let product = a * b;
        let mut limbs = product.limbs().to_vec();
        limbs.resize(2 * self.limbs + 1, 0);
        self.redc_alloc(limbs)
    }

    /// `base^exponent mod n` exactly as the pre-optimisation code computed
    /// it: bit-at-a-time square-and-multiply over the allocating
    /// `mont_mul_alloc` kernel (fresh vectors per squaring). Kept as
    /// an independent reference for equivalence testing and as the measured
    /// baseline in `BENCH_*.json` perf snapshots — [`Self::modpow`] is the
    /// optimised path.
    pub fn modpow_bitwise(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        if self.modulus.is_one() {
            return BigUint::zero();
        }
        let base = base.rem_of(&self.modulus);
        if exponent.is_zero() {
            return BigUint::one();
        }
        let r_squared = BigUint::from_limbs(self.r_squared.clone());
        let base_m = self.mont_mul_alloc(&base, &r_squared);
        let mut acc = self.mont_mul_alloc(&BigUint::one(), &r_squared);
        for i in (0..exponent.bits()).rev() {
            acc = self.mont_mul_alloc(&acc, &acc);
            if exponent.bit(i) {
                acc = self.mont_mul_alloc(&acc, &base_m);
            }
        }
        self.mont_mul_alloc(&acc, &BigUint::one())
    }
}

/// Fixed-width magnitude comparison: `a < b` over equal-length limb slices.
fn limbs_less_than(a: &[u64], b: &[u64]) -> bool {
    debug_assert!(a.len() >= b.len());
    for idx in (0..a.len()).rev() {
        let bv = b.get(idx).copied().unwrap_or(0);
        if a[idx] != bv {
            return a[idx] < bv;
        }
    }
    false
}

impl BigUint {
    /// Computes `self^exponent mod modulus`.
    ///
    /// For odd moduli this uses fixed-window Montgomery exponentiation; for
    /// even moduli it falls back to [`BigUint::modpow_naive`].
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn modpow(&self, exponent: &Self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return Self::zero();
        }
        if let Some(ctx) = Montgomery::new(modulus.clone()) {
            return ctx.modpow(self, exponent);
        }
        self.modpow_naive(exponent, modulus)
    }

    /// `self^exponent mod modulus` by square-and-multiply with an explicit
    /// division per step. Total over every modulus parity (the even-modulus
    /// path of [`BigUint::modpow`], which Montgomery reduction cannot
    /// serve), and deliberately free of Montgomery machinery so equivalence
    /// tests have an independent reference.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn modpow_naive(&self, exponent: &Self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return Self::zero();
        }
        let mut result = Self::one();
        let base = self.rem_of(modulus);
        for i in (0..exponent.bits()).rev() {
            result = result.square().rem_of(modulus);
            if exponent.bit(i) {
                result = (&result * &base).rem_of(modulus);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_even_or_zero_modulus() {
        assert!(Montgomery::new(BigUint::from_u64(100)).is_none());
        assert!(Montgomery::new(BigUint::zero()).is_none());
        assert!(Montgomery::new(BigUint::from_u64(101)).is_some());
    }

    #[test]
    fn mul_mod_small() {
        let ctx = Montgomery::new(BigUint::from_u64(97)).unwrap();
        let r = ctx.mul_mod(&BigUint::from_u64(45), &BigUint::from_u64(67));
        assert_eq!(r.to_u64(), Some(45 * 67 % 97));
    }

    #[test]
    fn modpow_matches_naive_small() {
        let m = BigUint::from_u64(1_000_003);
        for (b, e) in [(2u64, 10u64), (3, 0), (7, 65537), (999_999, 12345)] {
            let expected = naive_modpow(b, e, 1_000_003);
            let got = BigUint::from_u64(b)
                .modpow(&BigUint::from_u64(e), &m)
                .to_u64()
                .unwrap();
            assert_eq!(got, expected, "b={b} e={e}");
        }
    }

    #[test]
    fn modpow_even_modulus_fallback() {
        let m = BigUint::from_u64(1_000_000);
        let got = BigUint::from_u64(3)
            .modpow(&BigUint::from_u64(13), &m)
            .to_u64()
            .unwrap();
        assert_eq!(got, naive_modpow(3, 13, 1_000_000));
    }

    #[test]
    fn modpow_modulus_one_is_zero() {
        let r = BigUint::from_u64(5).modpow(&BigUint::from_u64(5), &BigUint::one());
        assert!(r.is_zero());
    }

    #[test]
    fn fermat_little_theorem_multi_limb() {
        // p is a 128-bit prime: 2^127 - 1 is prime (Mersenne).
        let p = BigUint::from_u128((1u128 << 127) - 1);
        let a = BigUint::from_u64(0xdead_beef_1234_5678);
        let r = a.modpow(&(&p - &BigUint::one()), &p);
        assert!(r.is_one());
    }

    #[test]
    fn exponent_zero_gives_one() {
        let m = BigUint::from_u64(101);
        assert!(BigUint::from_u64(7).modpow(&BigUint::zero(), &m).is_one());
    }

    #[test]
    fn fixed_window_matches_bitwise_ladder() {
        // Dense and sparse exponents wide enough to cross several windows,
        // against a deliberately multi-limb modulus.
        let m = &BigUint::from_u128((1u128 << 127) - 1) * &BigUint::from_u64(0xffff_ffff_ffff_fc5f);
        let ctx = Montgomery::new(m.clone()).unwrap();
        let base = BigUint::from_hex("deadbeefcafebabe0123456789abcdef55aa55aa55aa55aa").unwrap();
        for exp_hex in [
            "1",
            "2",
            "ffffffffffffffffffffffffffffffffffffffffffffffff",
            "8000000000000000000000000000000000000000000000001",
            "5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a",
            "10001",
        ] {
            let e = BigUint::from_hex(exp_hex).unwrap();
            assert_eq!(
                ctx.modpow(&base, &e),
                ctx.modpow_bitwise(&base, &e),
                "exp={exp_hex}"
            );
        }
    }

    #[test]
    fn squaring_kernel_matches_multiplication() {
        let m = &BigUint::from_u128((1u128 << 127) - 1) * &BigUint::from_u64(0xffff_ffff_ffff_fc5f);
        let ctx = Montgomery::new(m.clone()).unwrap();
        let two = BigUint::from_u64(2);
        for hexv in [
            "2",
            "deadbeefcafebabe0123456789abcdef55aa55aa55aa55aa",
            "ffffffffffffffffffffffffffffffffffffffffffff",
            "8000000000000000000000000000000000000001",
        ] {
            let a = BigUint::from_hex(hexv).unwrap();
            // modpow(a, 2) squares through mont_sqr_into; mul_mod(a, a)
            // multiplies through mont_mul_into — they must agree exactly.
            assert_eq!(ctx.modpow(&a, &two), ctx.mul_mod(&a, &a), "a={hexv}");
        }
    }

    #[test]
    fn base_larger_than_modulus_is_reduced_first() {
        let m = BigUint::from_u64(1_000_003);
        let big_base = BigUint::from_u128(123_456_789_012_345_678_901_234_567u128);
        let ctx = Montgomery::new(m.clone()).unwrap();
        let e = BigUint::from_u64(12_345);
        assert_eq!(
            ctx.modpow(&big_base, &e),
            big_base.rem_of(&m).modpow_naive(&e, &m)
        );
    }

    #[test]
    fn window_widths_cover_rsa_exponent_sizes() {
        assert_eq!(Montgomery::window_bits(17), 1); // e = 65537
        assert_eq!(Montgomery::window_bits(192), 4); // 384-bit CRT leg
        assert_eq!(Montgomery::window_bits(512), 5); // 1024-bit CRT leg
    }

    fn naive_modpow(mut b: u64, mut e: u64, m: u64) -> u64 {
        let mut r: u128 = 1;
        let mut base = b as u128 % m as u128;
        while e > 0 {
            if e & 1 == 1 {
                r = r * base % m as u128;
            }
            base = base * base % m as u128;
            e >>= 1;
            b = b.wrapping_mul(b);
        }
        r as u64
    }
}
