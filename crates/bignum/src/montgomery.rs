//! Montgomery multiplication context.
//!
//! Modular exponentiation for RSA is performed in the Montgomery domain to
//! avoid a long division per multiplication. The [`Montgomery`] context
//! precomputes the constants (`n'`, `R² mod n`) for a fixed odd modulus and
//! exposes Montgomery multiplication and exponentiation on values reduced
//! modulo that modulus.

use crate::BigUint;

/// Precomputed Montgomery reduction context for an odd modulus.
///
/// # Example
///
/// ```
/// use oma_bignum::{BigUint, Montgomery};
///
/// let modulus = BigUint::from_u64(101);
/// let ctx = Montgomery::new(modulus.clone()).expect("odd modulus");
/// let r = ctx.modpow(&BigUint::from_u64(3), &BigUint::from_u64(100));
/// assert_eq!(r.to_u64(), Some(1)); // Fermat's little theorem
/// ```
#[derive(Debug, Clone)]
pub struct Montgomery {
    modulus: BigUint,
    /// Number of 64-bit limbs in the modulus.
    limbs: usize,
    /// `-modulus⁻¹ mod 2⁶⁴`.
    n_prime: u64,
    /// `R² mod modulus` where `R = 2^(64·limbs)`.
    r_squared: BigUint,
}

impl Montgomery {
    /// Creates a context for `modulus`.
    ///
    /// Returns `None` if the modulus is zero or even (Montgomery reduction
    /// requires an odd modulus).
    pub fn new(modulus: BigUint) -> Option<Self> {
        if modulus.is_zero() || modulus.is_even() {
            return None;
        }
        let limbs = modulus.limbs().len();
        let n0 = modulus.limbs()[0];
        // Newton iteration: invert n0 modulo 2^64, then negate.
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n_prime = inv.wrapping_neg();

        // R^2 mod n with R = 2^(64*limbs).
        let r_squared = BigUint::one().shl_bits(64 * limbs * 2).rem_of(&modulus);

        Some(Montgomery {
            modulus,
            limbs,
            n_prime,
            r_squared,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Montgomery reduction of a double-width product held in `t`
    /// (little-endian limbs, length `2 * self.limbs + 1`).
    fn redc(&self, mut t: Vec<u64>) -> BigUint {
        let k = self.limbs;
        let n = self.modulus.limbs();
        t.resize(2 * k + 1, 0);
        for i in 0..k {
            let m = t[i].wrapping_mul(self.n_prime);
            // t += m * n * 2^(64*i)
            let mut carry = 0u128;
            for (j, &nj) in n.iter().enumerate() {
                let cur = t[i + j] as u128 + (m as u128) * (nj as u128) + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let cur = t[idx] as u128 + carry;
                t[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        let reduced = BigUint::from_limbs(t[k..].to_vec());
        if reduced.cmp_magnitude(&self.modulus) != std::cmp::Ordering::Less {
            &reduced - &self.modulus
        } else {
            reduced
        }
    }

    /// Montgomery product of two values already in the Montgomery domain.
    fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let product = a * b;
        let mut limbs = product.limbs().to_vec();
        limbs.resize(2 * self.limbs + 1, 0);
        self.redc(limbs)
    }

    /// Converts a reduced value into the Montgomery domain.
    fn to_mont(&self, x: &BigUint) -> BigUint {
        self.mont_mul(x, &self.r_squared)
    }

    /// Converts a value out of the Montgomery domain.
    fn out_of_mont(&self, x: &BigUint) -> BigUint {
        self.mont_mul(x, &BigUint::one())
    }

    /// Computes `a * b mod n` for values reduced modulo `n`.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.out_of_mont(&self.mont_mul(&am, &bm))
    }

    /// Computes `base^exponent mod n` using left-to-right square-and-multiply
    /// in the Montgomery domain.
    ///
    /// `base` does not have to be reduced; it is reduced modulo `n` first.
    pub fn modpow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        if self.modulus.is_one() {
            return BigUint::zero();
        }
        let base = base.rem_of(&self.modulus);
        if exponent.is_zero() {
            return BigUint::one();
        }
        let base_m = self.to_mont(&base);
        let mut acc = self.to_mont(&BigUint::one());
        for i in (0..exponent.bits()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exponent.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        self.out_of_mont(&acc)
    }
}

impl BigUint {
    /// Computes `self^exponent mod modulus`.
    ///
    /// For odd moduli this uses Montgomery exponentiation; for even moduli it
    /// falls back to square-and-multiply with explicit reductions.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn modpow(&self, exponent: &Self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return Self::zero();
        }
        if let Some(ctx) = Montgomery::new(modulus.clone()) {
            return ctx.modpow(self, exponent);
        }
        // Even modulus fallback (not used by RSA, but keeps the API total).
        let mut result = Self::one();
        let base = self.rem_of(modulus);
        for i in (0..exponent.bits()).rev() {
            result = result.square().rem_of(modulus);
            if exponent.bit(i) {
                result = (&result * &base).rem_of(modulus);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_even_or_zero_modulus() {
        assert!(Montgomery::new(BigUint::from_u64(100)).is_none());
        assert!(Montgomery::new(BigUint::zero()).is_none());
        assert!(Montgomery::new(BigUint::from_u64(101)).is_some());
    }

    #[test]
    fn mul_mod_small() {
        let ctx = Montgomery::new(BigUint::from_u64(97)).unwrap();
        let r = ctx.mul_mod(&BigUint::from_u64(45), &BigUint::from_u64(67));
        assert_eq!(r.to_u64(), Some(45 * 67 % 97));
    }

    #[test]
    fn modpow_matches_naive_small() {
        let m = BigUint::from_u64(1_000_003);
        for (b, e) in [(2u64, 10u64), (3, 0), (7, 65537), (999_999, 12345)] {
            let expected = naive_modpow(b, e, 1_000_003);
            let got = BigUint::from_u64(b)
                .modpow(&BigUint::from_u64(e), &m)
                .to_u64()
                .unwrap();
            assert_eq!(got, expected, "b={b} e={e}");
        }
    }

    #[test]
    fn modpow_even_modulus_fallback() {
        let m = BigUint::from_u64(1_000_000);
        let got = BigUint::from_u64(3)
            .modpow(&BigUint::from_u64(13), &m)
            .to_u64()
            .unwrap();
        assert_eq!(got, naive_modpow(3, 13, 1_000_000));
    }

    #[test]
    fn modpow_modulus_one_is_zero() {
        let r = BigUint::from_u64(5).modpow(&BigUint::from_u64(5), &BigUint::one());
        assert!(r.is_zero());
    }

    #[test]
    fn fermat_little_theorem_multi_limb() {
        // p is a 128-bit prime: 2^127 - 1 is prime (Mersenne).
        let p = BigUint::from_u128((1u128 << 127) - 1);
        let a = BigUint::from_u64(0xdead_beef_1234_5678);
        let r = a.modpow(&(&p - &BigUint::one()), &p);
        assert!(r.is_one());
    }

    #[test]
    fn exponent_zero_gives_one() {
        let m = BigUint::from_u64(101);
        assert!(BigUint::from_u64(7).modpow(&BigUint::zero(), &m).is_one());
    }

    fn naive_modpow(mut b: u64, mut e: u64, m: u64) -> u64 {
        let mut r: u128 = 1;
        let mut base = b as u128 % m as u128;
        while e > 0 {
            if e & 1 == 1 {
                r = r * base % m as u128;
            }
            base = base * base % m as u128;
            e >>= 1;
            b = b.wrapping_mul(b);
        }
        r as u64
    }
}
