//! Primality testing and random prime generation.
//!
//! RSA key generation in `oma-crypto` draws candidate primes from an
//! [`rand::RngCore`] source, sieves them against a table of small primes and
//! then applies the Miller–Rabin probabilistic primality test.

use crate::BigUint;
use rand::RngCore;

/// Small primes used to cheaply reject composite candidates before running
/// Miller–Rabin.
const SMALL_PRIMES: [u64; 60] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283,
];

/// Number of Miller–Rabin rounds used by [`generate_prime`]. 40 rounds gives
/// an error probability below 2⁻⁸⁰ for random candidates.
pub const MILLER_RABIN_ROUNDS: usize = 40;

/// Returns `true` if `candidate` is (probably) prime.
///
/// Performs trial division by a table of small primes followed by `rounds`
/// Miller–Rabin iterations with random bases drawn from `rng`.
///
/// ```
/// use oma_bignum::{prime, BigUint};
/// let mut rng = rand::thread_rng();
/// assert!(prime::is_probable_prime(&BigUint::from_u64(65_537), 16, &mut rng));
/// assert!(!prime::is_probable_prime(&BigUint::from_u64(65_535), 16, &mut rng));
/// ```
pub fn is_probable_prime<R: RngCore + ?Sized>(
    candidate: &BigUint,
    rounds: usize,
    rng: &mut R,
) -> bool {
    if candidate.is_zero() || candidate.is_one() {
        return false;
    }
    if candidate.to_u64() == Some(2) {
        return true;
    }
    if candidate.is_even() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p_big = BigUint::from_u64(p);
        if candidate == &p_big {
            return true;
        }
        if candidate.rem_of(&p_big).is_zero() {
            return false;
        }
    }
    miller_rabin(candidate, rounds, rng)
}

/// Miller–Rabin probabilistic primality test on an odd candidate `> 3`.
fn miller_rabin<R: RngCore + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    let one = BigUint::one();
    let two = BigUint::from_u64(2);
    let n_minus_1 = n - &one;

    // n - 1 = 2^s * d with d odd
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr_bits(1);
        s += 1;
    }

    'witness: for _ in 0..rounds {
        let a = random_in_range(&two, &(&n_minus_1 - &one), rng);
        let mut x = a.modpow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = x.modpow(&two, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Draws a uniformly random value in `[low, high]` (inclusive).
///
/// # Panics
///
/// Panics if `low > high`.
pub fn random_in_range<R: RngCore + ?Sized>(low: &BigUint, high: &BigUint, rng: &mut R) -> BigUint {
    assert!(low <= high, "random_in_range: low > high");
    let span = &(high - low) + &BigUint::one();
    let bits = span.bits();
    loop {
        let candidate = random_bits(bits, rng);
        if candidate < span {
            return &candidate + low;
        }
    }
}

/// Draws a random value with at most `bits` bits.
pub fn random_bits<R: RngCore + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    if bits == 0 {
        return BigUint::zero();
    }
    let bytes = bits.div_ceil(8);
    let mut buf = vec![0u8; bytes];
    rng.fill_bytes(&mut buf);
    let excess = bytes * 8 - bits;
    buf[0] &= 0xffu8 >> excess;
    BigUint::from_bytes_be(&buf)
}

/// Generates a random probable prime with exactly `bits` bits
/// (top bit set, odd).
///
/// # Panics
///
/// Panics if `bits < 8`.
pub fn generate_prime<R: RngCore + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 8, "prime size must be at least 8 bits");
    loop {
        let mut candidate = random_bits(bits, rng);
        candidate.set_bit(bits - 1, true);
        // Setting the second-highest bit keeps products of two such primes at
        // the full 2·bits length, which RSA key generation relies on.
        if bits >= 2 {
            candidate.set_bit(bits - 2, true);
        }
        candidate.set_bit(0, true);
        if is_probable_prime(&candidate, MILLER_RABIN_ROUNDS, rng) {
            return candidate;
        }
    }
}

/// Generates a random probable prime `p` with `bits` bits such that
/// `gcd(p - 1, e) == 1`, as required for RSA with public exponent `e`.
pub fn generate_rsa_prime<R: RngCore + ?Sized>(
    bits: usize,
    public_exponent: &BigUint,
    rng: &mut R,
) -> BigUint {
    loop {
        let p = generate_prime(bits, rng);
        let p_minus_1 = &p - &BigUint::one();
        if p_minus_1.gcd(public_exponent).is_one() {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x0123_4567_89ab_cdef)
    }

    #[test]
    fn small_primes_recognised() {
        let mut rng = rng();
        for p in [2u64, 3, 5, 7, 11, 13, 97, 257, 65_537, 1_000_000_007] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 16, &mut rng),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut rng = rng();
        for c in [0u64, 1, 4, 6, 9, 15, 91, 561, 65_535, 1_000_000_000] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool the Fermat test but not Miller–Rabin.
        let mut rng = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(!is_probable_prime(&BigUint::from_u64(c), 16, &mut rng));
        }
    }

    #[test]
    fn mersenne_prime_multi_limb() {
        let mut rng = rng();
        let p = BigUint::from_u128((1u128 << 127) - 1);
        assert!(is_probable_prime(&p, 8, &mut rng));
        let composite = BigUint::from_u128((1u128 << 127) + 1);
        assert!(!is_probable_prime(&composite, 8, &mut rng));
    }

    #[test]
    fn generated_prime_has_requested_size() {
        let mut rng = rng();
        for bits in [64usize, 96, 128] {
            let p = generate_prime(bits, &mut rng);
            assert_eq!(p.bits(), bits);
            assert!(p.is_odd());
            assert!(is_probable_prime(&p, 16, &mut rng));
        }
    }

    #[test]
    fn rsa_prime_is_coprime_with_exponent() {
        let mut rng = rng();
        let e = BigUint::from_u64(65_537);
        let p = generate_rsa_prime(96, &e, &mut rng);
        assert!((&p - &BigUint::one()).gcd(&e).is_one());
    }

    #[test]
    fn random_in_range_respects_bounds() {
        let mut rng = rng();
        let low = BigUint::from_u64(100);
        let high = BigUint::from_u64(110);
        for _ in 0..200 {
            let v = random_in_range(&low, &high, &mut rng);
            assert!(v >= low && v <= high);
        }
    }

    #[test]
    fn random_bits_bounded() {
        let mut rng = rng();
        for _ in 0..50 {
            let v = random_bits(13, &mut rng);
            assert!(v.bits() <= 13);
        }
        assert!(random_bits(0, &mut rng).is_zero());
    }
}
