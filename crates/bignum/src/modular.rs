//! Modular arithmetic helpers that are not tied to a Montgomery context:
//! modular addition/subtraction/multiplication, GCD and modular inversion.

use crate::BigUint;

impl BigUint {
    /// Computes `(self + other) mod modulus` (operands need not be reduced).
    pub fn add_mod(&self, other: &Self, modulus: &Self) -> Self {
        (self + other).rem_of(modulus)
    }

    /// Computes `(self - other) mod modulus`, wrapping around the modulus.
    ///
    /// Both operands are reduced modulo `modulus` first, so the result is
    /// always in `[0, modulus)`.
    pub fn sub_mod(&self, other: &Self, modulus: &Self) -> Self {
        let a = self.rem_of(modulus);
        let b = other.rem_of(modulus);
        if a >= b {
            &a - &b
        } else {
            &(&a + modulus) - &b
        }
    }

    /// Computes `(self * other) mod modulus`.
    pub fn mul_mod(&self, other: &Self, modulus: &Self) -> Self {
        (self * other).rem_of(modulus)
    }

    /// Greatest common divisor (Euclid's algorithm).
    ///
    /// ```
    /// use oma_bignum::BigUint;
    /// let g = BigUint::from_u64(48).gcd(&BigUint::from_u64(36));
    /// assert_eq!(g.to_u64(), Some(12));
    /// ```
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem_of(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Computes the modular inverse `self⁻¹ mod modulus`, if it exists.
    ///
    /// Returns `None` when `gcd(self, modulus) != 1` or the modulus is zero
    /// or one.
    ///
    /// ```
    /// use oma_bignum::BigUint;
    /// let inv = BigUint::from_u64(3).mod_inverse(&BigUint::from_u64(11)).unwrap();
    /// assert_eq!(inv.to_u64(), Some(4)); // 3 * 4 = 12 ≡ 1 (mod 11)
    /// ```
    pub fn mod_inverse(&self, modulus: &Self) -> Option<Self> {
        if modulus.is_zero() || modulus.is_one() {
            return None;
        }
        // Extended Euclid with signed coefficients tracked as (sign, magnitude).
        let mut r0 = modulus.clone();
        let mut r1 = self.rem_of(modulus);
        // t coefficients: t0 = 0, t1 = 1
        let mut t0 = Signed::zero();
        let mut t1 = Signed::positive(BigUint::one());
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            let t2 = t0.sub(&t1.mul_uint(&q));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return None;
        }
        Some(t0.rem_positive(modulus))
    }
}

/// Minimal signed big integer used only inside the extended Euclid algorithm.
#[derive(Clone, Debug)]
struct Signed {
    negative: bool,
    magnitude: BigUint,
}

impl Signed {
    fn zero() -> Self {
        Signed {
            negative: false,
            magnitude: BigUint::zero(),
        }
    }

    fn positive(magnitude: BigUint) -> Self {
        Signed {
            negative: false,
            magnitude,
        }
    }

    fn mul_uint(&self, factor: &BigUint) -> Self {
        Signed {
            negative: self.negative && !factor.is_zero(),
            magnitude: &self.magnitude * factor,
        }
    }

    fn sub(&self, other: &Self) -> Self {
        match (self.negative, other.negative) {
            (false, true) => Signed::positive(&self.magnitude + &other.magnitude),
            (true, false) => Signed {
                negative: !(&self.magnitude + &other.magnitude).is_zero(),
                magnitude: &self.magnitude + &other.magnitude,
            },
            (a_neg, _) => {
                // Same sign: result magnitude is |a| - |b| with sign depending on ordering.
                if self.magnitude >= other.magnitude {
                    let mag = &self.magnitude - &other.magnitude;
                    Signed {
                        negative: a_neg && !mag.is_zero(),
                        magnitude: mag,
                    }
                } else {
                    let mag = &other.magnitude - &self.magnitude;
                    Signed {
                        negative: !a_neg && !mag.is_zero(),
                        magnitude: mag,
                    }
                }
            }
        }
    }

    /// Reduces into `[0, modulus)` treating the value as an integer mod `modulus`.
    fn rem_positive(&self, modulus: &BigUint) -> BigUint {
        let r = self.magnitude.rem_of(modulus);
        if self.negative && !r.is_zero() {
            modulus - &r
        } else {
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(
            BigUint::from_u64(270).gcd(&BigUint::from_u64(192)).to_u64(),
            Some(6)
        );
        assert_eq!(
            BigUint::from_u64(17).gcd(&BigUint::from_u64(5)).to_u64(),
            Some(1)
        );
        assert_eq!(BigUint::zero().gcd(&BigUint::from_u64(9)).to_u64(), Some(9));
    }

    #[test]
    fn inverse_small_prime_modulus() {
        let p = BigUint::from_u64(1_000_000_007);
        for a in [2u64, 3, 999, 123_456_789] {
            let inv = BigUint::from_u64(a).mod_inverse(&p).unwrap();
            let product = BigUint::from_u64(a).mul_mod(&inv, &p);
            assert!(product.is_one(), "a={a}");
        }
    }

    #[test]
    fn inverse_nonexistent() {
        // gcd(6, 9) = 3, no inverse
        assert!(BigUint::from_u64(6)
            .mod_inverse(&BigUint::from_u64(9))
            .is_none());
        assert!(BigUint::from_u64(5).mod_inverse(&BigUint::one()).is_none());
        assert!(BigUint::from_u64(5).mod_inverse(&BigUint::zero()).is_none());
    }

    #[test]
    fn inverse_multi_limb() {
        // modulus = 2^127 - 1 (prime), value spans two limbs.
        let p = BigUint::from_u128((1u128 << 127) - 1);
        let a = BigUint::from_u128(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
        let inv = a.mod_inverse(&p).unwrap();
        assert!(a.mul_mod(&inv, &p).is_one());
    }

    #[test]
    fn rsa_style_inverse() {
        // e = 65537 inverse modulo a composite phi.
        let phi = BigUint::from_u128(3_233_462_188_000_328_320u128); // arbitrary even composite
        let e = BigUint::from_u64(65_537);
        if let Some(d) = e.mod_inverse(&phi) {
            assert!(e.mul_mod(&d, &phi).is_one());
        }
    }

    #[test]
    fn add_sub_mul_mod() {
        let m = BigUint::from_u64(97);
        let a = BigUint::from_u64(90);
        let b = BigUint::from_u64(15);
        assert_eq!(a.add_mod(&b, &m).to_u64(), Some(8));
        assert_eq!(a.sub_mod(&b, &m).to_u64(), Some(75));
        assert_eq!(b.sub_mod(&a, &m).to_u64(), Some(22));
        assert_eq!(a.mul_mod(&b, &m).to_u64(), Some(90 * 15 % 97));
    }
}
