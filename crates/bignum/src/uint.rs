//! The [`BigUint`] type: representation, comparison, addition, subtraction,
//! shifts and bit access.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Rem, Shl, Shr, Sub, SubAssign};

/// An arbitrary-precision unsigned integer.
///
/// The value is stored as little-endian 64-bit limbs with the invariant that
/// the most significant limb is non-zero (zero is represented by an empty
/// limb vector). All arithmetic is non-negative; subtraction panics on
/// underflow (use [`BigUint::checked_sub`] for the fallible form).
///
/// # Example
///
/// ```
/// use oma_bignum::BigUint;
///
/// let a = BigUint::from_u64(10);
/// let b = BigUint::from_u64(32);
/// assert_eq!((&a + &b).to_u64(), Some(42));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a single machine word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds a value from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = BigUint {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }

    /// Builds a value directly from little-endian limbs.
    pub(crate) fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Returns the little-endian limbs of the value.
    pub(crate) fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is exactly one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Number of significant bits (`0` for the value zero).
    ///
    /// ```
    /// use oma_bignum::BigUint;
    /// assert_eq!(BigUint::from_u64(0).bits(), 0);
    /// assert_eq!(BigUint::from_u64(255).bits(), 8);
    /// assert_eq!(BigUint::from_u64(256).bits(), 9);
    /// ```
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit numbering), `false` beyond the top.
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to `value`, growing the number if needed.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let limb = i / 64;
        let off = i % 64;
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << off;
        } else if let Some(l) = self.limbs.get_mut(limb) {
            *l &= !(1 << off);
            self.normalize();
        }
    }

    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Compares two values.
    pub fn cmp_magnitude(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Adds `other` into `self`.
    pub fn add_assign_ref(&mut self, other: &Self) {
        let mut carry = 0u64;
        let n = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(n, 0);
        for i in 0..n {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = self.limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Subtracts `other` from `self`, returning `None` on underflow.
    pub fn checked_sub(&self, other: &Self) -> Option<Self> {
        if self.cmp_magnitude(other) == Ordering::Less {
            return None;
        }
        let mut out = self.clone();
        out.sub_assign_ref(other);
        Some(out)
    }

    /// Subtracts `other` from `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub_assign_ref(&mut self, other: &Self) {
        assert!(
            self.cmp_magnitude(other) != Ordering::Less,
            "BigUint subtraction underflow"
        );
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }

    /// Left shift by `bits`.
    pub fn shl_bits(&self, bits: usize) -> Self {
        if self.is_zero() || bits == 0 {
            if bits == 0 {
                return self.clone();
            }
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        BigUint::from_limbs(limbs)
    }

    /// Right shift by `bits`.
    pub fn shr_bits(&self, bits: usize) -> Self {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                limbs.push(lo | hi);
            }
        }
        BigUint::from_limbs(limbs)
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_magnitude(other)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from_u64(v as u64)
    }
}

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        &self + &rhs
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        self.add_assign_ref(rhs);
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        self.sub_assign_ref(rhs);
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_schoolbook(rhs)
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        &self * &rhs
    }
}

impl Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::default(), BigUint::zero());
    }

    #[test]
    fn from_u64_roundtrip() {
        for v in [0u64, 1, 2, u64::MAX, 0xdead_beef] {
            assert_eq!(BigUint::from_u64(v).to_u64(), Some(v));
        }
    }

    #[test]
    fn from_u128_splits_limbs() {
        let v = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128;
        let n = BigUint::from_u128(v);
        assert_eq!(n.limbs(), &[0xfedc_ba98_7654_3210, 0x0123_4567_89ab_cdef]);
    }

    #[test]
    fn addition_with_carry() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::from_u64(1);
        let s = &a + &b;
        assert_eq!(s.limbs(), &[0, 1]);
        assert_eq!(s.bits(), 65);
    }

    #[test]
    fn subtraction_with_borrow() {
        let a = BigUint::from_u128(1u128 << 64);
        let b = BigUint::from_u64(1);
        let d = &a - &b;
        assert_eq!(d.to_u64(), Some(u64::MAX));
    }

    #[test]
    fn checked_sub_underflow_is_none() {
        let a = BigUint::from_u64(1);
        let b = BigUint::from_u64(2);
        assert!(a.checked_sub(&b).is_none());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &BigUint::from_u64(1) - &BigUint::from_u64(2);
    }

    #[test]
    fn bit_counts() {
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(BigUint::from_u64(0x8000_0000_0000_0000).bits(), 64);
        assert_eq!(BigUint::from_u128(1u128 << 64).bits(), 65);
    }

    #[test]
    fn bit_get_set() {
        let mut n = BigUint::zero();
        n.set_bit(70, true);
        assert!(n.bit(70));
        assert!(!n.bit(69));
        assert_eq!(n.bits(), 71);
        n.set_bit(70, false);
        assert!(n.is_zero());
    }

    #[test]
    fn shifts_roundtrip() {
        let n = BigUint::from_u128(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        for s in [0usize, 1, 7, 63, 64, 65, 100] {
            let shifted = n.shl_bits(s).shr_bits(s);
            assert_eq!(shifted, n, "shift by {s}");
        }
    }

    #[test]
    fn shr_past_end_is_zero() {
        assert!(BigUint::from_u64(5).shr_bits(64).is_zero());
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u128(1u128 << 64);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn parity() {
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
        assert!(BigUint::from_u64(42).is_even());
    }

    #[test]
    fn display_and_debug_nonempty() {
        let n = BigUint::from_u64(255);
        assert_eq!(format!("{n}"), "0xff");
        assert!(format!("{n:?}").contains("ff"));
        assert_eq!(format!("{:x}", n), "ff");
    }
}
