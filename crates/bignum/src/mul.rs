//! Multiplication and squaring.

use crate::BigUint;

impl BigUint {
    /// Schoolbook multiplication, O(n·m) limb products.
    pub(crate) fn mul_schoolbook(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Squares the value (`self * self`).
    pub fn square(&self) -> Self {
        self.mul_schoolbook(self)
    }

    /// Multiplies by a single machine word.
    pub fn mul_u64(&self, factor: u64) -> Self {
        if factor == 0 || self.is_zero() {
            return Self::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let cur = (l as u128) * (factor as u128) + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_products() {
        let a = BigUint::from_u64(1234);
        let b = BigUint::from_u64(5678);
        assert_eq!((&a * &b).to_u64(), Some(1234 * 5678));
    }

    #[test]
    fn multiply_by_zero_and_one() {
        let a = BigUint::from_u128(0xffff_ffff_ffff_ffff_ffff);
        assert!((&a * &BigUint::zero()).is_zero());
        assert_eq!(&a * &BigUint::one(), a);
    }

    #[test]
    fn carries_across_limbs() {
        let a = BigUint::from_u64(u64::MAX);
        let sq = a.square();
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let expected = BigUint::from_u128(u128::MAX - (1u128 << 65) + 2);
        assert_eq!(sq, expected);
    }

    #[test]
    fn mul_u64_matches_full_mul() {
        let a = BigUint::from_u128(0x0123_4567_89ab_cdef_1122_3344_5566_7788);
        assert_eq!(a.mul_u64(9999), &a * &BigUint::from_u64(9999));
        assert!(a.mul_u64(0).is_zero());
    }

    #[test]
    fn square_matches_mul() {
        let a = BigUint::from_u128(0xdead_beef_cafe_babe_0123_4567);
        assert_eq!(a.square(), &a * &a);
    }
}
