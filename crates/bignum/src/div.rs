//! Division and remainder.

use crate::BigUint;

impl BigUint {
    /// Divides `self` by `divisor`, returning `(quotient, remainder)`.
    ///
    /// The algorithm is shift-and-subtract long division, with a fast path
    /// for single-limb divisors. It is O(bits · limbs) which is more than
    /// adequate for the RSA key sizes this crate supports.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by zero BigUint");
        if self.cmp_magnitude(divisor) == std::cmp::Ordering::Less {
            return (Self::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }

        let shift = self.bits() - divisor.bits();
        let mut remainder = self.clone();
        let mut quotient = Self::zero();
        let mut shifted = divisor.shl_bits(shift);
        for i in (0..=shift).rev() {
            if remainder.cmp_magnitude(&shifted) != std::cmp::Ordering::Less {
                remainder.sub_assign_ref(&shifted);
                quotient.set_bit(i, true);
            }
            shifted = shifted.shr_bits(1);
        }
        (quotient, remainder)
    }

    /// Divides by a single machine word, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem_u64(&self, divisor: u64) -> (Self, u64) {
        assert!(divisor != 0, "division by zero");
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            quotient[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        (BigUint::from_limbs(quotient), rem as u64)
    }

    /// Computes `self mod modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn rem_of(&self, modulus: &Self) -> Self {
        self.div_rem(modulus).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_division() {
        let a = BigUint::from_u64(1_000_000);
        let b = BigUint::from_u64(7);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.to_u64(), Some(142_857));
        assert_eq!(r.to_u64(), Some(1));
    }

    #[test]
    fn divide_by_larger_gives_zero_quotient() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u64(10);
        let (q, r) = a.div_rem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn exact_division() {
        let a = BigUint::from_u128(1u128 << 100);
        let b = BigUint::from_u128(1u128 << 40);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, BigUint::from_u128(1u128 << 60));
        assert!(r.is_zero());
    }

    #[test]
    fn multi_limb_division_identity() {
        // a = q*b + r reconstructed exactly
        let a =
            BigUint::from_hex("f0e1d2c3b4a5968778695a4b3c2d1e0f00112233445566778899aabbccddeeff")
                .unwrap();
        let b = BigUint::from_hex("0123456789abcdef0011223344556677").unwrap();
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        let recon = &(&q * &b) + &r;
        assert_eq!(recon, a);
    }

    #[test]
    fn div_rem_u64_matches_generic() {
        let a = BigUint::from_hex("ffeeddccbbaa99887766554433221100aabbccdd").unwrap();
        let (q1, r1) = a.div_rem_u64(1_000_003);
        let (q2, r2) = a.div_rem(&BigUint::from_u64(1_000_003));
        assert_eq!(q1, q2);
        assert_eq!(BigUint::from_u64(r1), r2);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = BigUint::from_u64(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn rem_of_is_remainder() {
        let a = BigUint::from_u64(100);
        let m = BigUint::from_u64(7);
        assert_eq!(a.rem_of(&m).to_u64(), Some(2));
    }
}
