//! The Certification Authority: issues certificates, tracks revocation and
//! operates the OCSP responder.

use crate::certificate::{Certificate, CertificateRequest, EntityRole, TbsCertificate};
use crate::ocsp::{CertificateStatus, OcspRequest, OcspResponse, TbsOcspResponse};
use crate::{Timestamp, ValidityPeriod};
use oma_crypto::backend::{CryptoBackend, SoftwareBackend};
use oma_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use oma_crypto::CryptoEngine;
use rand::RngCore;
use std::collections::HashSet;
use std::sync::Arc;

/// A Certification Authority, the trust anchor of the OMA DRM 2 system
/// (the role the CMLA plays in the real deployment).
///
/// The CA signs certificates for DRM Agents and Rights Issuers and answers
/// OCSP status requests about the certificates it has issued. Its own
/// cryptographic work happens server-side and is therefore *not* part of the
/// terminal cost model; it uses a private [`CryptoEngine`] whose trace is
/// simply ignored.
#[derive(Debug)]
pub struct CertificationAuthority {
    name: String,
    keys: RsaKeyPair,
    root: Certificate,
    next_serial: u64,
    revoked: HashSet<u64>,
    engine: CryptoEngine,
}

impl CertificationAuthority {
    /// Creates a CA with a fresh key pair of `modulus_bits` bits and a
    /// self-signed root certificate. The CA signs on the software backend;
    /// use [`CertificationAuthority::with_backend`] to model an accelerated
    /// signing service.
    pub fn new<R: RngCore + ?Sized>(name: &str, modulus_bits: usize, rng: &mut R) -> Self {
        Self::with_backend(name, modulus_bits, Arc::new(SoftwareBackend::new()), rng)
    }

    /// Creates a CA whose cryptography executes on `backend`. The CA's
    /// trace is server-side and never enters the terminal cost model, but
    /// the pluggable layer is threaded through every actor for symmetry.
    pub fn with_backend<R: RngCore + ?Sized>(
        name: &str,
        modulus_bits: usize,
        backend: Arc<dyn CryptoBackend>,
        rng: &mut R,
    ) -> Self {
        let keys = RsaKeyPair::generate(modulus_bits, rng);
        let engine = CryptoEngine::with_backend(backend, rng.next_u64());
        let tbs = TbsCertificate {
            serial: 0,
            issuer: name.to_string(),
            subject: name.to_string(),
            role: EntityRole::CertificationAuthority,
            public_key: keys.public().clone(),
            validity: ValidityPeriod::new(Timestamp::new(0), Timestamp::new(u64::MAX)),
        };
        let signature = engine
            .pss_sign(keys.private(), &tbs.to_bytes())
            .expect("CA key large enough for PSS");
        let root = Certificate::new(tbs, signature);
        CertificationAuthority {
            name: name.to_string(),
            keys,
            root,
            next_serial: 1,
            revoked: HashSet::new(),
            engine,
        }
    }

    /// The CA's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The self-signed root certificate that devices and Rights Issuers use
    /// as their trust anchor.
    pub fn root_certificate(&self) -> &Certificate {
        &self.root
    }

    /// The CA public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        self.keys.public()
    }

    /// Issues a certificate binding `subject` / `role` to `public_key`.
    pub fn issue(
        &mut self,
        subject: &str,
        role: EntityRole,
        public_key: RsaPublicKey,
        validity: ValidityPeriod,
    ) -> Certificate {
        let serial = self.next_serial;
        self.next_serial += 1;
        let tbs = TbsCertificate {
            serial,
            issuer: self.name.clone(),
            subject: subject.to_string(),
            role,
            public_key,
            validity,
        };
        let signature = self
            .engine
            .pss_sign(self.keys.private(), &tbs.to_bytes())
            .expect("CA key large enough for PSS");
        Certificate::new(tbs, signature)
    }

    /// Issues a certificate for a [`CertificateRequest`].
    pub fn issue_request(&mut self, request: &CertificateRequest) -> Certificate {
        self.issue(
            &request.subject,
            request.role,
            request.public_key.clone(),
            request.validity,
        )
    }

    /// Marks a previously issued certificate as revoked.
    pub fn revoke(&mut self, serial: u64) {
        self.revoked.insert(serial);
    }

    /// Whether `serial` has been revoked.
    pub fn is_revoked(&self, serial: u64) -> bool {
        self.revoked.contains(&serial)
    }

    /// Number of certificates issued so far (excluding the root).
    pub fn issued_count(&self) -> u64 {
        self.next_serial - 1
    }

    /// Answers an OCSP request about one of this CA's certificates.
    ///
    /// The response is signed with the CA key and echoes the request nonce,
    /// as RFC 2560 prescribes.
    pub fn ocsp_respond(&self, request: &OcspRequest, produced_at: Timestamp) -> OcspResponse {
        let status = if self.revoked.contains(&request.serial) {
            CertificateStatus::Revoked
        } else if request.serial < self.next_serial {
            CertificateStatus::Good
        } else {
            CertificateStatus::Unknown
        };
        let tbs = TbsOcspResponse {
            responder: self.name.clone(),
            serial: request.serial,
            status,
            produced_at,
            nonce: request.nonce.clone(),
        };
        let signature = self
            .engine
            .pss_sign(self.keys.private(), &tbs.to_bytes())
            .expect("CA key large enough for PSS");
        OcspResponse::new(tbs, signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ca() -> CertificationAuthority {
        CertificationAuthority::new("cmla-test", 384, &mut StdRng::seed_from_u64(11))
    }

    #[test]
    fn root_certificate_is_self_signed_ca_role() {
        let ca = ca();
        let root = ca.root_certificate();
        assert_eq!(root.issuer(), root.subject());
        assert_eq!(root.role(), EntityRole::CertificationAuthority);
        assert_eq!(root.serial(), 0);
        assert_eq!(root.public_key(), ca.public_key());
    }

    #[test]
    fn serials_increase_monotonically() {
        let mut ca = ca();
        let keys = RsaKeyPair::generate(384, &mut StdRng::seed_from_u64(12));
        let v = ValidityPeriod::new(Timestamp::new(0), Timestamp::new(1000));
        let a = ca.issue("a", EntityRole::DrmAgent, keys.public().clone(), v);
        let b = ca.issue("b", EntityRole::RightsIssuer, keys.public().clone(), v);
        assert_eq!(a.serial(), 1);
        assert_eq!(b.serial(), 2);
        assert_eq!(ca.issued_count(), 2);
    }

    #[test]
    fn issue_request_copies_fields() {
        let mut ca = ca();
        let keys = RsaKeyPair::generate(384, &mut StdRng::seed_from_u64(13));
        let req = CertificateRequest {
            subject: "phone-7".into(),
            role: EntityRole::DrmAgent,
            public_key: keys.public().clone(),
            validity: ValidityPeriod::new(Timestamp::new(5), Timestamp::new(50)),
        };
        let cert = ca.issue_request(&req);
        assert_eq!(cert.subject(), "phone-7");
        assert_eq!(cert.role(), EntityRole::DrmAgent);
        assert_eq!(cert.validity().not_before().seconds(), 5);
    }

    #[test]
    fn revocation_is_tracked() {
        let mut ca = ca();
        assert!(!ca.is_revoked(1));
        ca.revoke(1);
        assert!(ca.is_revoked(1));
    }

    #[test]
    fn ocsp_status_reflects_revocation_and_issuance() {
        let mut ca = ca();
        let keys = RsaKeyPair::generate(384, &mut StdRng::seed_from_u64(14));
        let v = ValidityPeriod::new(Timestamp::new(0), Timestamp::new(1000));
        let cert = ca.issue("ri-1", EntityRole::RightsIssuer, keys.public().clone(), v);

        let request = OcspRequest {
            serial: cert.serial(),
            nonce: vec![1, 2, 3],
        };
        let response = ca.ocsp_respond(&request, Timestamp::new(10));
        assert_eq!(response.status(), CertificateStatus::Good);
        assert_eq!(response.tbs().nonce, vec![1, 2, 3]);

        ca.revoke(cert.serial());
        let response = ca.ocsp_respond(&request, Timestamp::new(11));
        assert_eq!(response.status(), CertificateStatus::Revoked);

        let unknown = ca.ocsp_respond(
            &OcspRequest {
                serial: 99,
                nonce: vec![],
            },
            Timestamp::new(12),
        );
        assert_eq!(unknown.status(), CertificateStatus::Unknown);
    }
}
