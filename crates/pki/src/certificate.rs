//! Certificates: the signed binding between an entity, its role and its
//! RSA public key.

use crate::{Timestamp, ValidityPeriod};
use oma_crypto::pss::PssSignature;
use oma_crypto::rsa::RsaPublicKey;
use std::fmt;

/// The role a certified entity plays in the OMA DRM 2 trust model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityRole {
    /// A Certification Authority (trust anchor).
    CertificationAuthority,
    /// A Rights Issuer.
    RightsIssuer,
    /// A DRM Agent (the trusted entity inside the user's terminal).
    DrmAgent,
}

impl EntityRole {
    /// Stable single-byte encoding used inside signed structures.
    pub fn code(&self) -> u8 {
        match self {
            EntityRole::CertificationAuthority => 0x01,
            EntityRole::RightsIssuer => 0x02,
            EntityRole::DrmAgent => 0x03,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            EntityRole::CertificationAuthority => "certification-authority",
            EntityRole::RightsIssuer => "rights-issuer",
            EntityRole::DrmAgent => "drm-agent",
        }
    }
}

impl fmt::Display for EntityRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A certificate signing request: what a device or Rights Issuer submits to
/// the CA out of band (the certification process itself is outside the scope
/// of OMA DRM, as the paper notes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateRequest {
    /// Requested subject name.
    pub subject: String,
    /// Requested role.
    pub role: EntityRole,
    /// The subject's public key.
    pub public_key: RsaPublicKey,
    /// Requested validity window.
    pub validity: ValidityPeriod,
}

/// The to-be-signed portion of a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TbsCertificate {
    /// Serial number, unique per issuer.
    pub serial: u64,
    /// Issuer (CA) name.
    pub issuer: String,
    /// Subject name.
    pub subject: String,
    /// Subject role.
    pub role: EntityRole,
    /// Subject public key.
    pub public_key: RsaPublicKey,
    /// Validity window.
    pub validity: ValidityPeriod,
}

impl TbsCertificate {
    /// Canonical byte encoding: the exact bytes the CA signs and a verifier
    /// hashes. A length-prefixed field concatenation is used instead of DER
    /// (see DESIGN.md §5).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(b"oma-drm2:certificate:v1\n");
        out.extend_from_slice(&self.serial.to_be_bytes());
        push_field(&mut out, self.issuer.as_bytes());
        push_field(&mut out, self.subject.as_bytes());
        out.push(self.role.code());
        push_field(&mut out, &self.public_key.modulus().to_bytes_be());
        push_field(&mut out, &self.public_key.exponent().to_bytes_be());
        out.extend_from_slice(&self.validity.to_bytes());
        out
    }
}

fn push_field(out: &mut Vec<u8>, field: &[u8]) {
    out.extend_from_slice(&(field.len() as u32).to_be_bytes());
    out.extend_from_slice(field);
}

/// A certificate: a [`TbsCertificate`] plus the issuer's RSA-PSS signature
/// over its canonical encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    tbs: TbsCertificate,
    signature: PssSignature,
}

impl Certificate {
    /// Assembles a certificate from its parts (used by the CA).
    pub fn new(tbs: TbsCertificate, signature: PssSignature) -> Self {
        Certificate { tbs, signature }
    }

    /// The signed fields.
    pub fn tbs(&self) -> &TbsCertificate {
        &self.tbs
    }

    /// The issuer signature.
    pub fn signature(&self) -> &PssSignature {
        &self.signature
    }

    /// Serial number.
    pub fn serial(&self) -> u64 {
        self.tbs.serial
    }

    /// Subject name.
    pub fn subject(&self) -> &str {
        &self.tbs.subject
    }

    /// Issuer name.
    pub fn issuer(&self) -> &str {
        &self.tbs.issuer
    }

    /// Subject role.
    pub fn role(&self) -> EntityRole {
        self.tbs.role
    }

    /// Subject public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.tbs.public_key
    }

    /// Validity window.
    pub fn validity(&self) -> ValidityPeriod {
        self.tbs.validity
    }

    /// Whether the certificate is valid at `at` (time window only; signature
    /// and revocation are checked by [`crate::verify`]).
    pub fn is_valid_at(&self, at: Timestamp) -> bool {
        self.tbs.validity.contains(at)
    }

    /// Size in bytes of the certificate as transferred inside ROAP messages
    /// (canonical encoding plus signature).
    pub fn encoded_len(&self) -> usize {
        self.tbs.to_bytes().len() + self.signature.len()
    }
}

/// Convenience constructor for test public keys.
#[cfg(test)]
pub(crate) fn dummy_public_key(seed: u64) -> RsaPublicKey {
    use oma_bignum::BigUint;
    // A syntactically valid key for structural tests: modulus is an odd
    // number derived from the seed. Never used for real crypto.
    let n = BigUint::from_u64(seed | 1).shl_bits(64);
    let n = &n + &BigUint::from_u64(seed.wrapping_mul(31) | 1);
    RsaPublicKey::new(n, BigUint::from_u64(65_537))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tbs(serial: u64) -> TbsCertificate {
        TbsCertificate {
            serial,
            issuer: "cmla".into(),
            subject: "device-1".into(),
            role: EntityRole::DrmAgent,
            public_key: dummy_public_key(serial),
            validity: ValidityPeriod::new(Timestamp::new(0), Timestamp::new(100)),
        }
    }

    #[test]
    fn role_codes_are_distinct() {
        let codes = [
            EntityRole::CertificationAuthority.code(),
            EntityRole::RightsIssuer.code(),
            EntityRole::DrmAgent.code(),
        ];
        assert_eq!(
            codes.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
        assert_eq!(EntityRole::DrmAgent.to_string(), "drm-agent");
    }

    #[test]
    fn canonical_encoding_changes_with_every_field() {
        let base = tbs(1).to_bytes();
        let mut other = tbs(1);
        other.subject = "device-2".into();
        assert_ne!(other.to_bytes(), base);
        let mut other = tbs(1);
        other.role = EntityRole::RightsIssuer;
        assert_ne!(other.to_bytes(), base);
        assert_ne!(tbs(2).to_bytes(), base);
        let mut other = tbs(1);
        other.validity = ValidityPeriod::new(Timestamp::new(0), Timestamp::new(101));
        assert_ne!(other.to_bytes(), base);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(tbs(7).to_bytes(), tbs(7).to_bytes());
    }

    #[test]
    fn certificate_accessors() {
        let cert = Certificate::new(tbs(5), PssSignature::from_bytes(vec![1, 2, 3]));
        assert_eq!(cert.serial(), 5);
        assert_eq!(cert.subject(), "device-1");
        assert_eq!(cert.issuer(), "cmla");
        assert_eq!(cert.role(), EntityRole::DrmAgent);
        assert!(cert.is_valid_at(Timestamp::new(50)));
        assert!(!cert.is_valid_at(Timestamp::new(101)));
        assert_eq!(cert.encoded_len(), cert.tbs().to_bytes().len() + 3);
        assert_eq!(cert.validity().not_after().seconds(), 100);
        assert!(!cert.signature().is_empty());
        assert!(cert.public_key().modulus_bits() > 0);
    }
}
