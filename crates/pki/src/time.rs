//! Simulated time: timestamps and validity periods.
//!
//! All protocol components take the "current time" as an explicit parameter
//! so that experiments are deterministic and expiry / revocation behaviour
//! can be exercised in tests without waiting.

use std::fmt;

/// A point in time, in seconds since an arbitrary epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// Creates a timestamp from seconds since the epoch.
    pub fn new(seconds: u64) -> Self {
        Timestamp(seconds)
    }

    /// Seconds since the epoch.
    pub fn seconds(&self) -> u64 {
        self.0
    }

    /// Returns this timestamp advanced by `seconds`.
    pub fn plus(&self, seconds: u64) -> Self {
        Timestamp(self.0.saturating_add(seconds))
    }

    /// Canonical byte encoding used inside signed structures.
    pub fn to_bytes(&self) -> [u8; 8] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}s", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(seconds: u64) -> Self {
        Timestamp(seconds)
    }
}

/// A `[not_before, not_after]` validity window for certificates and
/// Rights Object datetime constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValidityPeriod {
    not_before: Timestamp,
    not_after: Timestamp,
}

impl ValidityPeriod {
    /// Creates a validity period.
    ///
    /// # Panics
    ///
    /// Panics if `not_after < not_before`.
    pub fn new(not_before: Timestamp, not_after: Timestamp) -> Self {
        assert!(
            not_after >= not_before,
            "validity period ends before it begins"
        );
        ValidityPeriod {
            not_before,
            not_after,
        }
    }

    /// A period starting at `start` and lasting `duration_seconds`.
    pub fn starting_at(start: Timestamp, duration_seconds: u64) -> Self {
        Self::new(start, start.plus(duration_seconds))
    }

    /// Start of the window.
    pub fn not_before(&self) -> Timestamp {
        self.not_before
    }

    /// End of the window.
    pub fn not_after(&self) -> Timestamp {
        self.not_after
    }

    /// Whether `at` lies inside the window (inclusive on both ends).
    pub fn contains(&self, at: Timestamp) -> bool {
        at >= self.not_before && at <= self.not_after
    }

    /// Canonical byte encoding used inside signed structures.
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.not_before.to_bytes());
        out[8..].copy_from_slice(&self.not_after.to_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::new(100);
        assert_eq!(t.seconds(), 100);
        assert_eq!(t.plus(50).seconds(), 150);
        assert_eq!(Timestamp::new(u64::MAX).plus(1).seconds(), u64::MAX);
        assert_eq!(Timestamp::from(7u64).seconds(), 7);
        assert_eq!(t.to_string(), "t+100s");
    }

    #[test]
    fn validity_containment() {
        let v = ValidityPeriod::new(Timestamp::new(10), Timestamp::new(20));
        assert!(!v.contains(Timestamp::new(9)));
        assert!(v.contains(Timestamp::new(10)));
        assert!(v.contains(Timestamp::new(15)));
        assert!(v.contains(Timestamp::new(20)));
        assert!(!v.contains(Timestamp::new(21)));
    }

    #[test]
    fn starting_at_builds_expected_window() {
        let v = ValidityPeriod::starting_at(Timestamp::new(1000), 3600);
        assert_eq!(v.not_before().seconds(), 1000);
        assert_eq!(v.not_after().seconds(), 4600);
    }

    #[test]
    #[should_panic(expected = "ends before it begins")]
    fn inverted_period_panics() {
        ValidityPeriod::new(Timestamp::new(2), Timestamp::new(1));
    }

    #[test]
    fn byte_encoding_is_stable() {
        let v = ValidityPeriod::new(Timestamp::new(1), Timestamp::new(2));
        let b = v.to_bytes();
        assert_eq!(b[7], 1);
        assert_eq!(b[15], 2);
    }
}
