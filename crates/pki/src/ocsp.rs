//! Online Certificate Status Protocol (OCSP) style revocation checking.
//!
//! During ROAP registration the Rights Issuer includes "a valid OCSP response
//! for its certificate, indicating whether the certificate has been revoked"
//! (paper §2.4.1). The DRM Agent must verify that response's signature — an
//! RSA public-key operation plus hashing, which is exactly what the cost
//! model charges for it.

use crate::certificate::Certificate;
use crate::error::PkiError;
use crate::Timestamp;
use oma_crypto::pss::PssSignature;
use oma_crypto::CryptoEngine;

/// Certificate status carried in an OCSP response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CertificateStatus {
    /// The certificate is known and not revoked.
    Good,
    /// The certificate has been revoked.
    Revoked,
    /// The responder does not know the certificate.
    Unknown,
}

impl CertificateStatus {
    /// Stable single-byte encoding used inside the signed response.
    pub fn code(&self) -> u8 {
        match self {
            CertificateStatus::Good => 0x00,
            CertificateStatus::Revoked => 0x01,
            CertificateStatus::Unknown => 0x02,
        }
    }
}

/// An OCSP status request for a single certificate serial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OcspRequest {
    /// Serial of the certificate whose status is requested.
    pub serial: u64,
    /// Anti-replay nonce chosen by the requester.
    pub nonce: Vec<u8>,
}

/// The signed portion of an OCSP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TbsOcspResponse {
    /// Name of the responder (the CA).
    pub responder: String,
    /// Serial the response covers.
    pub serial: u64,
    /// Status of that serial.
    pub status: CertificateStatus,
    /// When the response was produced.
    pub produced_at: Timestamp,
    /// Echo of the request nonce.
    pub nonce: Vec<u8>,
}

impl TbsOcspResponse {
    /// Canonical byte encoding (the bytes that are signed and hashed).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.nonce.len());
        out.extend_from_slice(b"oma-drm2:ocsp:v1\n");
        out.extend_from_slice(&(self.responder.len() as u32).to_be_bytes());
        out.extend_from_slice(self.responder.as_bytes());
        out.extend_from_slice(&self.serial.to_be_bytes());
        out.push(self.status.code());
        out.extend_from_slice(&self.produced_at.to_bytes());
        out.extend_from_slice(&(self.nonce.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.nonce);
        out
    }
}

/// A signed OCSP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OcspResponse {
    tbs: TbsOcspResponse,
    signature: PssSignature,
}

impl OcspResponse {
    /// Assembles a response from its parts (used by the responder).
    pub fn new(tbs: TbsOcspResponse, signature: PssSignature) -> Self {
        OcspResponse { tbs, signature }
    }

    /// The signed fields.
    pub fn tbs(&self) -> &TbsOcspResponse {
        &self.tbs
    }

    /// The responder's signature.
    pub fn signature(&self) -> &PssSignature {
        &self.signature
    }

    /// Status carried by the response.
    pub fn status(&self) -> CertificateStatus {
        self.tbs.status
    }

    /// Serial the response covers.
    pub fn serial(&self) -> u64 {
        self.tbs.serial
    }

    /// Size in bytes as carried inside ROAP messages.
    pub fn encoded_len(&self) -> usize {
        self.tbs.to_bytes().len() + self.signature.len()
    }

    /// Verifies this response against a certificate and the CA trust anchor.
    ///
    /// Checks, in order: the responder signature (one RSA public-key
    /// operation through `engine`), that the response covers `certificate`'s
    /// serial, the nonce echo when `expected_nonce` is provided, freshness
    /// within `max_age_seconds` of `now`, and finally that the status is
    /// [`CertificateStatus::Good`].
    ///
    /// # Errors
    ///
    /// Returns the corresponding [`PkiError`] for the first failing check.
    pub fn verify(
        &self,
        engine: &CryptoEngine,
        certificate: &Certificate,
        ca_root: &Certificate,
        expected_nonce: Option<&[u8]>,
        now: Timestamp,
        max_age_seconds: u64,
    ) -> Result<(), PkiError> {
        if !engine.pss_verify(ca_root.public_key(), &self.tbs.to_bytes(), &self.signature) {
            return Err(PkiError::BadOcspSignature);
        }
        if self.tbs.serial != certificate.serial() {
            return Err(PkiError::OcspSerialMismatch);
        }
        if let Some(nonce) = expected_nonce {
            if nonce != self.tbs.nonce.as_slice() {
                return Err(PkiError::OcspNonceMismatch);
            }
        }
        if self.tbs.produced_at > now
            || now.seconds() - self.tbs.produced_at.seconds() > max_age_seconds
        {
            return Err(PkiError::OcspResponseStale);
        }
        match self.tbs.status {
            CertificateStatus::Good => Ok(()),
            CertificateStatus::Revoked | CertificateStatus::Unknown => {
                Err(PkiError::CertificateRevoked)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::CertificationAuthority;
    use crate::certificate::EntityRole;
    use crate::ValidityPeriod;
    use oma_crypto::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        ca: CertificationAuthority,
        cert: Certificate,
        engine: CryptoEngine,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(21);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let keys = RsaKeyPair::generate(384, &mut rng);
        let cert = ca.issue(
            "ri",
            EntityRole::RightsIssuer,
            keys.public().clone(),
            ValidityPeriod::new(Timestamp::new(0), Timestamp::new(10_000)),
        );
        Fixture {
            ca,
            cert,
            engine: CryptoEngine::with_seed(1),
        }
    }

    #[test]
    fn good_response_verifies() {
        let f = fixture();
        let req = OcspRequest {
            serial: f.cert.serial(),
            nonce: vec![9, 9],
        };
        let resp = f.ca.ocsp_respond(&req, Timestamp::new(100));
        assert!(resp
            .verify(
                &f.engine,
                &f.cert,
                f.ca.root_certificate(),
                Some(&[9, 9]),
                Timestamp::new(120),
                3600
            )
            .is_ok());
        assert!(resp.encoded_len() > 0);
        assert_eq!(resp.serial(), f.cert.serial());
    }

    #[test]
    fn revoked_certificate_rejected() {
        let mut f = fixture();
        f.ca.revoke(f.cert.serial());
        let req = OcspRequest {
            serial: f.cert.serial(),
            nonce: vec![],
        };
        let resp = f.ca.ocsp_respond(&req, Timestamp::new(100));
        assert_eq!(
            resp.verify(
                &f.engine,
                &f.cert,
                f.ca.root_certificate(),
                None,
                Timestamp::new(120),
                3600
            ),
            Err(PkiError::CertificateRevoked)
        );
    }

    #[test]
    fn nonce_mismatch_rejected() {
        let f = fixture();
        let req = OcspRequest {
            serial: f.cert.serial(),
            nonce: vec![1],
        };
        let resp = f.ca.ocsp_respond(&req, Timestamp::new(100));
        assert_eq!(
            resp.verify(
                &f.engine,
                &f.cert,
                f.ca.root_certificate(),
                Some(&[2]),
                Timestamp::new(120),
                3600
            ),
            Err(PkiError::OcspNonceMismatch)
        );
    }

    #[test]
    fn stale_response_rejected() {
        let f = fixture();
        let req = OcspRequest {
            serial: f.cert.serial(),
            nonce: vec![],
        };
        let resp = f.ca.ocsp_respond(&req, Timestamp::new(100));
        assert_eq!(
            resp.verify(
                &f.engine,
                &f.cert,
                f.ca.root_certificate(),
                None,
                Timestamp::new(100_000),
                3600
            ),
            Err(PkiError::OcspResponseStale)
        );
        // A response "from the future" is also rejected.
        assert_eq!(
            resp.verify(
                &f.engine,
                &f.cert,
                f.ca.root_certificate(),
                None,
                Timestamp::new(50),
                3600
            ),
            Err(PkiError::OcspResponseStale)
        );
    }

    #[test]
    fn serial_mismatch_and_tampered_signature_rejected() {
        let mut f = fixture();
        let other = {
            let keys = RsaKeyPair::generate(384, &mut StdRng::seed_from_u64(22));
            f.ca.issue(
                "other",
                EntityRole::DrmAgent,
                keys.public().clone(),
                ValidityPeriod::new(Timestamp::new(0), Timestamp::new(10_000)),
            )
        };
        let req = OcspRequest {
            serial: other.serial(),
            nonce: vec![],
        };
        let resp = f.ca.ocsp_respond(&req, Timestamp::new(100));
        assert_eq!(
            resp.verify(
                &f.engine,
                &f.cert,
                f.ca.root_certificate(),
                None,
                Timestamp::new(120),
                3600
            ),
            Err(PkiError::OcspSerialMismatch)
        );

        // Tamper with the signed bytes.
        let mut tbs = resp.tbs().clone();
        tbs.status = CertificateStatus::Good;
        tbs.serial = f.cert.serial();
        let forged = OcspResponse::new(tbs, resp.signature().clone());
        assert_eq!(
            forged.verify(
                &f.engine,
                &f.cert,
                f.ca.root_certificate(),
                None,
                Timestamp::new(120),
                3600
            ),
            Err(PkiError::BadOcspSignature)
        );
    }

    #[test]
    fn status_codes_distinct() {
        assert_ne!(
            CertificateStatus::Good.code(),
            CertificateStatus::Revoked.code()
        );
        assert_ne!(
            CertificateStatus::Revoked.code(),
            CertificateStatus::Unknown.code()
        );
    }
}
