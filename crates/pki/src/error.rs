//! PKI error type.

use std::error::Error;
use std::fmt;

/// Errors reported while issuing or verifying certificates and OCSP
/// responses.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PkiError {
    /// The certificate signature did not verify under the issuer key.
    BadCertificateSignature,
    /// The certificate is outside its validity period.
    CertificateExpired,
    /// The certificate issuer does not match the provided trust anchor.
    UnknownIssuer,
    /// The trust anchor is not a CA certificate.
    NotACertificationAuthority,
    /// The OCSP response signature did not verify.
    BadOcspSignature,
    /// The OCSP response reports the certificate as revoked.
    CertificateRevoked,
    /// The OCSP response covers a different certificate serial.
    OcspSerialMismatch,
    /// The OCSP response nonce does not match the request nonce.
    OcspNonceMismatch,
    /// The OCSP response is too old to be trusted.
    OcspResponseStale,
    /// An underlying cryptographic failure.
    Crypto(oma_crypto::CryptoError),
}

impl fmt::Display for PkiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PkiError::BadCertificateSignature => write!(f, "certificate signature invalid"),
            PkiError::CertificateExpired => write!(f, "certificate outside validity period"),
            PkiError::UnknownIssuer => write!(f, "certificate issuer is not the trust anchor"),
            PkiError::NotACertificationAuthority => {
                write!(
                    f,
                    "trust anchor is not a certification authority certificate"
                )
            }
            PkiError::BadOcspSignature => write!(f, "ocsp response signature invalid"),
            PkiError::CertificateRevoked => write!(f, "certificate revoked"),
            PkiError::OcspSerialMismatch => write!(f, "ocsp response covers a different serial"),
            PkiError::OcspNonceMismatch => write!(f, "ocsp response nonce mismatch"),
            PkiError::OcspResponseStale => write!(f, "ocsp response too old"),
            PkiError::Crypto(e) => write!(f, "cryptographic failure: {e}"),
        }
    }
}

impl Error for PkiError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PkiError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<oma_crypto::CryptoError> for PkiError {
    fn from(e: oma_crypto::CryptoError) -> Self {
        PkiError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(!PkiError::CertificateRevoked.to_string().is_empty());
        let wrapped = PkiError::from(oma_crypto::CryptoError::InvalidPadding);
        assert!(wrapped.to_string().contains("padding"));
        assert!(wrapped.source().is_some());
        assert!(PkiError::CertificateExpired.source().is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<PkiError>();
    }
}
