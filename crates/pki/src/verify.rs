//! Certificate verification entry points used by the DRM layer.

use crate::certificate::{Certificate, EntityRole};
use crate::error::PkiError;
use crate::Timestamp;
use oma_crypto::CryptoEngine;

/// Verifies `certificate` against the `trust_anchor` (a CA root certificate)
/// at time `now`.
///
/// The checks performed, in order:
///
/// 1. the trust anchor carries the [`EntityRole::CertificationAuthority`] role,
/// 2. the certificate names the trust anchor as its issuer,
/// 3. the issuer's RSA-PSS signature over the canonical encoding verifies
///    (this is the RSA public-key operation + hashing the cost model charges
///    for certificate validation),
/// 4. the certificate is inside its validity window at `now`.
///
/// Revocation is *not* checked here — that is the job of the OCSP response
/// ([`crate::ocsp::OcspResponse::verify`]), matching the structure of the
/// standard where OCSP responses travel separately inside ROAP messages.
///
/// # Errors
///
/// Returns the [`PkiError`] corresponding to the first failing check.
pub fn verify_certificate(
    engine: &CryptoEngine,
    certificate: &Certificate,
    trust_anchor: &Certificate,
    now: Timestamp,
) -> Result<(), PkiError> {
    check_anchor_and_issuer(certificate, trust_anchor)?;
    if !engine.pss_verify(
        trust_anchor.public_key(),
        &certificate.tbs().to_bytes(),
        certificate.signature(),
    ) {
        return Err(PkiError::BadCertificateSignature);
    }
    check_validity(certificate, now)
}

/// The anchor/issuer policy half of [`verify_certificate`] (checks 1 and 2):
/// the trust anchor must be a CA and must be the certificate's named issuer.
///
/// Split out so callers that memoize the (expensive, time-independent)
/// signature check can still run the cheap policy checks on every call.
///
/// # Errors
///
/// Returns the [`PkiError`] corresponding to the first failing check.
pub fn check_anchor_and_issuer(
    certificate: &Certificate,
    trust_anchor: &Certificate,
) -> Result<(), PkiError> {
    if trust_anchor.role() != EntityRole::CertificationAuthority {
        return Err(PkiError::NotACertificationAuthority);
    }
    if certificate.issuer() != trust_anchor.subject() {
        return Err(PkiError::UnknownIssuer);
    }
    Ok(())
}

/// The validity-window half of [`verify_certificate`] (check 4). Depends on
/// `now`, so it must never be cached alongside the signature verdict.
///
/// # Errors
///
/// Returns [`PkiError::CertificateExpired`] when `now` is outside the window.
pub fn check_validity(certificate: &Certificate, now: Timestamp) -> Result<(), PkiError> {
    if !certificate.is_valid_at(now) {
        return Err(PkiError::CertificateExpired);
    }
    Ok(())
}

/// Verifies a two-element chain: an end-entity certificate and its issuing
/// root, checking the root's self-signature as well.
///
/// # Errors
///
/// Same as [`verify_certificate`], applied to both links.
pub fn verify_chain(
    engine: &CryptoEngine,
    certificate: &Certificate,
    trust_anchor: &Certificate,
    now: Timestamp,
) -> Result<(), PkiError> {
    // Root self-signature.
    verify_certificate(engine, trust_anchor, trust_anchor, now)?;
    verify_certificate(engine, certificate, trust_anchor, now)
}

/// Verifies that `certificate` belongs to `expected_role` in addition to the
/// checks of [`verify_certificate`]. Used by the DRM Agent to insist that the
/// peer it registers with really is a Rights Issuer.
///
/// # Errors
///
/// Returns [`PkiError::UnknownIssuer`] if the role does not match, or any
/// error from [`verify_certificate`].
pub fn verify_certificate_role(
    engine: &CryptoEngine,
    certificate: &Certificate,
    trust_anchor: &Certificate,
    expected_role: EntityRole,
    now: Timestamp,
) -> Result<(), PkiError> {
    verify_certificate(engine, certificate, trust_anchor, now)?;
    if certificate.role() != expected_role {
        return Err(PkiError::UnknownIssuer);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::CertificationAuthority;
    use crate::ValidityPeriod;
    use oma_crypto::pss::PssSignature;
    use oma_crypto::rsa::RsaKeyPair;
    use oma_crypto::Algorithm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (CertificationAuthority, Certificate, CryptoEngine) {
        let mut rng = StdRng::seed_from_u64(31);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let keys = RsaKeyPair::generate(384, &mut rng);
        let cert = ca.issue(
            "agent-1",
            EntityRole::DrmAgent,
            keys.public().clone(),
            ValidityPeriod::new(Timestamp::new(10), Timestamp::new(1000)),
        );
        (ca, cert, CryptoEngine::with_seed(5))
    }

    #[test]
    fn valid_certificate_verifies_and_records_rsa_public_op() {
        let (ca, cert, engine) = setup();
        assert!(
            verify_certificate(&engine, &cert, ca.root_certificate(), Timestamp::new(500)).is_ok()
        );
        let trace = engine.trace();
        assert_eq!(trace.count(Algorithm::RsaPublic).invocations, 1);
        assert!(trace.count(Algorithm::Sha1).blocks > 0);
    }

    #[test]
    fn expired_and_not_yet_valid_rejected() {
        let (ca, cert, engine) = setup();
        assert_eq!(
            verify_certificate(&engine, &cert, ca.root_certificate(), Timestamp::new(5)),
            Err(PkiError::CertificateExpired)
        );
        assert_eq!(
            verify_certificate(&engine, &cert, ca.root_certificate(), Timestamp::new(2000)),
            Err(PkiError::CertificateExpired)
        );
    }

    #[test]
    fn forged_signature_rejected() {
        let (ca, cert, engine) = setup();
        let forged = Certificate::new(
            cert.tbs().clone(),
            PssSignature::from_bytes(vec![0u8; cert.signature().len()]),
        );
        assert_eq!(
            verify_certificate(&engine, &forged, ca.root_certificate(), Timestamp::new(500)),
            Err(PkiError::BadCertificateSignature)
        );
    }

    #[test]
    fn wrong_issuer_and_wrong_anchor_rejected() {
        let (_ca, cert, engine) = setup();
        let mut rng = StdRng::seed_from_u64(32);
        let other_ca = CertificationAuthority::new("other-ca", 384, &mut rng);
        assert_eq!(
            verify_certificate(
                &engine,
                &cert,
                other_ca.root_certificate(),
                Timestamp::new(500)
            ),
            Err(PkiError::UnknownIssuer)
        );
        // Using a non-CA certificate as anchor is refused outright.
        assert_eq!(
            verify_certificate(&engine, &cert, &cert, Timestamp::new(500)),
            Err(PkiError::NotACertificationAuthority)
        );
    }

    #[test]
    fn role_check_enforced() {
        let (ca, cert, engine) = setup();
        assert!(verify_certificate_role(
            &engine,
            &cert,
            ca.root_certificate(),
            EntityRole::DrmAgent,
            Timestamp::new(500)
        )
        .is_ok());
        assert_eq!(
            verify_certificate_role(
                &engine,
                &cert,
                ca.root_certificate(),
                EntityRole::RightsIssuer,
                Timestamp::new(500)
            ),
            Err(PkiError::UnknownIssuer)
        );
    }

    #[test]
    fn chain_verification_includes_root() {
        let (ca, cert, engine) = setup();
        assert!(verify_chain(&engine, &cert, ca.root_certificate(), Timestamp::new(500)).is_ok());
        // Two signature verifications: root self-signature + end entity.
        assert_eq!(engine.trace().count(Algorithm::RsaPublic).invocations, 2);
    }
}
