//! A simplified Public Key Infrastructure for the OMA DRM 2 trust model.
//!
//! OMA DRM 2 bases all trust on PKI certificates issued by a Certification
//! Authority (the paper names the CMLA as the first real-world CA). Rights
//! Issuers and DRM Agents each hold a certificate; during ROAP registration
//! both sides verify the peer certificate and the Rights Issuer additionally
//! presents an OCSP response proving its certificate has not been revoked.
//!
//! This crate models that machinery with structured Rust types instead of
//! X.509/DER and RFC 2560 wire formats (see DESIGN.md §5 — the paper's cost
//! model only counts the cryptographic operations, which are identical:
//! RSA-PSS signature generation/verification and hashing of the signed
//! structures).
//!
//! * [`Certificate`] / [`CertificateRequest`] — subject identity, role,
//!   public key, validity window, issuer signature,
//! * [`CertificationAuthority`] — issues device / Rights Issuer certificates
//!   and operates revocation,
//! * [`ocsp`] — OCSP-style signed certificate-status responses with nonces,
//! * [`verify`] — chain and validity verification entry points used by the
//!   DRM layer.
//!
//! # Example
//!
//! ```
//! use oma_pki::{CertificationAuthority, EntityRole, Timestamp, ValidityPeriod};
//! use oma_crypto::{rsa::RsaKeyPair, CryptoEngine};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut ca = CertificationAuthority::new("CMLA-Test", 384, &mut rng);
//! let device_keys = RsaKeyPair::generate(384, &mut rng);
//! let cert = ca.issue(
//!     "device-001",
//!     EntityRole::DrmAgent,
//!     device_keys.public().clone(),
//!     ValidityPeriod::new(Timestamp::new(0), Timestamp::new(1_000_000)),
//! );
//! let engine = CryptoEngine::with_seed(1);
//! oma_pki::verify::verify_certificate(&engine, &cert, ca.root_certificate(), Timestamp::new(10))?;
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod authority;
mod certificate;
mod error;
pub mod ocsp;
mod time;
pub mod verify;

pub use authority::CertificationAuthority;
pub use certificate::{Certificate, CertificateRequest, EntityRole, TbsCertificate};
pub use error::PkiError;
pub use time::{Timestamp, ValidityPeriod};
