//! A model-checking-style explorer for the ROAP session machines.
//!
//! The codebase is deterministic end to end: every random draw comes from a
//! seeded engine, and [`RiService::state_image`] /
//! [`RiService::from_image`] round-trip the *entire* service — tables and
//! random stream — byte-exactly. This crate exploits that determinism the
//! way a model checker would: [`explore`] drives N concurrent device
//! sessions against one service and enumerates, depth-first, every
//! interleaving of message deliveries the schedule budget allows, plus
//! message **duplication**, **drop** and **reorder** faults. After every
//! delivery the service's observable state is checked against the typed
//! reference model ([`RiSessionState`]) and two protocol invariants:
//!
//! * **no-duplicate-RO-id** — no two `RoResponse`s in a trace ever carry
//!   the same Rights-Object id, no matter how requests are replayed or
//!   interleaved;
//! * **replay protection** — a `RegistrationRequest` delivered twice must
//!   yield a `RegistrationResponse` at most once; the second delivery is
//!   answered `UnknownSession`.
//!
//! States are hashed (service image digest + device model states + network
//! buffer) and revisits pruned, so the explorer covers the reachable state
//! space instead of the trace tree. When an invariant fails, the full
//! action trace from the initial state is reported as a counterexample.
//!
//! The sibling [`fuzz`] module attacks the same machines from the other
//! side: a corpus of syntactically valid but semantically wrong PDUs, each
//! asserting the specific [`RoapStatus`] the server must answer.
//!
//! [`RiService::state_image`]: oma_drm::RiService::state_image
//! [`RiService::from_image`]: oma_drm::RiService::from_image
//! [`RoapStatus`]: oma_drm::wire::RoapStatus

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;

use oma_crypto::rsa::RsaKeyPair;
use oma_crypto::sha1::{Sha1, DIGEST_SIZE};
use oma_crypto::CryptoEngine;
use oma_drm::roap::{DeviceHello, RegistrationRequest, RoRequest, NONCE_LEN};
use oma_drm::session::{PduKind, RiSessionState};
use oma_drm::wire::{RoapPdu, RoapStatus};
use oma_drm::{ContentIssuer, Permission, RiService, RightsTemplate, RoapError};
use oma_pki::{Certificate, CertificationAuthority, EntityRole, Timestamp, ValidityPeriod};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::fmt;
use std::time::{Duration, Instant};

/// RSA modulus size of the explorer's throwaway identities — small keys
/// keep state expansion fast; the protocol logic under test is key-size
/// independent.
const BITS: usize = 384;

/// The fixed protocol timestamp of every explored exchange (certificates
/// are valid and OCSP responses fresh at this instant).
const NOW: u64 = 1_000;

/// Content id every device acquires rights for.
const CONTENT_ID: &str = "cid:explore";

/// Which fault classes the scheduler may inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Faults {
    /// Deliver a frame and keep it in the network for a later replay.
    pub duplicate: bool,
    /// Remove a frame without delivering it (the device retries with a
    /// fresh nonce).
    pub drop: bool,
    /// Deliver buffered frames in any order. When off, the network is a
    /// global FIFO queue and only scheduling interleavings are explored.
    pub reorder: bool,
}

impl Faults {
    /// All fault classes on — the CI configuration.
    pub fn all() -> Faults {
        Faults {
            duplicate: true,
            drop: true,
            reorder: true,
        }
    }

    /// No faults: pure scheduling interleavings.
    pub fn none() -> Faults {
        Faults {
            duplicate: false,
            drop: false,
            reorder: false,
        }
    }
}

impl fmt::Display for Faults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        if self.reorder {
            names.push("reorder");
        }
        if self.duplicate {
            names.push("duplicate");
        }
        if self.drop {
            names.push("drop");
        }
        if names.is_empty() {
            names.push("none");
        }
        f.write_str(&names.join("+"))
    }
}

/// Parameters of one exploration run.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Number of concurrent device sessions.
    pub sessions: usize,
    /// Seed of the world (service identity, device keys, nonces).
    pub seed: u64,
    /// Fault classes the scheduler may inject.
    pub faults: Faults,
    /// RO acquisitions per device after registration.
    pub acquisitions: usize,
    /// Maximum actions along one trace (DFS depth bound).
    pub max_depth: usize,
    /// Total state budget: exploration stops expanding once this many
    /// states have been visited.
    pub max_states: u64,
    /// Wall-clock budget; exploration stops expanding once exceeded.
    pub time_budget: Duration,
}

impl ExploreConfig {
    /// The CI smoke configuration: 3 sessions × all fault classes under a
    /// small deterministic budget.
    pub fn smoke() -> ExploreConfig {
        ExploreConfig {
            sessions: 3,
            seed: 42,
            faults: Faults::all(),
            acquisitions: 1,
            max_depth: 40,
            max_states: 20_000,
            time_budget: Duration::from_secs(30),
        }
    }
}

/// One invariant violation, with the action trace that reaches it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: String,
    /// What exactly went wrong.
    pub detail: String,
    /// The counterexample: every scheduler action from the initial state.
    pub trace: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "invariant violated: {}", self.invariant)?;
        writeln!(f, "  {}", self.detail)?;
        writeln!(f, "  counterexample ({} steps):", self.trace.len())?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "    {i:>3}. {step}")?;
        }
        Ok(())
    }
}

/// The outcome of one exploration run.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// States visited (actions applied), including revisits that were then
    /// pruned.
    pub states_explored: u64,
    /// Distinct states by digest.
    pub distinct_states: u64,
    /// Revisited states cut by the hash prune.
    pub pruned: u64,
    /// Traces that ran to quiescence (all scripts done, network empty).
    pub completed_traces: u64,
    /// Deepest trace reached.
    pub max_depth_reached: usize,
    /// Whether a budget (states, depth or time) truncated the search.
    pub truncated: bool,
    /// Invariant violations found (empty on a healthy protocol).
    pub violations: Vec<Violation>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl ExploreReport {
    /// States visited per second — the `session` group's bench metric.
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.states_explored as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for ExploreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "explored {} states ({} distinct, {} pruned) in {:.2?} — {:.0} states/s",
            self.states_explored,
            self.distinct_states,
            self.pruned,
            self.elapsed,
            self.states_per_sec(),
        )?;
        writeln!(
            f,
            "completed traces: {}, max depth: {}, truncated: {}",
            self.completed_traces, self.max_depth_reached, self.truncated
        )?;
        if self.violations.is_empty() {
            writeln!(f, "no invariant violations")?;
        } else {
            for v in &self.violations {
                write!(f, "{v}")?;
            }
        }
        Ok(())
    }
}

/// A device identity the explorer drives directly (keys, certificate and
/// nonces are explorer-owned, so frame construction is a pure function of
/// the node state — no hidden RNG).
struct Device {
    id: String,
    keys: RsaKeyPair,
    certificate: Certificate,
}

/// The per-device protocol script: registration followed by a number of
/// acquisitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Hello,
    Register,
    Acquire(usize),
}

/// Mutable per-device exploration state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DeviceNode {
    /// Next script step to send.
    script_pos: usize,
    /// Rebuild counter: bumped on drops and rejected exchanges so retried
    /// frames carry fresh nonces.
    attempt: u32,
    /// Whether a frame of this device is in flight (yet undelivered).
    waiting: bool,
    /// The newest session id the device has been challenged with.
    latest_session: Option<u64>,
    /// Reference-model state mirroring `service.session_state(device)`.
    model: RiSessionState,
}

/// One frame in the network buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Frame {
    /// Monotonic send sequence (FIFO order when reorder is off).
    seq: u64,
    device: usize,
    kind: PduKind,
    /// Session id a registration frame targets (0 otherwise).
    session_id: u64,
    bytes: Vec<u8>,
    /// True once the frame was delivered and retained as a replay ghost.
    replayed: bool,
}

/// A scheduler action.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Action {
    /// Device builds and enqueues its next request.
    Send(usize),
    /// Deliver frame (by buffer index) and remove it.
    Deliver(usize),
    /// Deliver frame and keep it as a replay ghost (duplication fault).
    Duplicate(usize),
    /// Remove frame without delivering (drop fault).
    Drop(usize),
}

/// Everything that varies along a trace.
#[derive(Clone)]
struct Node {
    devices: Vec<DeviceNode>,
    network: Vec<Frame>,
    next_seq: u64,
    /// RO ids observed across the trace (no-duplicate-RO-id invariant).
    ro_ids: Vec<String>,
}

struct Explorer {
    service: RiService,
    devices: Vec<Device>,
    config: ExploreConfig,
    visited: HashSet<[u8; DIGEST_SIZE]>,
    script: Vec<Step>,
    trace: Vec<String>,
    report: ExploreReport,
    started: Instant,
}

/// Runs one bounded exploration and reports what was covered and whether
/// any invariant broke.
pub fn explore(config: &ExploreConfig) -> ExploreReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ca = CertificationAuthority::new("cmla", BITS, &mut rng);
    let service = RiService::new("ri.explore", BITS, &mut ca, &mut rng);
    let ci = ContentIssuer::new("ci.explore");
    let (dcf, cek) = ci.package(b"explored content payload", CONTENT_ID, &mut rng);
    service.add_content(
        CONTENT_ID,
        cek,
        &dcf,
        RightsTemplate::unlimited(Permission::Play),
    );
    let devices: Vec<Device> = (0..config.sessions)
        .map(|i| {
            let id = format!("dev-{i:02}");
            let keys = RsaKeyPair::generate(BITS, &mut rng);
            let certificate = ca.issue(
                &id,
                EntityRole::DrmAgent,
                keys.public().clone(),
                ValidityPeriod::starting_at(Timestamp::new(0), 1_000_000),
            );
            Device {
                id,
                keys,
                certificate,
            }
        })
        .collect();

    let mut script = vec![Step::Hello, Step::Register];
    for k in 0..config.acquisitions {
        script.push(Step::Acquire(k));
    }

    let mut explorer = Explorer {
        service,
        devices,
        config: config.clone(),
        visited: HashSet::new(),
        script,
        trace: Vec::new(),
        report: ExploreReport {
            states_explored: 0,
            distinct_states: 0,
            pruned: 0,
            completed_traces: 0,
            max_depth_reached: 0,
            truncated: false,
            violations: Vec::new(),
            elapsed: Duration::ZERO,
        },
        started: Instant::now(),
    };

    let root = Node {
        devices: vec![
            DeviceNode {
                script_pos: 0,
                attempt: 0,
                waiting: false,
                latest_session: None,
                model: RiSessionState::Idle,
            };
            config.sessions
        ],
        network: Vec::new(),
        next_seq: 0,
        ro_ids: Vec::new(),
    };
    explorer.dfs(&root, 0);
    explorer.report.elapsed = explorer.started.elapsed();
    explorer.report
}

impl Explorer {
    fn budget_left(&self) -> bool {
        self.report.states_explored < self.config.max_states
            && self.started.elapsed() < self.config.time_budget
            && self.report.violations.is_empty()
    }

    /// Deterministic engine for one frame build: nonces and PSS salts are
    /// pure functions of (seed, device, step, attempt).
    fn build_engine(&self, device: usize, step: usize, attempt: u32) -> CryptoEngine {
        let mix = self
            .config
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((device as u64) << 40)
            .wrapping_add((step as u64) << 20)
            .wrapping_add(attempt as u64);
        CryptoEngine::with_seed(mix)
    }

    /// The enabled actions at `node`, in a deterministic order.
    fn enabled(&self, node: &Node) -> Vec<Action> {
        let mut actions = Vec::new();
        for (d, dev) in node.devices.iter().enumerate() {
            if !dev.waiting && dev.script_pos < self.script.len() {
                // Registration needs a challenge in hand; the hello step
                // provides it.
                actions.push(Action::Send(d));
            }
        }
        let deliverable: Vec<usize> = if self.config.faults.reorder {
            (0..node.network.len()).collect()
        } else {
            // FIFO network: only the oldest buffered frame may move.
            node.network
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.seq)
                .map(|(i, _)| vec![i])
                .unwrap_or_default()
        };
        for i in deliverable {
            let frame = &node.network[i];
            actions.push(Action::Deliver(i));
            if self.config.faults.duplicate && !frame.replayed {
                actions.push(Action::Duplicate(i));
            }
            if self.config.faults.drop && !frame.replayed {
                actions.push(Action::Drop(i));
            }
        }
        actions
    }

    fn dfs(&mut self, node: &Node, depth: usize) {
        self.report.max_depth_reached = self.report.max_depth_reached.max(depth);
        let actions = self.enabled(node);
        if actions.is_empty() {
            self.report.completed_traces += 1;
            return;
        }
        if depth >= self.config.max_depth {
            self.report.truncated = true;
            return;
        }
        // The service image at this node: children mutate the live service
        // and restore from this snapshot afterwards.
        let image = self.service.state_image();
        for action in actions {
            if !self.budget_left() {
                self.report.truncated = true;
                return;
            }
            let mut child = node.clone();
            let label = self.apply(&mut child, &action);
            self.trace.push(label);
            self.report.states_explored += 1;
            let digest = self.digest(&child);
            if self.visited.insert(digest) {
                self.report.distinct_states += 1;
                self.dfs(&child, depth + 1);
            } else {
                self.report.pruned += 1;
            }
            self.trace.pop();
            // Restore the service to this node's snapshot before trying the
            // next sibling action.
            self.service = RiService::from_image(image.clone());
        }
    }

    /// Applies `action` to the live service and `node`, returning the
    /// human-readable trace label. Invariant violations are recorded on
    /// `self.report`.
    fn apply(&mut self, node: &mut Node, action: &Action) -> String {
        match *action {
            Action::Send(d) => {
                let dev = &node.devices[d];
                let step = self.script[dev.script_pos];
                let frame = self.build_frame(d, dev, step);
                let label = format!(
                    "send    {} {} (attempt {})",
                    self.devices[d].id, frame.kind, dev.attempt
                );
                let mut frame = frame;
                frame.seq = node.next_seq;
                node.next_seq += 1;
                node.devices[d].waiting = true;
                node.network.push(frame);
                label
            }
            Action::Deliver(i) => {
                let frame = node.network.remove(i);
                self.deliver(node, frame, false)
            }
            Action::Duplicate(i) => {
                let mut ghost = node.network[i].clone();
                let label = {
                    let frame = node.network.remove(i);
                    self.deliver(node, frame, true)
                };
                ghost.replayed = true;
                node.network.push(ghost);
                label
            }
            Action::Drop(i) => {
                let frame = node.network.remove(i);
                let dev = &mut node.devices[frame.device];
                // The device gives up on the lost exchange and will rebuild
                // the same step with a fresh nonce.
                dev.waiting = false;
                dev.attempt += 1;
                format!("drop    {} {}", self.devices[frame.device].id, frame.kind)
            }
        }
    }

    /// Builds the request frame for `step` of device `d` from the device's
    /// current knowledge.
    fn build_frame(&self, d: usize, dev: &DeviceNode, step: Step) -> Frame {
        let device = &self.devices[d];
        let engine = self.build_engine(d, dev.script_pos, dev.attempt);
        let now = Timestamp::new(NOW);
        match step {
            Step::Hello => Frame {
                seq: 0,
                device: d,
                kind: PduKind::DeviceHello,
                session_id: 0,
                bytes: RoapPdu::DeviceHello(DeviceHello::new(&device.id)).encode(),
                replayed: false,
            },
            Step::Register => {
                let session_id = dev
                    .latest_session
                    .expect("script orders hello before registration");
                let device_nonce = engine.random_nonce(NONCE_LEN);
                let signed = RegistrationRequest::signed_bytes(
                    session_id,
                    &device.id,
                    &device_nonce,
                    now,
                    &device.certificate,
                );
                let signature = engine
                    .pss_sign(device.keys.private(), &signed)
                    .expect("explorer keys sign");
                let request = RegistrationRequest {
                    session_id,
                    device_id: device.id.clone(),
                    device_nonce,
                    request_time: now,
                    certificate: device.certificate.clone(),
                    signature,
                };
                Frame {
                    seq: 0,
                    device: d,
                    kind: PduKind::RegistrationRequest,
                    session_id,
                    bytes: RoapPdu::RegistrationRequest(request).encode(),
                    replayed: false,
                }
            }
            Step::Acquire(_) => {
                let device_nonce = engine.random_nonce(NONCE_LEN);
                let signed = RoRequest::signed_bytes(
                    &device.id,
                    "ri.explore",
                    CONTENT_ID,
                    None,
                    &device_nonce,
                    now,
                );
                let signature = engine
                    .pss_sign(device.keys.private(), &signed)
                    .expect("explorer keys sign");
                let request = RoRequest {
                    device_id: device.id.clone(),
                    ri_id: "ri.explore".to_string(),
                    content_id: CONTENT_ID.to_string(),
                    domain_id: None,
                    device_nonce,
                    request_time: now,
                    signature,
                };
                Frame {
                    seq: 0,
                    device: d,
                    kind: PduKind::RoRequest,
                    session_id: 0,
                    bytes: RoapPdu::RoRequest(request).encode(),
                    replayed: false,
                }
            }
        }
    }

    /// Delivers `frame` to the service and checks the response against the
    /// reference model. `keep` marks a duplication fault (the caller
    /// retains a ghost copy).
    fn deliver(&mut self, node: &mut Node, frame: Frame, keep: bool) -> String {
        let device_name = self.devices[frame.device].id.clone();
        let mode = if frame.replayed {
            " [replay]"
        } else if keep {
            " [duplicate]"
        } else {
            ""
        };
        let label = format!("deliver {} {}{}", device_name, frame.kind, mode);

        // The reference model's verdict, computed before touching the
        // service.
        let dev = &node.devices[frame.device];
        let expected: Result<RiSessionState, RoapError> = match frame.kind {
            PduKind::DeviceHello => dev.model.step(PduKind::DeviceHello),
            PduKind::RegistrationRequest => {
                if dev.model.challenge_pending() && dev.latest_session == Some(frame.session_id) {
                    dev.model.step(PduKind::RegistrationRequest)
                } else {
                    // Stale or replayed pass 3: the challenge it answers is
                    // gone (consumed or superseded).
                    Err(RoapError::UnknownSession)
                }
            }
            other => dev.model.step(other),
        };

        let response_bytes = self.service.dispatch_at(&frame.bytes, Timestamp::new(NOW));
        let response = RoapPdu::decode(&response_bytes).expect("service answers well-formed PDUs");

        // Advance the device on the first delivery of its outstanding frame
        // (replay ghosts no longer carry device progress).
        let advance = !frame.replayed;
        let dev = &mut node.devices[frame.device];
        if advance {
            dev.waiting = false;
        }

        match (&expected, &response) {
            (Ok(next), RoapPdu::RiHello(hello)) if frame.kind == PduKind::DeviceHello => {
                dev.model = *next;
                // Supersession: the newest challenge is the only live one.
                dev.latest_session = Some(hello.session_id);
                if advance {
                    dev.script_pos += 1;
                }
            }
            (Ok(next), RoapPdu::RegistrationResponse(_))
                if frame.kind == PduKind::RegistrationRequest =>
            {
                dev.model = *next;
                dev.latest_session = None;
                if advance {
                    dev.script_pos += 1;
                }
            }
            (Ok(next), RoapPdu::RoResponse(ro)) if frame.kind == PduKind::RoRequest => {
                dev.model = *next;
                if advance {
                    dev.script_pos += 1;
                }
                let id = ro.rights_object.id().as_str().to_string();
                if node.ro_ids.contains(&id) {
                    self.violate(
                        "no-duplicate-RO-id",
                        format!("rights object id {id} issued twice"),
                    );
                }
                node.ro_ids.push(id);
            }
            (Err(code), RoapPdu::Status(status)) => {
                if *status != RoapStatus::Roap(*code) {
                    self.violate(
                        "reference-model-agreement",
                        format!(
                            "model expected rejection {code:?}, service answered {status:?} \
                             for {} {}",
                            device_name, frame.kind
                        ),
                    );
                }
                // A rejected outstanding exchange makes the device rebuild
                // the step with a fresh attempt.
                if advance {
                    dev.attempt += 1;
                }
            }
            _ => {
                self.violate(
                    "reference-model-agreement",
                    format!(
                        "model expected {:?}, service answered tag {} for {} {}",
                        expected,
                        response.tag(),
                        device_name,
                        frame.kind
                    ),
                );
            }
        }

        // Replay protection, stated directly: a replayed registration frame
        // must never complete a second registration.
        if frame.replayed
            && frame.kind == PduKind::RegistrationRequest
            && matches!(response, RoapPdu::RegistrationResponse(_))
        {
            self.violate(
                "replay-protection",
                format!("replayed pass 3 of {device_name} was accepted twice"),
            );
        }

        // Machine agreement: the service's derived state must match the
        // model after every delivery.
        let model = node.devices[frame.device].model;
        let actual = self.service.session_state(&device_name);
        if actual != model {
            self.violate(
                "reference-model-agreement",
                format!("service has {device_name} in {actual}, model says {model}"),
            );
        }
        label
    }

    fn violate(&mut self, invariant: &str, detail: String) {
        self.report.violations.push(Violation {
            invariant: invariant.to_string(),
            detail,
            trace: self.trace.clone(),
        });
    }

    /// Digest of one node: service image + device states + network buffer.
    fn digest(&self, node: &Node) -> [u8; DIGEST_SIZE] {
        let image = self.service.state_image();
        let mut hasher = Sha1::new();
        hasher.update(&image.rng_state);
        hasher.update(&image.next_session.to_be_bytes());
        hasher.update(&image.issued_ros.to_be_bytes());
        for session in &image.sessions {
            hasher.update(&session.session_id.to_be_bytes());
            hasher.update(session.device_id.as_bytes());
            hasher.update(&session.ri_nonce);
        }
        for device in &image.registered {
            hasher.update(device.device_id.as_bytes());
        }
        for (scope, seq) in &image.ro_sequences {
            hasher.update(scope.as_bytes());
            hasher.update(&seq.to_be_bytes());
        }
        for dev in &node.devices {
            hasher.update(&[
                dev.script_pos as u8,
                dev.attempt as u8,
                dev.waiting as u8,
                match dev.model {
                    RiSessionState::Idle => 0,
                    RiSessionState::ChallengeIssued => 1,
                    RiSessionState::Registered => 2,
                    RiSessionState::Reregistering => 3,
                },
            ]);
            hasher.update(&dev.latest_session.unwrap_or(u64::MAX).to_be_bytes());
        }
        for frame in &node.network {
            hasher.update(&[frame.replayed as u8]);
            hasher.update(&frame.bytes);
        }
        hasher.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_display_names_every_class() {
        assert_eq!(Faults::all().to_string(), "reorder+duplicate+drop");
        assert_eq!(Faults::none().to_string(), "none");
    }

    #[test]
    fn single_session_no_faults_explores_cleanly() {
        let config = ExploreConfig {
            sessions: 1,
            seed: 7,
            faults: Faults::none(),
            acquisitions: 1,
            max_depth: 16,
            max_states: 1_000,
            time_budget: Duration::from_secs(20),
        };
        let report = explore(&config);
        assert!(report.violations.is_empty(), "{report}");
        assert!(report.completed_traces >= 1);
        assert!(!report.truncated);
        assert!(report.states_explored >= 6);
    }

    #[test]
    fn duplicate_faults_exercise_replay_protection() {
        let config = ExploreConfig {
            sessions: 1,
            seed: 11,
            faults: Faults {
                duplicate: true,
                drop: false,
                reorder: true,
            },
            acquisitions: 1,
            max_depth: 20,
            max_states: 5_000,
            time_budget: Duration::from_secs(30),
        };
        let report = explore(&config);
        assert!(report.violations.is_empty(), "{report}");
        // Duplication multiplies the state space beyond the fault-free run.
        assert!(report.distinct_states > 10);
    }
}
