//! The malicious-peer protocol fuzzer.
//!
//! Every attack in the corpus is a *syntactically valid* ROAP frame that is
//! *semantically* wrong — wrong session id, replayed pass 3, cross-device
//! certificate swap, forged signature, nonexistent domain — paired with the
//! exact [`RoapStatus`] the server must answer. Building the corpus is a
//! pure function of the seed: calling [`build_corpus`] twice with the same
//! seed yields byte-identical worlds and byte-identical attack frames,
//! which is what lets `tests/roap_adversarial.rs` replay one corpus
//! through all three server cores (in-process dispatch, thread-pool TCP,
//! readiness event loop) and demand byte-identical status frames back.
//!
//! None of the attacks mutates server state: each one is rejected before
//! the handler reaches a state-changing step, so the corpus can be
//! delivered in any order, repeatedly, against one service instance.

use oma_crypto::rsa::RsaKeyPair;
use oma_crypto::CryptoEngine;
use oma_drm::roap::{DeviceHello, JoinDomainRequest, RegistrationRequest, RoRequest, NONCE_LEN};
use oma_drm::wire::{RoapPdu, RoapStatus};
use oma_drm::{ContentIssuer, DomainId, Permission, RiService, RightsTemplate, RoapError};
use oma_pki::{Certificate, CertificationAuthority, EntityRole, Timestamp, ValidityPeriod};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// RSA modulus size of the fuzz world (small keys, fast corpus builds).
pub const BITS: usize = 384;

/// The protocol timestamp the world is built at.
pub const NOW: u64 = 1_000;

/// The Rights Issuer identity of the fuzz world.
pub const RI_ID: &str = "ri.example.com";

/// The content id with rights on sale.
pub const CONTENT_ID: &str = "cid:fuzz";

/// One corpus entry: a named attack frame and the status the server must
/// answer it with.
pub struct Attack {
    /// Stable attack name (used in test output and trace artifacts).
    pub name: &'static str,
    /// The encoded request frame, ready for any server core.
    pub frame: Vec<u8>,
    /// The exact status PDU the server must answer.
    pub expected: RoapStatus,
}

impl Attack {
    /// The encoded response frame an honest server answers this attack
    /// with — the byte-identity reference for cross-core comparisons.
    pub fn expected_frame(&self) -> Vec<u8> {
        RoapPdu::Status(self.expected).encode()
    }
}

/// The deterministic world the corpus attacks: a service with registered
/// devices, a populated domain and a full domain.
pub struct FuzzWorld {
    /// The service under attack, shareable with the TCP / event-loop
    /// server cores.
    pub service: Arc<RiService>,
}

struct Identity {
    id: String,
    keys: RsaKeyPair,
    certificate: Certificate,
}

fn identity(ca: &mut CertificationAuthority, id: &str, rng: &mut StdRng) -> Identity {
    let keys = RsaKeyPair::generate(BITS, rng);
    let certificate = ca.issue(
        id,
        EntityRole::DrmAgent,
        keys.public().clone(),
        ValidityPeriod::starting_at(Timestamp::new(0), 1_000_000),
    );
    Identity {
        id: id.to_string(),
        keys,
        certificate,
    }
}

/// Builds a signed pass-3 frame exactly as an honest device would, except
/// that every field is caller-controlled.
fn registration_frame(
    session_id: u64,
    device_id: &str,
    signing_keys: &RsaKeyPair,
    certificate: &Certificate,
    engine: &CryptoEngine,
) -> Vec<u8> {
    let now = Timestamp::new(NOW);
    let device_nonce = engine.random_nonce(NONCE_LEN);
    let signed =
        RegistrationRequest::signed_bytes(session_id, device_id, &device_nonce, now, certificate);
    let signature = engine
        .pss_sign(signing_keys.private(), &signed)
        .expect("fuzz keys sign");
    RoapPdu::RegistrationRequest(RegistrationRequest {
        session_id,
        device_id: device_id.to_string(),
        device_nonce,
        request_time: now,
        certificate: certificate.clone(),
        signature,
    })
    .encode()
}

/// Builds a signed RO-request frame with caller-controlled fields.
fn ro_request_frame(
    device_id: &str,
    content_id: &str,
    domain_id: Option<&DomainId>,
    signing_keys: &RsaKeyPair,
    engine: &CryptoEngine,
) -> Vec<u8> {
    let now = Timestamp::new(NOW);
    let device_nonce = engine.random_nonce(NONCE_LEN);
    let signed =
        RoRequest::signed_bytes(device_id, RI_ID, content_id, domain_id, &device_nonce, now);
    let signature = engine
        .pss_sign(signing_keys.private(), &signed)
        .expect("fuzz keys sign");
    RoapPdu::RoRequest(RoRequest {
        device_id: device_id.to_string(),
        ri_id: RI_ID.to_string(),
        content_id: content_id.to_string(),
        domain_id: domain_id.cloned(),
        device_nonce,
        request_time: now,
        signature,
    })
    .encode()
}

/// Builds a signed join-domain frame with caller-controlled fields.
fn join_frame(
    device_id: &str,
    domain_id: &DomainId,
    signing_keys: &RsaKeyPair,
    engine: &CryptoEngine,
) -> Vec<u8> {
    let now = Timestamp::new(NOW);
    let device_nonce = engine.random_nonce(NONCE_LEN);
    let signed = JoinDomainRequest::signed_bytes(device_id, RI_ID, domain_id, &device_nonce, now);
    let signature = engine
        .pss_sign(signing_keys.private(), &signed)
        .expect("fuzz keys sign");
    RoapPdu::JoinDomainRequest(JoinDomainRequest {
        device_id: device_id.to_string(),
        ri_id: RI_ID.to_string(),
        domain_id: domain_id.clone(),
        device_nonce,
        request_time: now,
        signature,
    })
    .encode()
}

/// Registers `who` with the service through the wire path, returning the
/// pass-3 frame that completed the registration (replay material).
fn register(service: &RiService, who: &Identity, engine: &CryptoEngine) -> Vec<u8> {
    let hello_reply = service.dispatch(&RoapPdu::DeviceHello(DeviceHello::new(&who.id)).encode());
    let session_id = match RoapPdu::decode(&hello_reply).expect("hello reply decodes") {
        RoapPdu::RiHello(hello) => hello.session_id,
        other => panic!("hello answered with {other:?}"),
    };
    let frame = registration_frame(session_id, &who.id, &who.keys, &who.certificate, engine);
    match RoapPdu::decode(&service.dispatch(&frame)).expect("registration reply decodes") {
        RoapPdu::RegistrationResponse(_) => frame,
        other => panic!("registration answered with {other:?}"),
    }
}

/// Opens a pending session for `device_id` and returns its session id.
fn open_session(service: &RiService, device_id: &str) -> u64 {
    match RoapPdu::decode(
        &service.dispatch(&RoapPdu::DeviceHello(DeviceHello::new(device_id)).encode()),
    )
    .expect("hello reply decodes")
    {
        RoapPdu::RiHello(hello) => hello.session_id,
        other => panic!("hello answered with {other:?}"),
    }
}

/// Builds the fuzz world and its attack corpus. Identical seeds yield
/// byte-identical worlds and frames.
pub fn build_corpus(seed: u64) -> (FuzzWorld, Vec<Attack>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ca = CertificationAuthority::new("cmla", BITS, &mut rng);
    let service = RiService::new(RI_ID, BITS, &mut ca, &mut rng);
    let ci = ContentIssuer::new("ci.fuzz");
    let (dcf, cek) = ci.package(b"fuzzed content payload", CONTENT_ID, &mut rng);
    service.add_content(
        CONTENT_ID,
        cek,
        &dcf,
        RightsTemplate::unlimited(Permission::Play),
    );

    let alice = identity(&mut ca, "alice", &mut rng);
    let bob = identity(&mut ca, "bob", &mut rng);
    // Mallory holds a perfectly valid agent certificate — for the id
    // "mallory", not for the ids she claims.
    let mallory = identity(&mut ca, "mallory", &mut rng);
    let mut evil_ca = CertificationAuthority::new("evil-ca", BITS, &mut rng);
    let rogue_keys = RsaKeyPair::generate(BITS, &mut rng);
    let rogue_cert = evil_ca.issue(
        "rogue",
        EntityRole::DrmAgent,
        rogue_keys.public().clone(),
        ValidityPeriod::starting_at(Timestamp::new(0), 1_000_000),
    );

    let engine = CryptoEngine::with_seed(seed ^ 0xf00d);
    // Honest state the attacks push against: alice and bob registered,
    // bob in the `family` domain, the `tiny` domain full.
    let alice_pass3 = register(&service, &alice, &engine);
    register(&service, &bob, &engine);
    let family = service.create_domain("family", 8);
    let tiny = service.create_domain("tiny", 1);
    for reply in [
        service.dispatch(&join_frame(&bob.id, &family, &bob.keys, &engine)),
        service.dispatch(&join_frame(&bob.id, &tiny, &bob.keys, &engine)),
    ] {
        match RoapPdu::decode(&reply).expect("join reply decodes") {
            RoapPdu::JoinDomainResponse(_) => {}
            other => panic!("join answered with {other:?}"),
        }
    }
    // Live pending sessions the session-id attacks reference.
    let carol_session = open_session(&service, "carol");
    let victim_session = open_session(&service, "victim");
    let eve_stale_session = open_session(&service, "eve");
    let _eve_fresh_session = open_session(&service, "eve"); // supersedes the first

    let roap = |e: RoapError| RoapStatus::Roap(e);
    let attacks = vec![
        Attack {
            // Pass 3 answering carol's challenge but claiming to be dave:
            // the session/device binding check fires first.
            name: "wrong-session-id",
            frame: registration_frame(
                carol_session,
                "dave",
                &mallory.keys,
                &mallory.certificate,
                &engine,
            ),
            expected: roap(RoapError::Malformed),
        },
        Attack {
            // Pass 3 for a session id the server never issued.
            name: "out-of-order-pass-three",
            frame: registration_frame(
                u64::MAX,
                &alice.id,
                &alice.keys,
                &alice.certificate,
                &engine,
            ),
            expected: roap(RoapError::UnknownSession),
        },
        Attack {
            // Alice's genuine pass 3, replayed after it already succeeded:
            // the session was claimed atomically by the first delivery.
            name: "replayed-pass-three",
            frame: alice_pass3,
            expected: roap(RoapError::UnknownSession),
        },
        Attack {
            // A second hello superseded eve's first challenge; answering
            // the stale one must fail even though eve is honest.
            name: "superseded-session-pass-three",
            frame: registration_frame(
                eve_stale_session,
                "eve",
                &mallory.keys,
                &mallory.certificate,
                &engine,
            ),
            expected: roap(RoapError::UnknownSession),
        },
        Attack {
            // Mallory answers the victim's challenge with her own (valid!)
            // certificate: the subject pin rejects the swap.
            name: "cross-device-certificate-swap",
            frame: registration_frame(
                victim_session,
                "victim",
                &mallory.keys,
                &mallory.certificate,
                &engine,
            ),
            expected: roap(RoapError::CertificateInvalid),
        },
        Attack {
            // A certificate from a parallel trust hierarchy.
            name: "foreign-ca-certificate",
            frame: registration_frame(victim_session, "victim", &rogue_keys, &rogue_cert, &engine),
            expected: roap(RoapError::CertificateInvalid),
        },
        Attack {
            name: "unregistered-ro-request",
            frame: ro_request_frame("ghost", CONTENT_ID, None, &mallory.keys, &engine),
            expected: roap(RoapError::DeviceNotRegistered),
        },
        Attack {
            // Alice is registered but the request is signed with mallory's
            // key: verified against alice's pinned certificate.
            name: "wrong-key-ro-request",
            frame: ro_request_frame(&alice.id, CONTENT_ID, None, &mallory.keys, &engine),
            expected: roap(RoapError::SignatureInvalid),
        },
        Attack {
            name: "unknown-content-ro-request",
            frame: ro_request_frame(&alice.id, "cid:nope", None, &alice.keys, &engine),
            expected: roap(RoapError::UnknownRightsObject),
        },
        Attack {
            // The domain exists but alice is not a member; the server does
            // not distinguish the two cases on the wire.
            name: "nonmember-domain-ro-request",
            frame: ro_request_frame(&alice.id, CONTENT_ID, Some(&family), &alice.keys, &engine),
            expected: roap(RoapError::UnknownDomain),
        },
        Attack {
            name: "unknown-domain-join",
            frame: join_frame(&alice.id, &DomainId::new("nowhere"), &alice.keys, &engine),
            expected: roap(RoapError::UnknownDomain),
        },
        Attack {
            // `tiny` holds one member (bob) and has no room for alice.
            name: "domain-full-join",
            frame: join_frame(&alice.id, &tiny, &alice.keys, &engine),
            expected: roap(RoapError::DomainFull),
        },
        Attack {
            // Leave-domain is unsigned; the session machine is its only
            // trust boundary and rejects unregistered device ids.
            name: "unregistered-leave-domain",
            frame: RoapPdu::LeaveDomainRequest {
                device_id: "ghost".to_string(),
                domain_id: family.clone(),
            }
            .encode(),
            expected: roap(RoapError::DeviceNotRegistered),
        },
        Attack {
            name: "nonmember-leave-domain",
            frame: RoapPdu::LeaveDomainRequest {
                device_id: alice.id.clone(),
                domain_id: family.clone(),
            }
            .encode(),
            expected: RoapStatus::NotInDomain,
        },
        Attack {
            // A response PDU where a request belongs.
            name: "response-as-request",
            frame: RoapPdu::Status(RoapStatus::Ok).encode(),
            expected: roap(RoapError::Malformed),
        },
    ];

    (
        FuzzWorld {
            service: Arc::new(service),
        },
        attacks,
    )
}

/// Runs the corpus against the in-process dispatch core, returning the
/// names of attacks whose response differed from the expected status
/// frame. Empty means the server answered every attack correctly.
pub fn run_corpus(seed: u64) -> Vec<String> {
    let (world, attacks) = build_corpus(seed);
    let mut failures = Vec::new();
    for attack in &attacks {
        let response = world.service.dispatch(&attack.frame);
        if response != attack.expected_frame() {
            let got = RoapPdu::decode(&response)
                .map(|pdu| format!("{pdu:?}"))
                .unwrap_or_else(|e| format!("undecodable: {e:?}"));
            failures.push(format!(
                "{}: expected {:?}, got {got}",
                attack.name, attack.expected
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use oma_drm::agent::OCSP_MAX_AGE_SECONDS;
    use oma_drm::{DrmAgent, DrmError};
    use oma_pki::PkiError;

    #[test]
    fn corpus_is_deterministic() {
        let (_, a) = build_corpus(0xf522);
        let (_, b) = build_corpus(0xf522);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.frame, y.frame, "frame bytes differ for {}", x.name);
            assert_eq!(x.expected, y.expected);
        }
    }

    #[test]
    fn every_attack_is_rejected_with_its_documented_status() {
        let failures = run_corpus(0xa77ac);
        assert!(failures.is_empty(), "{failures:#?}");
    }

    #[test]
    fn attacks_leave_no_trace_in_server_state() {
        // Rejections must not mutate the service: replaying the whole
        // corpus twice yields the same responses, and no attacked identity
        // ends up registered.
        let (world, attacks) = build_corpus(0x51de);
        let first: Vec<Vec<u8>> = attacks
            .iter()
            .map(|a| world.service.dispatch(&a.frame))
            .collect();
        let second: Vec<Vec<u8>> = attacks
            .iter()
            .map(|a| world.service.dispatch(&a.frame))
            .collect();
        assert_eq!(first, second);
        for ghost in ["dave", "ghost", "victim", "rogue", "carol", "eve"] {
            assert!(!world.service.is_registered(ghost), "{ghost} registered");
        }
    }

    /// Agent-direction attacks: a malicious *server* is caught by the
    /// device's own checks (these never reach the wire corpus because the
    /// agent refuses before answering).
    #[test]
    fn stale_ocsp_is_rejected_by_the_agent() {
        let mut rng = StdRng::seed_from_u64(0x0c59);
        let mut ca = CertificationAuthority::new("cmla", BITS, &mut rng);
        let service = RiService::new(RI_ID, BITS, &mut ca, &mut rng);
        let mut agent = DrmAgent::new("phone", BITS, &mut ca, &mut rng);
        // The server serves an OCSP response fetched at t = 0 long past its
        // maximum age; the agent must refuse registration pass 4.
        let late = Timestamp::new(OCSP_MAX_AGE_SECONDS + 10_000);
        assert_eq!(
            agent.register_with(&service, late),
            Err(DrmError::Pki(PkiError::OcspResponseStale))
        );
        assert!(!agent.is_registered_with(RI_ID));
    }
}
