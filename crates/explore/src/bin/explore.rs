//! Command-line front end of the interleaving explorer and the
//! malicious-peer fuzzer.
//!
//! ```text
//! explore [--sessions N] [--seed S] [--depth D] [--max-states M]
//!         [--acquisitions K] [--faults reorder,duplicate,drop|none]
//!         [--time-budget SECS] [--trace-out PATH] [--fuzz]
//! ```
//!
//! Exit codes: `0` — clean run; `1` — bad usage; `2` — an invariant was
//! violated (the counterexample trace is printed, and written to
//! `--trace-out` when given) or a fuzz attack was answered with the wrong
//! status.

use oma_explore::{explore, fuzz, ExploreConfig, Faults};
use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: explore [--sessions N] [--seed S] [--depth D] [--max-states M]\n\
         \x20              [--acquisitions K] [--faults reorder,duplicate,drop|none]\n\
         \x20              [--time-budget SECS] [--trace-out PATH] [--fuzz]"
    );
    ExitCode::from(1)
}

fn parse_faults(spec: &str) -> Option<Faults> {
    let mut faults = Faults::none();
    if spec == "none" {
        return Some(faults);
    }
    for name in spec.split(',') {
        match name {
            "reorder" => faults.reorder = true,
            "duplicate" => faults.duplicate = true,
            "drop" => faults.drop = true,
            _ => return None,
        }
    }
    Some(faults)
}

fn main() -> ExitCode {
    let mut config = ExploreConfig::smoke();
    let mut trace_out: Option<String> = None;
    let mut run_fuzz = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--fuzz" {
            run_fuzz = true;
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            return usage();
        };
        match flag {
            "--sessions" => match value.parse() {
                Ok(n) => config.sessions = n,
                Err(_) => return usage(),
            },
            "--seed" => match value.parse() {
                Ok(n) => config.seed = n,
                Err(_) => return usage(),
            },
            "--depth" => match value.parse() {
                Ok(n) => config.max_depth = n,
                Err(_) => return usage(),
            },
            "--max-states" => match value.parse() {
                Ok(n) => config.max_states = n,
                Err(_) => return usage(),
            },
            "--acquisitions" => match value.parse() {
                Ok(n) => config.acquisitions = n,
                Err(_) => return usage(),
            },
            "--time-budget" => match value.parse() {
                Ok(secs) => config.time_budget = Duration::from_secs(secs),
                Err(_) => return usage(),
            },
            "--faults" => match parse_faults(value) {
                Some(f) => config.faults = f,
                None => return usage(),
            },
            "--trace-out" => trace_out = Some(value.clone()),
            _ => return usage(),
        }
        i += 2;
    }

    if run_fuzz {
        let failures = fuzz::run_corpus(config.seed);
        if failures.is_empty() {
            println!(
                "fuzz corpus (seed {}): every attack answered with its documented status",
                config.seed
            );
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "fuzz corpus (seed {}): {} failures",
            config.seed,
            failures.len()
        );
        for failure in &failures {
            eprintln!("  {failure}");
        }
        return ExitCode::from(2);
    }

    println!(
        "exploring {} sessions, faults {}, seed {}, depth {}, {} states max",
        config.sessions, config.faults, config.seed, config.max_depth, config.max_states
    );
    let report = explore(&config);
    print!("{report}");
    if report.violations.is_empty() {
        return ExitCode::SUCCESS;
    }
    if let Some(path) = trace_out {
        let mut body = String::new();
        for violation in &report.violations {
            body.push_str(&violation.to_string());
        }
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(body.as_bytes())) {
            Ok(()) => eprintln!("counterexample trace written to {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    ExitCode::from(2)
}
