//! The CI smoke runs: a 3-session exploration under every fault class and
//! the full malicious-peer corpus, both deterministic and budget-bounded.

use oma_explore::{explore, fuzz, ExploreConfig, Faults};
use std::time::Duration;

/// The acceptance-criteria run: 3 concurrent sessions, reorder + duplicate
/// + drop faults, zero invariant violations.
#[test]
fn three_sessions_with_all_faults_hold_every_invariant() {
    let report = explore(&ExploreConfig::smoke());
    assert!(report.violations.is_empty(), "{report}");
    assert!(
        report.distinct_states > 100,
        "the fault schedule should fan out well past the happy path: {report}"
    );
}

/// Each fault class alone also explores cleanly (smaller budgets keep the
/// three runs fast).
#[test]
fn each_fault_class_explores_cleanly_in_isolation() {
    for faults in [
        Faults {
            reorder: true,
            duplicate: false,
            drop: false,
        },
        Faults {
            reorder: false,
            duplicate: true,
            drop: false,
        },
        Faults {
            reorder: false,
            duplicate: false,
            drop: true,
        },
    ] {
        let config = ExploreConfig {
            sessions: 2,
            seed: 0xd1ce,
            faults,
            acquisitions: 1,
            max_depth: 24,
            max_states: 4_000,
            time_budget: Duration::from_secs(30),
        };
        let report = explore(&config);
        assert!(report.violations.is_empty(), "faults {faults}: {report}");
        assert!(report.states_explored > 0, "faults {faults}: {report}");
    }
}

/// Same seed, same exploration — the counterexample replay guarantee.
#[test]
fn exploration_is_deterministic() {
    let config = ExploreConfig {
        sessions: 2,
        seed: 9,
        faults: Faults::all(),
        acquisitions: 1,
        max_depth: 18,
        max_states: 3_000,
        time_budget: Duration::from_secs(30),
    };
    let a = explore(&config);
    let b = explore(&config);
    assert_eq!(a.states_explored, b.states_explored);
    assert_eq!(a.distinct_states, b.distinct_states);
    assert_eq!(a.pruned, b.pruned);
    assert_eq!(a.completed_traces, b.completed_traces);
}

#[test]
fn fuzz_corpus_passes_in_process() {
    let failures = fuzz::run_corpus(42);
    assert!(failures.is_empty(), "{failures:#?}");
}
