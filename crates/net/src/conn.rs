//! Per-connection state for the readiness event loop.
//!
//! The split is deliberate: [`FrameMachine`] is the *pure* framing state
//! machine — bytes in, frames out, responses queued, partial writes
//! continued — with no socket and no clock, so every transition is unit
//! testable. [`Connection`] binds one machine to one non-blocking
//! `TcpStream` plus the two deadlines ([`Expiry::Idle`],
//! [`Expiry::PartialFrame`]) the deadline wheel enforces.
//!
//! A machine moves bytes through four stages:
//!
//! ```text
//!   socket ──read──▶ read_buf ──frame_len──▶ frame ──dispatch_at──▶
//!      response ──queue_response──▶ write_buf ──write──▶ socket
//! ```
//!
//! with `write_buf` surviving partial writes: [`FrameMachine::pending_write`]
//! hands out the unsent tail, [`FrameMachine::consume_written`] advances it.

use oma_drm::roap::RoapError;
use oma_drm::wire::RoapPdu;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The socket-free framing core: buffers inbound bytes, slices them into
/// envelope frames, and carries outbound responses across partial writes.
#[derive(Debug, Default)]
pub struct FrameMachine {
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
}

impl FrameMachine {
    /// An empty machine.
    pub fn new() -> FrameMachine {
        FrameMachine::default()
    }

    /// Appends bytes read off the socket to the read buffer.
    pub fn ingest(&mut self, bytes: &[u8]) {
        self.read_buf.extend_from_slice(bytes);
    }

    /// Slices the next complete frame out of the read buffer.
    ///
    /// `Ok(None)` means the buffered bytes are a valid-so-far prefix —
    /// wait for more. Call in a loop: several frames may have arrived in
    /// one segment.
    ///
    /// # Errors
    ///
    /// The buffered bytes can never become a frame; framing is lost for
    /// good and the connection should answer a `Status` and close.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, RoapError> {
        match RoapPdu::frame_len(&self.read_buf)? {
            Some(total) if self.read_buf.len() >= total => {
                let frame = self.read_buf[..total].to_vec();
                self.read_buf.drain(..total);
                Ok(Some(frame))
            }
            _ => Ok(None),
        }
    }

    /// Queues a response frame behind whatever is still unsent.
    pub fn queue_response(&mut self, frame: &[u8]) {
        if self.written == self.write_buf.len() {
            self.write_buf.clear();
            self.written = 0;
        }
        self.write_buf.extend_from_slice(frame);
    }

    /// The outbound bytes not yet accepted by the socket.
    pub fn pending_write(&self) -> &[u8] {
        &self.write_buf[self.written..]
    }

    /// Records that the socket accepted `n` bytes of
    /// [`pending_write`](FrameMachine::pending_write).
    pub fn consume_written(&mut self, n: usize) {
        self.written += n;
        debug_assert!(self.written <= self.write_buf.len());
        if self.written == self.write_buf.len() {
            self.write_buf.clear();
            self.written = 0;
        }
    }

    /// True while unsent response bytes remain — the connection needs
    /// write-readiness.
    pub fn wants_write(&self) -> bool {
        self.written < self.write_buf.len()
    }

    /// True while the read buffer holds the beginning of an incomplete
    /// frame — the peer owes us bytes, on a deadline.
    pub fn has_partial_frame(&self) -> bool {
        !self.read_buf.is_empty()
    }

    /// Bytes currently buffered inbound (a partial frame's length).
    pub fn buffered(&self) -> usize {
        self.read_buf.len()
    }
}

/// Why a connection was reaped by the deadline wheel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expiry {
    /// No byte arrived for the whole idle timeout.
    Idle,
    /// A frame was started but not completed within the frame timeout
    /// (the slowloris case).
    PartialFrame,
}

/// One accepted, non-blocking connection inside the event loop: socket +
/// [`FrameMachine`] + deadline bookkeeping.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    machine: FrameMachine,
    last_byte_at: Instant,
    frame_started_at: Option<Instant>,
    closing: bool,
}

impl Connection {
    /// Adopts an accepted stream: switches it to non-blocking and disables
    /// Nagle (small latency-bound frames).
    ///
    /// # Errors
    ///
    /// Setting either socket option failed.
    pub fn new(stream: TcpStream) -> io::Result<Connection> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            stream,
            machine: FrameMachine::new(),
            last_byte_at: Instant::now(),
            frame_started_at: None,
            closing: false,
        })
    }

    /// The underlying socket (for poller registration).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// The connection's framing state.
    pub fn machine(&mut self) -> &mut FrameMachine {
        &mut self.machine
    }

    /// Drains the readable socket into the machine until `WouldBlock`.
    /// `Ok(true)` means the peer is still there; `Ok(false)` means it sent
    /// EOF (answer what's buffered, flush, then close).
    ///
    /// # Errors
    ///
    /// A hard socket error; the connection is dead.
    pub fn fill(&mut self, scratch: &mut [u8]) -> io::Result<bool> {
        loop {
            match (&self.stream).read(scratch) {
                Ok(0) => return Ok(false),
                Ok(n) => {
                    self.machine.ingest(&scratch[..n]);
                    self.last_byte_at = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(true),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes as much queued response as the socket accepts. `Ok(true)`
    /// when everything went out; `Ok(false)` when the socket filled up
    /// mid-frame (re-arm for write-readiness and continue later).
    ///
    /// # Errors
    ///
    /// A hard socket error; the connection is dead.
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.machine.wants_write() {
            match (&self.stream).write(self.machine.pending_write()) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.machine.consume_written(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Re-anchors the frame-completion deadline after a batch of frames
    /// was processed: a leftover partial frame starts (or keeps) its
    /// clock, an empty buffer clears it. Call after draining
    /// [`FrameMachine::next_frame`].
    pub fn note_frame_progress(&mut self) {
        if self.machine.has_partial_frame() {
            if self.frame_started_at.is_none() {
                self.frame_started_at = Some(Instant::now());
            }
        } else {
            self.frame_started_at = None;
        }
    }

    /// Checks both reaping deadlines at `now`. The frame deadline is
    /// checked first: a slowloris peer is never saved by its own trickle
    /// resetting the idle clock.
    pub fn expired(&self, now: Instant, idle: Duration, frame: Duration) -> Option<Expiry> {
        if let Some(started) = self.frame_started_at {
            if now.saturating_duration_since(started) >= frame {
                return Some(Expiry::PartialFrame);
            }
        }
        if now.saturating_duration_since(self.last_byte_at) >= idle {
            return Some(Expiry::Idle);
        }
        None
    }

    /// The earliest future instant at which [`expired`](Connection::expired)
    /// could first return `Some` — where the deadline wheel should
    /// re-examine this connection.
    pub fn next_due(&self, idle: Duration, frame: Duration) -> Instant {
        let idle_due = self.last_byte_at + idle;
        match self.frame_started_at {
            Some(started) => idle_due.min(started + frame),
            None => idle_due,
        }
    }

    /// Marks the connection close-after-flush: the queued bytes (typically
    /// a `Status` explaining why) still go out, then the loop closes it.
    pub fn set_closing(&mut self) {
        self.closing = true;
    }

    /// True once [`set_closing`](Connection::set_closing) was called.
    pub fn is_closing(&self) -> bool {
        self.closing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oma_drm::roap::DeviceHello;

    fn hello_frame(id: &str) -> Vec<u8> {
        RoapPdu::DeviceHello(DeviceHello::new(id)).encode()
    }

    #[test]
    fn byte_at_a_time_reassembly() {
        let frame = hello_frame("dev");
        let mut m = FrameMachine::new();
        for byte in frame.iter() {
            assert_eq!(m.next_frame().unwrap(), None, "complete only at the end");
            m.ingest(&[*byte]);
        }
        assert_eq!(m.next_frame().unwrap(), Some(frame));
        assert!(!m.has_partial_frame());
        assert_eq!(m.next_frame().unwrap(), None);
    }

    #[test]
    fn coalesced_frames_come_out_one_by_one() {
        let a = hello_frame("dev-a");
        let b = hello_frame("dev-b");
        let mut m = FrameMachine::new();
        let mut wire = a.clone();
        wire.extend_from_slice(&b);
        wire.extend_from_slice(&a[..5]); // trailing partial
        m.ingest(&wire);
        assert_eq!(m.next_frame().unwrap(), Some(a));
        assert_eq!(m.next_frame().unwrap(), Some(b));
        assert_eq!(m.next_frame().unwrap(), None);
        assert!(m.has_partial_frame());
        assert_eq!(m.buffered(), 5);
    }

    #[test]
    fn garbage_is_a_terminal_framing_error() {
        let mut m = FrameMachine::new();
        m.ingest(b"GET / HTTP/1.1\r\n\r\n");
        assert!(m.next_frame().is_err());
    }

    #[test]
    fn partial_write_continuation() {
        let mut m = FrameMachine::new();
        m.queue_response(b"abcdef");
        assert!(m.wants_write());
        assert_eq!(m.pending_write(), b"abcdef");
        m.consume_written(2);
        assert_eq!(m.pending_write(), b"cdef");
        // A second response queues behind the unsent tail.
        m.queue_response(b"XY");
        assert_eq!(m.pending_write(), b"cdefXY");
        m.consume_written(6);
        assert!(!m.wants_write());
        assert_eq!(m.pending_write(), b"");
        // Fully drained buffers reset, not grow.
        m.queue_response(b"Z");
        assert_eq!(m.pending_write(), b"Z");
    }

    #[test]
    fn expiry_prefers_the_frame_deadline() {
        let listener = std::net::TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0)).unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut conn = Connection::new(stream).unwrap();
        let idle = Duration::from_secs(30);
        let frame = Duration::from_millis(10);
        assert_eq!(conn.expired(Instant::now(), idle, frame), None);
        conn.machine().ingest(b"ROAP"); // a frame has started
        conn.note_frame_progress();
        let later = Instant::now() + Duration::from_millis(20);
        assert_eq!(conn.expired(later, idle, frame), Some(Expiry::PartialFrame));
        // next_due is the frame deadline, well before the idle one.
        assert!(conn.next_due(idle, frame) < Instant::now() + idle);
    }
}
