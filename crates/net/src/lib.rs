//! ROAP over real sockets.
//!
//! Everything below the wire layer is transport-agnostic: a [`RoapPdu`]
//! frame is a self-delimiting byte string, [`RiService::dispatch`] turns
//! one request frame into one response frame, and
//! [`RoapClient`](oma_drm::client::RoapClient) only needs a
//! [`RoapTransport`] to speak the whole protocol. This crate supplies the
//! missing rung: the frames actually cross a TCP connection.
//!
//! * [`TcpTransport`] — the client end: one connection, one frame out, one
//!   frame back per [`RoapTransport::roundtrip`], with partial reads
//!   reassembled via the envelope's length header
//!   ([`RoapPdu::frame_len`]).
//! * [`RoapTcpServer`] — the service end: a listener plus a **bounded**
//!   worker pool; each worker serves one connection at a time, feeding every
//!   received frame through [`RiService::dispatch_at`] so certificate
//!   validity is judged by the *server's* clock, never the peer's
//!   (see [`ServerConfig::clock`]).
//! * [`serve_connection`] — the per-connection loop itself, usable without
//!   the server when a test or example owns its own accept loop. Frames may
//!   arrive split across TCP segments or coalesced several-per-segment; the
//!   loop reassembles both cases, and hangs up on peers that stop
//!   delivering bytes for [`ServerConfig::idle_timeout`].
//!
//! The crate is std-only by design (the vendored-deps rule): no async
//! runtime, no socket abstraction — `std::net` sockets and plain threads,
//! which is also the honest model of the 2005-era license servers the
//! paper's Rights Issuer would have talked to. Two server cores share the
//! same [`ServerConfig`]/serve surface:
//!
//! * [`RoapTcpServer`] — thread-per-connection: an accept thread plus a
//!   bounded worker pool; concurrency is worker-count-bound.
//! * [`RoapEventServer`] — the readiness [`event_loop`]: one thread, an
//!   epoll-backed [`poll::Poller`] driving non-blocking sockets through
//!   per-connection [`conn::FrameMachine`]s, so tens of thousands of
//!   mostly-idle handsets park on one core.
//!
//! Both expose the same [`ServerMetrics`] connection counters
//! (accepted/active/reaped/shed/queue depth) and both shut down
//! gracefully: stop accepting, answer every frame already received on
//! in-flight connections, then join. Peer disconnects surface as clean
//! [`DrmError::Transport`] returns from the connection loop — a dead
//! connection never wedges a worker.

// `deny`, not `forbid`: the epoll poller's FFI shim in [`poll`] carries the
// crate's only `#[allow(unsafe_code)]`, and `forbid` cannot be overridden
// even there.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod event_loop;
pub mod poll;

pub use event_loop::RoapEventServer;

use oma_drm::client::RoapTransport;
use oma_drm::journal::RiJournal;
use oma_drm::service::RiService;
use oma_drm::wire::{RoapPdu, RoapStatus};
use oma_drm::DrmError;
pub use oma_obs::ObsConfig;

use oma_obs::{Counter as ObsCounter, Gauge as ObsGauge, Histogram, Obs, Registry, Span};
use oma_pki::Timestamp;
use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often a blocked server thread re-checks the shutdown flag: the accept
/// loop polls its non-blocking listener at this interval, and every
/// connection's read timeout is set to it. Bounds shutdown latency without
/// busy-waiting.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Default [`ServerConfig::idle_timeout`], and the patience of a bare
/// [`serve_connection`]: generous next to any honest client's think time
/// (even full-size RSA signing is milliseconds), small enough that an
/// abandoned connection frees its worker quickly.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Default [`ServerConfig::frame_timeout`]: how long a peer may take to
/// finish delivering a frame it has started. Any honest client writes a
/// whole frame in one burst, so seconds of slack is generous — while a
/// slowloris peer trickling one byte per `idle_timeout - ε` is reaped here
/// instead of holding a worker (or an event-loop connection slot) forever.
pub const DEFAULT_FRAME_TIMEOUT: Duration = Duration::from_secs(10);

/// Default [`ServerConfig::queue_depth`] of the accept→worker hand-off
/// queue: deep enough that a benign burst rides it out, shallow enough
/// that a connect flood is shed with [`RoapStatus::Busy`] instead of
/// accumulating unserved sockets without bound.
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// Default [`ServerConfig::max_connections`] for the event-loop backend.
pub const DEFAULT_MAX_CONNECTIONS: usize = 16_384;

/// Default client-side [`TcpTransport`] deadline: every
/// [`roundtrip`](RoapTransport::roundtrip) must connect/send/receive within
/// this budget or fail with [`DrmError::Transport`], so a wedged server can
/// never hang a client (or the fleet harness) forever.
pub const DEFAULT_CLIENT_DEADLINE: Duration = Duration::from_secs(30);

/// Connection-level counters shared by both server backends, readable at
/// any time via [`ServerMetrics::snapshot`]. Gauges (`active`,
/// `queue_depth`) track the current value and remember their peak;
/// everything else is a monotonic counter.
///
/// Since the observability layer landed, the counters live in an
/// [`oma_obs::Registry`] — this struct is a set of pre-resolved handles,
/// and [`snapshot`](ServerMetrics::snapshot) / the snapshot's `Display`
/// are thin views over the registry values. A server built with
/// [`ServerConfig::obs`] enabled registers into the shared surface (so
/// `net_*`/`repl_*` appear in the text exposition); otherwise the
/// handles live in a private registry and behave exactly as the old
/// bare atomics did.
pub struct ServerMetrics {
    accepted: Arc<ObsCounter>,
    served: Arc<ObsCounter>,
    active: Arc<ObsGauge>,
    peak_active: Arc<ObsGauge>,
    reaped_idle: Arc<ObsCounter>,
    reaped_frame: Arc<ObsCounter>,
    shed: Arc<ObsCounter>,
    queue_depth: Arc<ObsGauge>,
    peak_queue_depth: Arc<ObsGauge>,
    records_shipped: Arc<ObsCounter>,
    records_acked: Arc<ObsCounter>,
    follower_lag: Arc<ObsGauge>,
    epoch: Arc<ObsGauge>,
}

impl Default for ServerMetrics {
    /// Metrics backed by a private, throwaway registry — the
    /// no-observability path, identical in behaviour to the pre-registry
    /// bare atomics.
    fn default() -> Self {
        Self::in_registry(&Registry::new())
    }
}

impl std::fmt::Debug for ServerMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerMetrics")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl ServerMetrics {
    /// Metrics registered in `registry` as the single source of truth
    /// (`net_*` for connection counters, `repl_*` for replication).
    /// Registering two servers into one registry would alias their
    /// counters — give each server its own [`Obs`] surface.
    pub fn in_registry(registry: &Registry) -> Self {
        ServerMetrics {
            accepted: registry.counter("net_accepted_total"),
            served: registry.counter("net_served_total"),
            active: registry.gauge("net_active"),
            peak_active: registry.gauge("net_active_peak"),
            reaped_idle: registry.counter("net_reaped_idle_total"),
            reaped_frame: registry.counter("net_reaped_frame_total"),
            shed: registry.counter("net_shed_total"),
            queue_depth: registry.gauge("net_queue_depth"),
            peak_queue_depth: registry.gauge("net_queue_depth_peak"),
            records_shipped: registry.counter("repl_records_shipped_total"),
            records_acked: registry.counter("repl_records_acked_total"),
            follower_lag: registry.gauge("repl_follower_lag"),
            epoch: registry.gauge("repl_epoch"),
        }
    }

    pub(crate) fn on_accept(&self) {
        self.accepted.inc();
        let active = self.active.add(1);
        self.peak_active.set_max(active);
    }

    pub(crate) fn on_served(&self) {
        self.served.inc();
        self.active.sub(1);
    }

    pub(crate) fn on_shed(&self) {
        self.shed.inc();
        self.active.sub(1);
    }

    pub(crate) fn on_reaped_idle(&self) {
        self.reaped_idle.inc();
    }

    pub(crate) fn on_reaped_frame(&self) {
        self.reaped_frame.inc();
    }

    pub(crate) fn on_queued(&self) {
        let depth = self.queue_depth.add(1);
        self.peak_queue_depth.set_max(depth);
    }

    pub(crate) fn on_dequeued(&self) {
        self.queue_depth.sub(1);
    }

    /// Number of conversations that have finished (served to disconnect,
    /// protocol failure, reaped, or drained at shutdown).
    pub fn served(&self) -> u64 {
        self.served.get()
    }

    /// Counts WAL records shipped to a replication follower. Public because
    /// the replication machinery lives outside this crate (`oma-cluster`)
    /// but reports through the same per-server metrics surface.
    pub fn on_records_shipped(&self, records: u64) {
        self.records_shipped.add(records);
    }

    /// Counts WAL records a replication follower acknowledged.
    pub fn on_records_acked(&self, records: u64) {
        self.records_acked.add(records);
    }

    /// Publishes the current replication lag gauge: how many durable
    /// records the slowest follower has not acknowledged yet. (The
    /// point-in-time gauge survives for this `Display` view; the
    /// *distribution* of replication latency lives in the
    /// `repl_ship_ack_nanos` histogram `oma-cluster` records.)
    pub fn set_follower_lag(&self, records: u64) {
        self.follower_lag.set(records);
    }

    /// Publishes the replication epoch this node currently serves under
    /// (bumped by every failover; see `oma-cluster`).
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.set(epoch);
    }

    /// A consistent-enough point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            accepted: self.accepted.get(),
            served: self.served.get(),
            active: self.active.get(),
            peak_active: self.peak_active.get(),
            reaped_idle: self.reaped_idle.get(),
            reaped_frame: self.reaped_frame.get(),
            shed: self.shed.get(),
            queue_depth: self.queue_depth.get(),
            peak_queue_depth: self.peak_queue_depth.get(),
            records_shipped: self.records_shipped.get(),
            records_acked: self.records_acked.get(),
            follower_lag: self.follower_lag.get(),
            epoch: self.epoch.get(),
        }
    }
}

/// Point-in-time copy of a server's [`ServerMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Connections accepted off the listener (including ones later shed).
    pub accepted: u64,
    /// Conversations finished, for any reason.
    pub served: u64,
    /// Connections currently open on the server.
    pub active: u64,
    /// Highest simultaneous `active` observed.
    pub peak_active: u64,
    /// Connections reaped for byte-level idleness
    /// ([`ServerConfig::idle_timeout`]).
    pub reaped_idle: u64,
    /// Connections reaped for stalling mid-frame
    /// ([`ServerConfig::frame_timeout`]).
    pub reaped_frame: u64,
    /// Connections shed with [`RoapStatus::Busy`] because the hand-off
    /// queue (thread backend) or connection table (event backend) was full.
    pub shed: u64,
    /// Connections currently parked in the accept→worker hand-off queue
    /// (always 0 on the event-loop backend, which has no queue).
    pub queue_depth: u64,
    /// Highest simultaneous `queue_depth` observed.
    pub peak_queue_depth: u64,
    /// WAL records shipped to replication followers
    /// ([`ServerMetrics::on_records_shipped`]; 0 on an unreplicated node).
    pub records_shipped: u64,
    /// WAL records replication followers acknowledged
    /// ([`ServerMetrics::on_records_acked`]).
    pub records_acked: u64,
    /// Durable records the slowest follower has not acknowledged yet
    /// ([`ServerMetrics::set_follower_lag`]).
    pub follower_lag: u64,
    /// Replication epoch this node serves under; bumped by every failover
    /// ([`ServerMetrics::set_epoch`]; 0 on an unreplicated node).
    pub epoch: u64,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "accepted={} served={} active={} (peak {}) reaped_idle={} \
             reaped_frame={} shed={} queue_depth={} (peak {}) \
             repl_shipped={} repl_acked={} repl_lag={} epoch={}",
            self.accepted,
            self.served,
            self.active,
            self.peak_active,
            self.reaped_idle,
            self.reaped_frame,
            self.shed,
            self.queue_depth,
            self.peak_queue_depth,
            self.records_shipped,
            self.records_acked,
            self.follower_lag,
            self.epoch,
        )
    }
}

/// Pre-resolved observability handles for a server core: the per-frame
/// latency histograms plus the span ring. Created once at bind time when
/// [`ServerConfig::obs`] is on; every hot-path site then costs one
/// `Option` check and, when on, lock-free atomic records.
pub(crate) struct NetObs {
    obs: Arc<Obs>,
    frame_nanos: Arc<Histogram>,
    dispatch_nanos: Arc<Histogram>,
    write_nanos: Arc<Histogram>,
    queue_wait_nanos: Arc<Histogram>,
}

impl NetObs {
    pub(crate) fn new(obs: &Arc<Obs>) -> NetObs {
        let registry = obs.registry();
        NetObs {
            obs: Arc::clone(obs),
            frame_nanos: registry.histogram("net_frame_nanos"),
            dispatch_nanos: registry.histogram("net_dispatch_nanos"),
            write_nanos: registry.histogram("net_write_nanos"),
            queue_wait_nanos: registry.histogram("net_queue_wait_nanos"),
        }
    }

    /// Records one connection's accept→worker hand-off wait.
    pub(crate) fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait_nanos.record_duration(wait);
    }

    /// Records one served frame: the latency histograms plus its span.
    pub(crate) fn record_frame(&self, dispatch: Duration, write: Duration, mut span: Span) {
        let dispatch_nanos = duration_nanos(dispatch);
        let write_nanos = duration_nanos(write);
        self.dispatch_nanos.record(dispatch_nanos);
        self.write_nanos.record(write_nanos);
        self.frame_nanos
            .record(dispatch_nanos.saturating_add(write_nanos));
        span.dispatch_nanos = dispatch_nanos;
        span.write_nanos = write_nanos;
        self.obs.spans().record(span);
    }
}

/// A [`Duration`] as saturating nanoseconds.
pub(crate) fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Builds the identity half of a frame's [`Span`] — kind, session id and
/// (when the PDU carries one) device id — from the raw frame bytes. Only
/// called when observability is on: it decodes the frame a second time,
/// which is noise next to the crypto a dispatch performs, and keeps the
/// off path entirely untouched.
pub(crate) fn span_for_frame(frame: &[u8], service: &RiService) -> (Span, u64) {
    let span = match RoapPdu::decode(frame) {
        Ok(pdu) => {
            let mut span = Span::new(pdu.name());
            span.session_id = pdu.session_id();
            span.device_id = pdu.device_id().unwrap_or("").to_string();
            span
        }
        Err(_) => Span::new("Invalid"),
    };
    (span, service.charged_cycles())
}

/// Maps an I/O failure in `context` onto the transport error peers report.
fn transport_err(context: &str, e: io::Error) -> DrmError {
    DrmError::Transport(format!("{context}: {e}"))
}

/// Reads exactly one length-framed ROAP PDU from `reader`, reassembling
/// partial reads: first the fixed envelope header, whose length field names
/// the frame's total size ([`RoapPdu::frame_len`]), then the remainder of
/// the body — however many TCP segments either part was split across.
///
/// Returns the raw frame bytes (header included), ready for
/// [`RoapPdu::decode`] or [`RiService::dispatch`].
///
/// # Errors
///
/// [`DrmError::Transport`] when the peer disconnects (at a frame boundary
/// or mid-frame) or the read fails; [`DrmError::Roap`] when the header is
/// not a valid ROAP envelope — after which the stream cannot be
/// resynchronised and should be closed.
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Vec<u8>, DrmError> {
    let mut frame = vec![0u8; oma_drm::wire::HEADER_LEN];
    reader
        .read_exact(&mut frame)
        .map_err(|e| transport_err("read frame header", e))?;
    let total = RoapPdu::frame_len(&frame)
        .map_err(DrmError::Roap)?
        .expect("a complete header always yields a frame length");
    frame.resize(total, 0);
    reader
        .read_exact(&mut frame[oma_drm::wire::HEADER_LEN..])
        .map_err(|e| transport_err("read frame body", e))?;
    Ok(frame)
}

/// The client end of a ROAP-over-TCP connection: a [`RoapTransport`] whose
/// [`roundtrip`](RoapTransport::roundtrip) writes the request frame to the
/// socket and reassembles the single response frame, handling responses
/// split across TCP segments.
///
/// One transport owns one connection. Dropping it closes the connection,
/// which the server side reports as a clean peer disconnect.
///
/// # Example
///
/// Once a server is up, connecting and registering is three lines:
///
/// ```
/// # use oma_drm::client::RoapClient;
/// # use oma_drm::{DrmAgent, RiService};
/// # use oma_net::{RoapTcpServer, ServerConfig, TcpTransport};
/// # use oma_pki::{CertificationAuthority, Timestamp};
/// # use rand::SeedableRng;
/// # use std::sync::Arc;
/// # fn main() -> Result<(), oma_drm::DrmError> {
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// # let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
/// # let service = Arc::new(RiService::new("ri.example.com", 384, &mut ca, &mut rng));
/// # let mut agent = DrmAgent::new("phone-001", 384, &mut ca, &mut rng);
/// # let now = Timestamp::new(1_000);
/// # let server = RoapTcpServer::bind(
/// #     service,
/// #     ServerConfig { clock: Some(now), ..ServerConfig::default() },
/// # )?;
/// let client = RoapClient::new(TcpTransport::connect(server.local_addr())?);
/// agent.register_via(&client, now)?;
/// assert!(agent.is_registered_with("ri.example.com"));
/// # server.shutdown();
/// # Ok(()) }
/// ```
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    deadline: Option<Duration>,
}

impl TcpTransport {
    /// Connects to a ROAP server, typically at
    /// [`RoapTcpServer::local_addr`]. Nagle's algorithm is disabled: frames
    /// are small and latency-bound, the workload TCP_NODELAY exists for.
    ///
    /// The transport carries [`DEFAULT_CLIENT_DEADLINE`]: the connect and
    /// every later roundtrip must complete within that budget. Use
    /// [`TcpTransport::connect_with_deadline`] to tune or disable it.
    ///
    /// # Errors
    ///
    /// [`DrmError::Transport`] when the connection cannot be established
    /// within the deadline.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, DrmError> {
        Self::connect_with_deadline(addr, Some(DEFAULT_CLIENT_DEADLINE))
    }

    /// [`TcpTransport::connect`] with an explicit per-roundtrip deadline.
    /// `None` restores the pre-deadline behaviour — block indefinitely —
    /// which is only safe against a cooperating in-process server.
    ///
    /// # Errors
    ///
    /// [`DrmError::Transport`] when no resolved address accepts the
    /// connection within the deadline.
    pub fn connect_with_deadline<A: ToSocketAddrs>(
        addr: A,
        deadline: Option<Duration>,
    ) -> Result<Self, DrmError> {
        let addrs = addr
            .to_socket_addrs()
            .map_err(|e| transport_err("resolve", e))?;
        let mut last_err = DrmError::Transport("connect: no addresses resolved".into());
        for candidate in addrs {
            let attempt = match deadline {
                // `connect_timeout` rejects a zero duration; clamp rather
                // than error so a `Duration::ZERO` deadline reads as
                // "already expired", not a usage bug.
                Some(d) => TcpStream::connect_timeout(&candidate, d.max(Duration::from_millis(1))),
                None => TcpStream::connect(candidate),
            };
            match attempt {
                Ok(stream) => {
                    stream
                        .set_nodelay(true)
                        .map_err(|e| transport_err("set_nodelay", e))?;
                    return Ok(TcpTransport { stream, deadline });
                }
                Err(e) => last_err = transport_err("connect", e),
            }
        }
        Err(last_err)
    }

    /// Wraps an already-established connection (e.g. accepted by a custom
    /// listener) without touching its socket options. No deadline is
    /// applied; add one with [`TcpTransport::set_deadline`].
    pub fn from_stream(stream: TcpStream) -> Self {
        TcpTransport {
            stream,
            deadline: None,
        }
    }

    /// The per-roundtrip deadline currently in force, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Changes the per-roundtrip deadline. `None` blocks indefinitely.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// The local address of the underlying connection.
    ///
    /// # Errors
    ///
    /// [`DrmError::Transport`] when the socket cannot report it.
    pub fn local_addr(&self) -> Result<SocketAddr, DrmError> {
        self.stream
            .local_addr()
            .map_err(|e| transport_err("local_addr", e))
    }
}

/// Reads exactly `buf.len()` bytes from `&stream`, giving up with a
/// [`DrmError::Transport`] once `due` passes — the piece `read_frame`
/// cannot provide, because a stalled server otherwise blocks `read_exact`
/// forever.
fn read_exact_deadline(
    stream: &TcpStream,
    buf: &mut [u8],
    due: Option<Instant>,
    context: &str,
) -> Result<(), DrmError> {
    let mut filled = 0;
    while filled < buf.len() {
        if let Some(due) = due {
            let remaining = due.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(DrmError::Transport(format!(
                    "{context}: deadline exceeded waiting for the server"
                )));
            }
            // A zero read timeout is rejected by std; 1ms under-sleeps the
            // deadline by at most that much.
            stream
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
                .map_err(|e| transport_err("set_read_timeout", e))?;
        }
        match (&mut &*stream).read(&mut buf[filled..]) {
            Ok(0) => return Err(DrmError::Transport(format!("{context}: peer disconnected"))),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                // Loop re-checks the deadline; without one this was a bare
                // interrupt and the read simply retries.
            }
            Err(e) => return Err(transport_err(context, e)),
        }
    }
    Ok(())
}

/// [`read_frame`] against a deadline: reassembles exactly one frame from
/// `&stream` or fails with [`DrmError::Transport`] once `due` passes.
fn read_frame_deadline(stream: &TcpStream, due: Option<Instant>) -> Result<Vec<u8>, DrmError> {
    let mut frame = vec![0u8; oma_drm::wire::HEADER_LEN];
    read_exact_deadline(stream, &mut frame, due, "read frame header")?;
    let total = RoapPdu::frame_len(&frame)
        .map_err(DrmError::Roap)?
        .expect("a complete header always yields a frame length");
    frame.resize(total, 0);
    read_exact_deadline(
        stream,
        &mut frame[oma_drm::wire::HEADER_LEN..],
        due,
        "read frame body",
    )?;
    Ok(frame)
}

impl RoapTransport for TcpTransport {
    fn roundtrip(&self, frame: &[u8]) -> Result<Vec<u8>, DrmError> {
        // `Read`/`Write` are implemented on `&TcpStream`, so a shared
        // transport reference suffices — the protocol is strictly
        // request/response on one connection, never pipelined.
        let due = self.deadline.map(|d| Instant::now() + d);
        self.stream
            .set_write_timeout(self.deadline.map(|d| d.max(Duration::from_millis(1))))
            .map_err(|e| transport_err("set_write_timeout", e))?;
        (&self.stream)
            .write_all(frame)
            .map_err(|e| transport_err("send frame", e))?;
        read_frame_deadline(&self.stream, due)
    }
}

impl RoapTransport for &TcpTransport {
    fn roundtrip(&self, frame: &[u8]) -> Result<Vec<u8>, DrmError> {
        (**self).roundtrip(frame)
    }
}

/// Tuning knobs of a [`RoapTcpServer`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Size of the bounded worker pool. Each worker serves one connection at
    /// a time; further accepted connections wait in the hand-off queue until
    /// a worker frees up, so the pool bounds concurrency, not the number of
    /// clients.
    pub workers: usize,
    /// The server-pinned clock handed to [`RiService::dispatch_at`] for
    /// every frame. `None` falls back to [`RiService::dispatch`], which
    /// trusts each request's own `request_time` — acceptable between
    /// cooperating test processes, not on a hostile wire (a peer could
    /// back-date itself into an expired certificate's validity window).
    pub clock: Option<Timestamp>,
    /// How long a connection may sit without delivering a single byte
    /// before the server hangs up on it. This is what keeps a half-open
    /// peer (vanished without a FIN) or a connect-and-say-nothing client
    /// from occupying a bounded-pool worker forever.
    pub idle_timeout: Duration,
    /// How long a peer may take to complete a frame it has started
    /// delivering. Byte-level idleness alone is not enough: a slowloris
    /// peer trickling one byte per `idle_timeout - ε` never goes idle yet
    /// never completes a frame — this deadline reaps it.
    pub frame_timeout: Duration,
    /// Bound of the accept→worker hand-off queue
    /// ([`RoapTcpServer`] only). When the queue is full, further accepted
    /// connections are shed with a [`RoapStatus::Busy`] reply instead of
    /// accumulating without backpressure.
    pub queue_depth: usize,
    /// Most connections an [`event_loop::RoapEventServer`] keeps open at
    /// once; beyond it, fresh connections are shed with
    /// [`RoapStatus::Busy`]. The thread backend's concurrency is already
    /// bounded by `workers + queue_depth`, so it ignores this knob.
    pub max_connections: usize,
    /// Optional durable store. When set, [`RoapTcpServer::bind`] attaches
    /// it as the service's journal (every mutation is logged before its
    /// response leaves) and writes a boot snapshot — so even a fresh store
    /// holds the service identity and a hard kill loses nothing that was
    /// journaled. Graceful shutdown flushes the log and snapshots again
    /// once the last in-flight conversation has drained, leaving a
    /// compact, replay-free store behind.
    pub store: Option<Arc<dyn RiJournal>>,
    /// Observability: [`ObsConfig::Off`] (the default) costs one branch
    /// per instrumentation site; [`ObsConfig::On`] records per-frame
    /// latency histograms (`net_frame_nanos`, `net_dispatch_nanos`,
    /// `net_write_nanos`, `net_queue_wait_nanos`), publishes the
    /// [`ServerMetrics`] counters into the surface's registry, and
    /// deposits one [`Span`] per served frame in the span ring.
    pub obs: ObsConfig,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("workers", &self.workers)
            .field("clock", &self.clock)
            .field("idle_timeout", &self.idle_timeout)
            .field("frame_timeout", &self.frame_timeout)
            .field("queue_depth", &self.queue_depth)
            .field("max_connections", &self.max_connections)
            .field("durable", &self.store.is_some())
            .field("obs", &self.obs.is_on())
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            clock: None,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            frame_timeout: DEFAULT_FRAME_TIMEOUT,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            store: None,
            obs: ObsConfig::Off,
        }
    }
}

impl ServerConfig {
    /// A default config journaling through `store` — the one-liner for
    /// bringing up a durable server.
    pub fn durable(store: Arc<dyn RiJournal>) -> Self {
        ServerConfig {
            store: Some(store),
            ..ServerConfig::default()
        }
    }

    /// Returns the config with the server clock pinned to `now`.
    pub fn with_clock(mut self, now: Timestamp) -> Self {
        self.clock = Some(now);
        self
    }
}

/// A ROAP server on a real TCP listener.
///
/// `bind` starts one accept thread plus [`ServerConfig::workers`] worker
/// threads and returns immediately; [`RoapClient`]s connect via
/// [`TcpTransport::connect`] at [`RoapTcpServer::local_addr`]. Every frame
/// received on any connection goes through one shared [`RiService`] — the
/// same `&self` handlers the in-process and channel transports call, so a
/// lifecycle over TCP produces byte-identical protocol messages.
///
/// [`RoapClient`]: oma_drm::client::RoapClient
///
/// Call [`shutdown`](RoapTcpServer::shutdown) (or drop the server) to stop:
/// accepting ends, conversations in flight get their answers, the threads
/// join.
pub struct RoapTcpServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<ServerMetrics>,
    service: Arc<RiService>,
    store: Option<Arc<dyn RiJournal>>,
}

impl std::fmt::Debug for RoapTcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoapTcpServer")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .field("durable", &self.store.is_some())
            .finish_non_exhaustive()
    }
}

impl RoapTcpServer {
    /// Binds to an ephemeral loopback port (`127.0.0.1:0`) — the form tests,
    /// examples and the fleet harness use. Ask [`RoapTcpServer::local_addr`]
    /// for the chosen port.
    ///
    /// # Errors
    ///
    /// [`DrmError::Transport`] when the listener cannot be set up.
    pub fn bind(service: Arc<RiService>, config: ServerConfig) -> Result<Self, DrmError> {
        Self::bind_addr(service, (Ipv4Addr::LOCALHOST, 0), config)
    }

    /// Binds to an explicit address.
    ///
    /// # Errors
    ///
    /// See [`RoapTcpServer::bind`].
    pub fn bind_addr<A: ToSocketAddrs>(
        service: Arc<RiService>,
        addr: A,
        config: ServerConfig,
    ) -> Result<Self, DrmError> {
        let listener = TcpListener::bind(addr).map_err(|e| transport_err("bind", e))?;
        // Non-blocking accept lets the accept loop observe the shutdown flag
        // without a wake-up connection.
        listener
            .set_nonblocking(true)
            .map_err(|e| transport_err("set_nonblocking", e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| transport_err("local_addr", e))?;

        // Durable mode: the store becomes the service's journal before the
        // first connection is accepted, so no mutation can slip past it —
        // and a boot snapshot is written immediately. Without it, a fresh
        // store would hold events but no genesis (identity is only ever in
        // snapshots), so a hard kill before graceful shutdown would leave
        // every fsync'd registration unrecoverable. On a recovered service
        // the same snapshot doubles as compaction: a freshly booted server
        // always starts from a replay-free store.
        if let Some(store) = &config.store {
            service.set_journal(Arc::clone(store));
            store.snapshot(&|| service.state_image())?;
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        // With observability on, the connection counters live in the shared
        // registry (scrapable as `net_*`/`repl_*`); off, they live in a
        // private one and cost exactly what they used to.
        let metrics = Arc::new(match config.obs.obs() {
            Some(obs) => ServerMetrics::in_registry(obs.registry()),
            None => ServerMetrics::default(),
        });
        let net_obs = config.obs.obs().map(|obs| Arc::new(NetObs::new(obs)));
        // A *bounded* hand-off queue: a connect flood fills it and is then
        // shed at the accept loop instead of accumulating sockets (and FDs)
        // without limit behind a saturated pool. Each entry carries its
        // enqueue instant so the worker can account the queue wait.
        let (conn_tx, conn_rx) =
            mpsc::sync_channel::<(TcpStream, Instant)>(config.queue_depth.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let clock = config.clock;
        let idle_timeout = config.idle_timeout;
        let frame_timeout = config.frame_timeout;
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let service = Arc::clone(&service);
                let conn_rx = Arc::clone(&conn_rx);
                let shutdown = Arc::clone(&shutdown);
                let metrics = Arc::clone(&metrics);
                let store = config.store.clone();
                let net_obs = net_obs.clone();
                thread::Builder::new()
                    .name(format!("roap-tcp-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the queue lock only for the hand-off itself.
                        let conn = conn_rx.lock().expect("connection queue lock").recv();
                        match conn {
                            Ok((stream, enqueued_at)) => {
                                metrics.on_dequeued();
                                let queue_wait = enqueued_at.elapsed();
                                if let Some(obs) = &net_obs {
                                    obs.record_queue_wait(queue_wait);
                                }
                                // A disconnect (or a peer that lost framing)
                                // ends one conversation, never the worker.
                                let _ = serve_connection_inner(
                                    &service,
                                    stream,
                                    clock,
                                    idle_timeout,
                                    frame_timeout,
                                    &shutdown,
                                    store.as_deref(),
                                    Some(&metrics),
                                    net_obs.as_deref(),
                                    duration_nanos(queue_wait),
                                );
                                metrics.on_served();
                            }
                            // The accept loop dropped the sender and the
                            // queue is drained: shutdown complete.
                            Err(_) => break,
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_metrics = Arc::clone(&metrics);
        let accept_thread = thread::Builder::new()
            .name("roap-tcp-accept".into())
            .spawn(move || {
                // Exiting this loop drops `conn_tx`, which is what tells the
                // workers no further connections will arrive.
                while !accept_shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            accept_metrics.on_accept();
                            accept_metrics.on_queued();
                            match conn_tx.try_send((stream, Instant::now())) {
                                Ok(()) => {}
                                Err(mpsc::TrySendError::Full((stream, _))) => {
                                    // Backpressure: tell the peer why before
                                    // hanging up, best-effort — it may already
                                    // be gone, which sheds just the same.
                                    accept_metrics.on_dequeued();
                                    accept_metrics.on_shed();
                                    let _ = stream.set_write_timeout(Some(POLL_INTERVAL));
                                    let _ = (&stream)
                                        .write_all(&RoapPdu::Status(RoapStatus::Busy).encode());
                                }
                                Err(mpsc::TrySendError::Disconnected(_)) => break,
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(POLL_INTERVAL);
                        }
                        // Transient per-connection accept failures (e.g. the
                        // peer reset before the hand-off) leave the listener
                        // healthy; keep accepting.
                        Err(_) => thread::sleep(POLL_INTERVAL),
                    }
                }
            })
            .expect("spawn accept thread");

        Ok(RoapTcpServer {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
            metrics,
            service,
            store: config.store,
        })
    }

    /// The address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of connections whose conversation has finished (served to
    /// disconnect, protocol failure, or drained at shutdown).
    pub fn connections_served(&self) -> u64 {
        self.metrics.served()
    }

    /// The server's connection-level counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Graceful shutdown: stop accepting new connections, answer every
    /// frame already received on in-flight connections, close them, and
    /// join all server threads. Returns once the last worker has exited.
    ///
    /// On a durable server ([`ServerConfig::store`]) the drained service is
    /// then flushed and snapshotted, so the next boot recovers from a
    /// compact snapshot without replaying a single event. Store failures at
    /// this point are best-effort (shutdown still completes); they stay
    /// visible through the store's own fault accessor.
    ///
    /// Dropping the server performs the same shutdown implicitly.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept_thread.take() {
            accept.join().expect("accept thread");
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread");
        }
        if let Some(store) = self.store.take() {
            // Workers are joined: the service is quiescent, the image is a
            // consistent cut of everything that was acknowledged.
            let _ = store.flush();
            let service = &self.service;
            let _ = store.snapshot(&|| service.state_image());
        }
    }
}

impl Drop for RoapTcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Serves ROAP on one established TCP connection until the peer disconnects:
/// buffers incoming bytes, slices them into envelope frames (frames may
/// arrive split across segments or several-per-segment), feeds each through
/// [`RiService::dispatch_at`] (or [`RiService::dispatch`] when `clock` is
/// `None`) and writes the response frames back in order.
///
/// This is the loop every [`RoapTcpServer`] worker runs; it is public so
/// tests and examples owning their own listener can serve a single
/// connection directly.
///
/// # Errors
///
/// * [`DrmError::Transport`] — the peer disconnected (the *normal* end of a
///   conversation, surfaced explicitly so callers never spin on a dead
///   connection), delivered no byte for `idle_timeout` (a half-open or
///   abandoned connection), took longer than [`DEFAULT_FRAME_TIMEOUT`] to
///   complete a frame it had started (a slowloris peer), or a socket
///   operation failed,
/// * [`DrmError::Roap`] — the peer sent bytes that are not a ROAP envelope;
///   a `Status` PDU naming the reason is written back before the
///   connection closes, mirroring [`RiService::dispatch_batch`]'s
///   stream-poisoning behaviour.
pub fn serve_connection(
    service: &RiService,
    stream: TcpStream,
    clock: Option<Timestamp>,
    idle_timeout: Duration,
) -> Result<(), DrmError> {
    serve_connection_inner(
        service,
        stream,
        clock,
        idle_timeout,
        DEFAULT_FRAME_TIMEOUT,
        &AtomicBool::new(false),
        None,
        None,
        None,
        0,
    )
}

/// [`serve_connection`] with the server's shutdown flag threaded through:
/// once the flag is set, the loop answers the complete frames it has
/// already buffered and then returns `Ok(())` instead of waiting for more —
/// unconditionally, so a peer parked mid-frame can never hold up
/// [`RoapTcpServer::shutdown`].
#[allow(clippy::too_many_arguments)]
fn serve_connection_inner(
    service: &RiService,
    mut stream: TcpStream,
    clock: Option<Timestamp>,
    idle_timeout: Duration,
    frame_timeout: Duration,
    shutdown: &AtomicBool,
    store: Option<&dyn RiJournal>,
    metrics: Option<&ServerMetrics>,
    obs: Option<&NetObs>,
    queue_wait_nanos: u64,
) -> Result<(), DrmError> {
    // The connection's hand-off wait is attributed to its first frame's
    // span (later frames on the same connection waited in no queue).
    let mut queue_wait_nanos = queue_wait_nanos;
    // The read timeout doubles as the shutdown/idle poll interval.
    stream
        .set_read_timeout(Some(POLL_INTERVAL))
        .map_err(|e| transport_err("set_read_timeout", e))?;
    stream
        .set_nodelay(true)
        .map_err(|e| transport_err("set_nodelay", e))?;

    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut last_byte_at = Instant::now();
    // When the first byte of a frame arrives, the whole frame must follow
    // within `frame_timeout`. Tracking this separately from `last_byte_at`
    // is the slowloris fix: a peer trickling one byte per `idle_timeout - ε`
    // resets the idle clock forever but can never reset this one.
    let mut frame_started_at: Option<Instant> = None;
    loop {
        // Answer every complete frame currently buffered.
        loop {
            match RoapPdu::frame_len(&buf) {
                Ok(Some(total)) if buf.len() >= total => {
                    // A durable server that can no longer persist must not
                    // keep acknowledging: on a latched store fault, stop
                    // this conversation *and* the whole server (the
                    // shutdown flag drains the other workers too).
                    if let Some(store) = store {
                        if let Err(e) = store.health() {
                            shutdown.store(true, Ordering::Relaxed);
                            return Err(e);
                        }
                    }
                    // Identity is read from the frame *before* dispatch (the bytes
                    // are drained after), the clock started right before it.
                    let span_seed = obs.map(|net_obs| {
                        let (mut span, cycles_before) = span_for_frame(&buf[..total], service);
                        span.queue_wait_nanos = std::mem::take(&mut queue_wait_nanos);
                        (net_obs, span, cycles_before, Instant::now())
                    });
                    let response = match clock {
                        Some(now) => service.dispatch_at(&buf[..total], now),
                        None => service.dispatch(&buf[..total]),
                    };
                    buf.drain(..total);
                    match span_seed {
                        None => stream
                            .write_all(&response)
                            .map_err(|e| transport_err("send response", e))?,
                        Some((net_obs, mut span, cycles_before, started)) => {
                            let dispatch = started.elapsed();
                            span.cycles = service.charged_cycles().saturating_sub(cycles_before);
                            let write_started = Instant::now();
                            let written = stream.write_all(&response);
                            net_obs.record_frame(dispatch, write_started.elapsed(), span);
                            written.map_err(|e| transport_err("send response", e))?;
                        }
                    }
                }
                // An incomplete frame: wait for the rest of it.
                Ok(_) => break,
                Err(e) => {
                    // Framing is lost for good — tell the peer why, then
                    // hang up.
                    let _ = stream.write_all(&RoapPdu::Status(RoapStatus::from(e)).encode());
                    return Err(DrmError::Roap(e));
                }
            }
        }

        // Whatever is left in `buf` after the frame loop is a partial frame;
        // its completion deadline started when its first byte arrived.
        if buf.is_empty() {
            frame_started_at = None;
        } else if frame_started_at.is_none() {
            frame_started_at = Some(Instant::now());
        }
        if let Some(started) = frame_started_at {
            if started.elapsed() >= frame_timeout {
                if let Some(m) = metrics {
                    m.on_reaped_frame();
                }
                return Err(DrmError::Transport(format!(
                    "partial frame not completed within {frame_timeout:?}, closing connection"
                )));
            }
        }

        if shutdown.load(Ordering::Relaxed) {
            // Drained: every complete frame received has been answered. A
            // partial trailing frame can never complete once we stop
            // reading, so it does not keep the connection (or the server's
            // shutdown) alive.
            return Ok(());
        }

        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(if buf.is_empty() {
                    DrmError::Transport("peer disconnected".into())
                } else {
                    DrmError::Transport(format!(
                        "peer disconnected mid-frame ({} bytes unparsed)",
                        buf.len()
                    ))
                });
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                last_byte_at = Instant::now();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if last_byte_at.elapsed() >= idle_timeout {
                    // Half-open peer or connect-and-say-nothing client: free
                    // the worker instead of letting it sit occupied forever.
                    if let Some(m) = metrics {
                        m.on_reaped_idle();
                    }
                    return Err(DrmError::Transport(format!(
                        "idle for {:?}, closing connection",
                        idle_timeout
                    )));
                }
            }
            Err(e) => return Err(transport_err("read", e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oma_drm::client::RoapClient;
    use oma_drm::roap::DeviceHello;
    use oma_pki::CertificationAuthority;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn service() -> Arc<RiService> {
        let mut rng = StdRng::seed_from_u64(0x7c9);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        Arc::new(RiService::new("ri", 384, &mut ca, &mut rng))
    }

    fn pinned() -> ServerConfig {
        ServerConfig {
            workers: 2,
            clock: Some(Timestamp::new(1_000)),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn metrics_display_is_byte_compatible_with_the_pre_registry_format() {
        // The metrics now live in an oma-obs registry, but MetricsSnapshot
        // and its Display line are a public, scrape-parsed surface — this
        // pins the exact bytes the pre-registry implementation emitted.
        let metrics = ServerMetrics::default();
        for _ in 0..4 {
            metrics.on_accept();
        }
        metrics.on_queued();
        metrics.on_queued();
        metrics.on_dequeued();
        metrics.on_shed();
        metrics.on_reaped_idle();
        metrics.on_served();
        metrics.on_reaped_frame();
        metrics.on_served();
        metrics.on_records_shipped(7);
        metrics.on_records_acked(5);
        metrics.set_follower_lag(2);
        metrics.set_epoch(3);
        assert_eq!(
            metrics.snapshot().to_string(),
            "accepted=4 served=2 active=1 (peak 4) reaped_idle=1 \
             reaped_frame=1 shed=1 queue_depth=1 (peak 2) \
             repl_shipped=7 repl_acked=5 repl_lag=2 epoch=3"
        );
    }

    #[test]
    fn hello_roundtrip_over_loopback() {
        let server = RoapTcpServer::bind(service(), pinned()).unwrap();
        let client = RoapClient::new(TcpTransport::connect(server.local_addr()).unwrap());
        let hello = client.hello(&DeviceHello::new("dev")).unwrap();
        assert_eq!(hello.ri_id, "ri");
        server.shutdown();
    }

    #[test]
    fn one_connection_carries_many_exchanges() {
        let server = RoapTcpServer::bind(service(), pinned()).unwrap();
        let client = RoapClient::new(TcpTransport::connect(server.local_addr()).unwrap());
        let mut sessions = Vec::new();
        for i in 0..5 {
            let hello = client
                .hello(&DeviceHello::new(&format!("dev-{i}")))
                .unwrap();
            sessions.push(hello.session_id);
        }
        sessions.dedup();
        assert_eq!(sessions.len(), 5, "each hello opened its own session");
        server.shutdown();
    }

    #[test]
    fn queued_connections_outnumbering_workers_are_all_served() {
        let service = service();
        let server = RoapTcpServer::bind(
            Arc::clone(&service),
            ServerConfig {
                workers: 1,
                clock: Some(Timestamp::new(1_000)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        // 6 concurrent clients against a single worker: connections queue at
        // the hand-off and every one still gets its answer.
        thread::scope(|scope| {
            for i in 0..6 {
                let addr = server.local_addr();
                scope.spawn(move || {
                    let client = RoapClient::new(TcpTransport::connect(addr).unwrap());
                    client
                        .hello(&DeviceHello::new(&format!("dev-{i}")))
                        .unwrap();
                });
            }
        });
        assert_eq!(service.pending_session_count(), 6);
        // Workers notice the hang-ups within a poll interval each.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while server.connections_served() < 6 && std::time::Instant::now() < deadline {
            thread::sleep(POLL_INTERVAL);
        }
        assert_eq!(server.connections_served(), 6);
        server.shutdown();
    }

    #[test]
    fn server_disconnect_is_a_transport_error_on_the_client() {
        let server = RoapTcpServer::bind(service(), pinned()).unwrap();
        let transport = TcpTransport::connect(server.local_addr()).unwrap();
        let client = RoapClient::new(transport);
        client.hello(&DeviceHello::new("dev")).unwrap();
        server.shutdown();
        // The pool is gone; the next roundtrip cannot complete.
        let err = client.hello(&DeviceHello::new("dev")).unwrap_err();
        assert!(matches!(err, DrmError::Transport(_)), "got {err:?}");
    }

    #[test]
    fn connection_loop_surfaces_peer_disconnect() {
        // Drive serve_connection directly: a client that hangs up must end
        // the loop with a clean Transport error, not leave it spinning.
        let service = service();
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let result = thread::scope(|scope| {
            let service = &service;
            let handle = scope.spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                serve_connection(
                    service,
                    stream,
                    Some(Timestamp::new(1_000)),
                    DEFAULT_IDLE_TIMEOUT,
                )
            });
            let client = RoapClient::new(TcpTransport::connect(addr).unwrap());
            client.hello(&DeviceHello::new("dev")).unwrap();
            drop(client);
            handle.join().expect("connection loop thread")
        });
        assert!(
            matches!(result, Err(DrmError::Transport(_))),
            "hang-up must end the loop with a Transport error, got {result:?}"
        );
    }

    #[test]
    fn non_roap_bytes_get_a_status_answer_and_a_hangup() {
        use oma_drm::roap::RoapError;
        let service = service();
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let (result, answer) = thread::scope(|scope| {
            let service = &service;
            let handle = scope.spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                serve_connection(service, stream, None, DEFAULT_IDLE_TIMEOUT)
            });
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
            let answer = read_frame(&mut stream);
            (handle.join().expect("connection loop thread"), answer)
        });
        assert_eq!(result, Err(DrmError::Roap(RoapError::Malformed)));
        let status = RoapPdu::decode(&answer.expect("status frame before hang-up")).unwrap();
        assert_eq!(
            status,
            RoapPdu::Status(RoapStatus::Roap(RoapError::Malformed))
        );
    }

    #[test]
    fn shutdown_completes_despite_a_parked_partial_frame() {
        // A peer that writes half a header and then goes silent (without
        // closing) must not be able to hold up graceful shutdown.
        let server = RoapTcpServer::bind(service(), pinned()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"ROAP\x01").unwrap(); // valid magic, then nothing
        thread::sleep(POLL_INTERVAL * 4); // let a worker pick it up
        let started = Instant::now();
        server.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shutdown must drain, not wait for the missing frame bytes"
        );
    }

    #[test]
    fn idle_connections_are_reaped_and_free_their_worker() {
        let service = service();
        let server = RoapTcpServer::bind(
            Arc::clone(&service),
            ServerConfig {
                workers: 1,
                clock: Some(Timestamp::new(1_000)),
                idle_timeout: Duration::from_millis(100),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        // A connect-and-say-nothing client occupies the only worker...
        let silent = TcpStream::connect(server.local_addr()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.connections_served() < 1 && Instant::now() < deadline {
            thread::sleep(POLL_INTERVAL);
        }
        // ...until the idle timeout reaps it, after which the next client
        // is served normally.
        assert_eq!(server.connections_served(), 1);
        let client = RoapClient::new(TcpTransport::connect(server.local_addr()).unwrap());
        assert_eq!(client.hello(&DeviceHello::new("dev")).unwrap().ri_id, "ri");
        drop(silent);
        server.shutdown();
    }

    #[test]
    fn durable_bind_on_a_fresh_store_survives_a_hard_kill() {
        use oma_drm::client::RoapClient;
        use oma_drm::DrmAgent;
        use oma_store::RiStore;

        let mut rng = StdRng::seed_from_u64(0xdead);
        let mut ca = oma_pki::CertificationAuthority::new("cmla", 384, &mut rng);
        let service = Arc::new(RiService::new("ri", 384, &mut ca, &mut rng));
        let store = Arc::new(RiStore::in_memory());
        // The one-liner path: no manual genesis snapshot — bind must write
        // one itself, or everything journaled afterwards is unrecoverable.
        let server = RoapTcpServer::bind(
            Arc::clone(&service),
            ServerConfig::durable(Arc::clone(&store) as Arc<dyn oma_drm::journal::RiJournal>)
                .with_clock(Timestamp::new(1_000)),
        )
        .unwrap();
        let mut agent = DrmAgent::new("phone-001", 384, &mut ca, &mut rng);
        let client = RoapClient::new(TcpTransport::connect(server.local_addr()).unwrap());
        agent.register_via(&client, Timestamp::new(1_000)).unwrap();
        drop(client);
        // Hard kill: no graceful shutdown, no final snapshot. (The leaked
        // server threads die with the test process.)
        std::mem::forget(server);

        let recovered = RiService::recover(&store).expect("fresh-store bind wrote a genesis");
        assert!(
            recovered.is_registered("phone-001"),
            "journaled registration must survive a hard kill"
        );
    }

    #[test]
    fn durable_server_stops_acknowledging_after_a_store_fault() {
        use oma_drm::client::RoapClient;
        use oma_store::{RiStore, StoreError};

        let mut rng = StdRng::seed_from_u64(0xfa_17);
        let mut ca = oma_pki::CertificationAuthority::new("cmla", 384, &mut rng);
        let service = Arc::new(RiService::new("ri", 384, &mut ca, &mut rng));
        let store = Arc::new(RiStore::in_memory());
        let server = RoapTcpServer::bind(
            Arc::clone(&service),
            ServerConfig::durable(Arc::clone(&store) as Arc<dyn oma_drm::journal::RiJournal>)
                .with_clock(Timestamp::new(1_000)),
        )
        .unwrap();

        let client = RoapClient::new(TcpTransport::connect(server.local_addr()).unwrap());
        client.hello(&DeviceHello::new("dev-ok")).unwrap();

        // Latch a fault: an event whose record no decoder would accept is
        // refused by the store (the wire's own body cap keeps such events
        // off the TCP path, so inject it directly — any backend I/O error
        // latches the same way).
        store.record(
            &oma_drm::RiEvent::SessionOpened {
                session_id: 99,
                device_id: "x".repeat(2 << 20),
                ri_nonce: vec![0; 14],
                opened_at: Timestamp::new(0),
            },
            &|| [0; 32],
        );
        assert!(matches!(store.fault(), Some(StoreError::RecordTooLarge(_))));

        // The server must now refuse further work instead of acknowledging
        // registrations it cannot persist: the open connection is dropped
        // on its next frame, and the listener winds down.
        let err = client.hello(&DeviceHello::new("dev")).unwrap_err();
        assert!(matches!(err, DrmError::Transport(_)), "got {err:?}");
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut refused = false;
        while Instant::now() < deadline {
            let fresh = TcpTransport::connect(server.local_addr())
                .map(RoapClient::new)
                .and_then(|c| c.hello(&DeviceHello::new("late")));
            if fresh.is_err() {
                refused = true;
                break;
            }
            thread::sleep(POLL_INTERVAL);
        }
        assert!(refused, "a faulted durable server must stop serving");
        server.shutdown();
    }

    #[test]
    fn client_deadline_fires_against_a_hung_server() {
        // A listener that accepts and then never replies: without the
        // roundtrip deadline this hangs the client forever.
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let transport =
            TcpTransport::connect_with_deadline(addr, Some(Duration::from_millis(300))).unwrap();
        let (_held, _) = listener.accept().unwrap();
        let client = RoapClient::new(transport);
        let started = Instant::now();
        let err = client.hello(&DeviceHello::new("dev")).unwrap_err();
        assert!(matches!(err, DrmError::Transport(_)), "got {err:?}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "deadline must fire, not block forever"
        );
    }

    #[test]
    fn connect_flood_is_shed_with_busy_when_the_queue_fills() {
        let service = service();
        let server = RoapTcpServer::bind(
            Arc::clone(&service),
            ServerConfig {
                workers: 1,
                queue_depth: 1,
                clock: Some(Timestamp::new(1_000)),
                idle_timeout: Duration::from_secs(30),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        // Occupy the only worker with a connection that says nothing...
        let _occupier = TcpStream::connect(server.local_addr()).unwrap();
        thread::sleep(POLL_INTERVAL * 4);
        // ...then flood: with one queue slot, most arrivals must be shed
        // with a Busy status instead of piling up unserved.
        let mut busy = 0;
        for i in 0..8 {
            // Short client deadline: the one connection that *does* win the
            // queue slot is never served (the worker is occupied), and must
            // not stall the flood for the default 30s.
            let transport = TcpTransport::connect_with_deadline(
                server.local_addr(),
                Some(Duration::from_millis(500)),
            )
            .unwrap();
            let client = RoapClient::new(transport);
            if let Err(DrmError::Busy) = client.hello(&DeviceHello::new(&format!("flood-{i}"))) {
                busy += 1;
            }
        }
        assert!(busy >= 1, "a bounded queue must shed under flood");
        let snapshot = server.metrics().snapshot();
        assert!(snapshot.shed >= 1, "metrics: {snapshot}");
        assert!(
            snapshot.peak_queue_depth <= 2,
            "queue must stay bounded: {snapshot}"
        );
        server.shutdown();
    }

    #[test]
    fn slowloris_peer_is_reaped_by_the_frame_deadline() {
        let service = service();
        let server = RoapTcpServer::bind(
            Arc::clone(&service),
            ServerConfig {
                workers: 1,
                clock: Some(Timestamp::new(1_000)),
                // Generous idle timeout: each trickled byte resets the idle
                // clock, so only the frame deadline can save the worker.
                idle_timeout: Duration::from_secs(600),
                frame_timeout: Duration::from_millis(300),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let frame = RoapPdu::DeviceHello(DeviceHello::new("slow")).encode();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let started = Instant::now();
        // Trickle one byte per 100ms — never idle, never a complete frame.
        let mut cut_off = false;
        for byte in &frame {
            if stream.write_all(&[*byte]).is_err() {
                cut_off = true;
                break;
            }
            thread::sleep(Duration::from_millis(100));
            if server.connections_served() >= 1 {
                cut_off = true;
                break;
            }
        }
        assert!(
            cut_off && started.elapsed() < Duration::from_secs(5),
            "the frame deadline must reap the slowloris"
        );
        let snapshot = server.metrics().snapshot();
        assert_eq!(snapshot.reaped_frame, 1, "metrics: {snapshot}");
        // The freed worker serves the next honest client.
        let client = RoapClient::new(TcpTransport::connect(server.local_addr()).unwrap());
        assert_eq!(client.hello(&DeviceHello::new("dev")).unwrap().ri_id, "ri");
        server.shutdown();
    }

    #[test]
    fn read_frame_reassembles_one_byte_writes() {
        let frame = RoapPdu::DeviceHello(DeviceHello::new("dev")).encode();
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let received = thread::scope(|scope| {
            let frame = &frame;
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.set_nodelay(true).unwrap();
                for byte in frame.iter() {
                    stream.write_all(&[*byte]).unwrap();
                }
            });
            let (mut stream, _) = listener.accept().unwrap();
            read_frame(&mut stream).unwrap()
        });
        assert_eq!(received, frame);
    }
}
