//! The readiness event loop: one thread, tens of thousands of connections.
//!
//! [`RoapEventServer`] is the event-driven sibling of
//! [`RoapTcpServer`](crate::RoapTcpServer), behind the same
//! [`ServerConfig`] surface. Where the thread backend burns one blocked
//! worker per connection, this backend parks every connection as a little
//! state — a [`Connection`] with its
//! [`FrameMachine`](crate::conn::FrameMachine) — and one thread
//! multiplexes them all over a [`Poller`]:
//!
//! ```text
//!             ┌────────────── epoll wait (≤25ms tick) ──────────────┐
//!             ▼                                                     │
//!   listener readable ─▶ accept* ─▶ register(READ)                  │
//!   conn readable ─▶ fill ─▶ next_frame* ─▶ dispatch_at ─▶ queue ─▶ flush
//!   conn writable ─▶ flush ─▶ (drained? READ : READ|WRITE)          │
//!             │                                                     │
//!             └─▶ deadline wheel sweep ─▶ reap idle / slowloris ────┘
//! ```
//!
//! Concurrency is therefore *connection-count*-bound, not worker-bound:
//! `ServerConfig::workers` is ignored here, and the 10k-mostly-idle fleet
//! scenario in `oma-load` runs against exactly this property. Dispatching
//! still happens inline on the loop thread — the Rights Issuer's handlers
//! are milliseconds even with full-size RSA, and strict in-arrival-order
//! dispatch is what keeps event-loop runs byte-identical to the
//! thread-pool and in-process references.

use crate::conn::{Connection, Expiry};
use crate::poll::{Event, Interest, Poller};
use crate::{span_for_frame, transport_err, NetObs, ServerConfig, ServerMetrics, POLL_INTERVAL};
use oma_drm::journal::RiJournal;
use oma_drm::service::RiService;
use oma_drm::wire::{RoapPdu, RoapStatus};
use oma_drm::DrmError;
use oma_pki::Timestamp;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// The listener's poller token; connections start at 1.
const LISTENER_TOKEN: u64 = 0;

/// Wheel granularity: deadlines are detected at most one slot late.
const WHEEL_TICK: Duration = Duration::from_millis(100);

/// Wheel span = `WHEEL_TICK * WHEEL_SLOTS` ≈ 102s; deadlines beyond it
/// (a 10-minute idle timeout, say) simply take another revolution.
const WHEEL_SLOTS: usize = 1024;

/// How long graceful drain keeps retrying partial response writes before
/// giving up on a peer that stopped reading.
const DRAIN_BUDGET: Duration = Duration::from_secs(2);

/// A timer wheel over connection tokens: `insert` files a token under the
/// slot its deadline lands in, `sweep` drains every slot the clock has
/// passed since the last sweep. Deadlines farther out than the wheel span
/// park in their modular slot and are simply re-filed when it fires early
/// — the caller re-checks the real deadline anyway, so the wheel only has
/// to be *pessimistic*, never exact.
struct DeadlineWheel {
    slots: Vec<Vec<u64>>,
    cursor: usize,
    last_sweep: Instant,
}

impl DeadlineWheel {
    fn new(now: Instant) -> DeadlineWheel {
        DeadlineWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            last_sweep: now,
        }
    }

    fn insert(&mut self, token: u64, due: Instant, now: Instant) {
        let ticks = (due.saturating_duration_since(now).as_nanos() / WHEEL_TICK.as_nanos())
            .clamp(1, (WHEEL_SLOTS - 1) as u128) as usize;
        let slot = (self.cursor + ticks) % WHEEL_SLOTS;
        self.slots[slot].push(token);
    }

    /// Returns every token filed in a slot the clock has passed. The
    /// caller decides: reap, or re-[`insert`](DeadlineWheel::insert) at
    /// the real deadline.
    fn sweep(&mut self, now: Instant) -> Vec<u64> {
        let elapsed = now.saturating_duration_since(self.last_sweep);
        let ticks = (elapsed.as_nanos() / WHEEL_TICK.as_nanos()) as usize;
        if ticks == 0 {
            return Vec::new();
        }
        self.last_sweep += WHEEL_TICK * ticks as u32;
        let mut due = Vec::new();
        // More elapsed ticks than slots means every slot fired at least
        // once; one full revolution covers them all.
        for _ in 0..ticks.min(WHEEL_SLOTS) {
            self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
            due.append(&mut self.slots[self.cursor]);
        }
        due
    }
}

/// A ROAP server whose core is a single-threaded readiness event loop —
/// same [`ServerConfig`]/serve surface as
/// [`RoapTcpServer`](crate::RoapTcpServer), same byte-identical protocol
/// behaviour, but concurrency bound by [`ServerConfig::max_connections`]
/// instead of the worker count.
///
/// ```
/// # use oma_drm::client::RoapClient;
/// # use oma_drm::roap::DeviceHello;
/// # use oma_drm::RiService;
/// # use oma_net::{RoapEventServer, ServerConfig, TcpTransport};
/// # use oma_pki::{CertificationAuthority, Timestamp};
/// # use rand::SeedableRng;
/// # use std::sync::Arc;
/// # fn main() -> Result<(), oma_drm::DrmError> {
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// # let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
/// # let service = Arc::new(RiService::new("ri.example.com", 384, &mut ca, &mut rng));
/// let server = RoapEventServer::bind(
///     service,
///     ServerConfig::default().with_clock(Timestamp::new(1_000)),
/// )?;
/// let client = RoapClient::new(TcpTransport::connect(server.local_addr())?);
/// assert_eq!(client.hello(&DeviceHello::new("dev"))?.ri_id, "ri.example.com");
/// # server.shutdown();
/// # Ok(()) }
/// ```
pub struct RoapEventServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    loop_thread: Option<JoinHandle<()>>,
    metrics: Arc<ServerMetrics>,
    service: Arc<RiService>,
    store: Option<Arc<dyn RiJournal>>,
}

impl std::fmt::Debug for RoapEventServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoapEventServer")
            .field("local_addr", &self.local_addr)
            .field("durable", &self.store.is_some())
            .finish_non_exhaustive()
    }
}

impl RoapEventServer {
    /// Binds to an ephemeral loopback port (`127.0.0.1:0`).
    ///
    /// # Errors
    ///
    /// [`DrmError::Transport`] when the listener or poller cannot be set
    /// up; [`DrmError::Store`] when the durable boot snapshot fails.
    pub fn bind(service: Arc<RiService>, config: ServerConfig) -> Result<Self, DrmError> {
        Self::bind_addr(service, (Ipv4Addr::LOCALHOST, 0), config)
    }

    /// Binds to an explicit address.
    ///
    /// # Errors
    ///
    /// See [`RoapEventServer::bind`].
    pub fn bind_addr<A: ToSocketAddrs>(
        service: Arc<RiService>,
        addr: A,
        config: ServerConfig,
    ) -> Result<Self, DrmError> {
        let listener = TcpListener::bind(addr).map_err(|e| transport_err("bind", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| transport_err("set_nonblocking", e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| transport_err("local_addr", e))?;

        // Durable mode mirrors the thread backend exactly: journal attach
        // plus boot snapshot before the first accept (see
        // `RoapTcpServer::bind_addr` for the full rationale).
        if let Some(store) = &config.store {
            service.set_journal(Arc::clone(store));
            store.snapshot(&|| service.state_image())?;
        }

        let poller = Poller::new().map_err(|e| transport_err("poller", e))?;
        poller
            .register(&listener, LISTENER_TOKEN, Interest::READ)
            .map_err(|e| transport_err("register listener", e))?;

        let shutdown = Arc::new(AtomicBool::new(false));
        // Same registry contract as the thread backend: obs on puts the
        // counters in the shared surface, off keeps them private.
        let metrics = Arc::new(match config.obs.obs() {
            Some(obs) => ServerMetrics::in_registry(obs.registry()),
            None => ServerMetrics::default(),
        });
        let obs = config.obs.obs().map(|obs| Arc::new(NetObs::new(obs)));
        let mut core = EventLoop {
            poller,
            listener,
            service: Arc::clone(&service),
            clock: config.clock,
            idle_timeout: config.idle_timeout,
            frame_timeout: config.frame_timeout,
            max_connections: config.max_connections.max(1),
            store: config.store.clone(),
            metrics: Arc::clone(&metrics),
            shutdown: Arc::clone(&shutdown),
            conns: HashMap::new(),
            wheel: DeadlineWheel::new(Instant::now()),
            next_token: LISTENER_TOKEN + 1,
            obs,
        };
        let loop_thread = thread::Builder::new()
            .name("roap-event-loop".into())
            .spawn(move || core.run())
            .expect("spawn event loop thread");

        Ok(RoapEventServer {
            local_addr,
            shutdown,
            loop_thread: Some(loop_thread),
            metrics,
            service,
            store: config.store,
        })
    }

    /// The address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of connections whose conversation has finished.
    pub fn connections_served(&self) -> u64 {
        self.metrics.served()
    }

    /// The server's connection-level counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Graceful shutdown: stop accepting, answer the frames already
    /// received, flush what the peers will read (bounded), close
    /// everything, join the loop thread. On a durable server the drained
    /// service is then flushed and snapshotted, exactly like
    /// [`RoapTcpServer::shutdown`](crate::RoapTcpServer::shutdown).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.loop_thread.take() {
            handle.join().expect("event loop thread");
        }
        if let Some(store) = self.store.take() {
            let _ = store.flush();
            let service = &self.service;
            let _ = store.snapshot(&|| service.state_image());
        }
    }
}

impl Drop for RoapEventServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Everything the loop thread owns. No locks anywhere: the only shared
/// state is the shutdown flag and the metrics atomics.
struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    service: Arc<RiService>,
    clock: Option<Timestamp>,
    idle_timeout: Duration,
    frame_timeout: Duration,
    max_connections: usize,
    store: Option<Arc<dyn RiJournal>>,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
    conns: HashMap<u64, Connection>,
    wheel: DeadlineWheel,
    next_token: u64,
    obs: Option<Arc<NetObs>>,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        // One loop-owned scratch buffer serves every connection's reads.
        let mut scratch = vec![0u8; 16 * 1024];
        while !self.shutdown.load(Ordering::Relaxed) {
            // The tick bounds shutdown latency and paces wheel sweeps.
            if self.poller.wait(&mut events, Some(POLL_INTERVAL)).is_err() {
                break;
            }
            // Tokens can die mid-batch (a close invalidates later events
            // for the same token); handlers tolerate missing entries.
            for &ev in &events {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready();
                } else {
                    self.conn_ready(ev, &mut scratch);
                }
            }
            self.reap_due();
        }
        self.drain();
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.metrics.on_accept();
                    if self.conns.len() >= self.max_connections {
                        // Shed exactly like the thread backend's full
                        // queue: a best-effort Busy status, then hang up.
                        self.metrics.on_shed();
                        let _ = stream.set_nonblocking(true);
                        let _ = (&stream).write_all(&RoapPdu::Status(RoapStatus::Busy).encode());
                        continue;
                    }
                    let conn = match Connection::new(stream) {
                        Ok(conn) => conn,
                        Err(_) => {
                            self.metrics.on_served();
                            continue;
                        }
                    };
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(conn.stream(), token, Interest::READ)
                        .is_err()
                    {
                        self.metrics.on_served();
                        continue;
                    }
                    let now = Instant::now();
                    self.wheel.insert(
                        token,
                        conn.next_due(self.idle_timeout, self.frame_timeout),
                        now,
                    );
                    // The readiness core has no hand-off queue: its
                    // queue-wait is zero by construction, recorded anyway
                    // (one sample per connection, like the thread core)
                    // so the two backends' distributions are comparable.
                    if let Some(obs) = &self.obs {
                        obs.record_queue_wait(Duration::ZERO);
                    }
                    self.conns.insert(token, conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                // Transient accept failure; the listener stays registered.
                Err(_) => return,
            }
        }
    }

    fn conn_ready(&mut self, ev: Event, scratch: &mut [u8]) {
        let Some(conn) = self.conns.get_mut(&ev.token) else {
            return;
        };

        let mut peer_open = true;
        if ev.readable && !conn.is_closing() {
            match conn.fill(scratch) {
                Ok(open) => peer_open = open,
                Err(_) => {
                    self.close(ev.token, None);
                    return;
                }
            }
            if !self.dispatch_buffered(ev.token) {
                return;
            }
        }

        let Some(conn) = self.conns.get_mut(&ev.token) else {
            return;
        };
        match conn.flush() {
            Ok(true) => {
                if conn.is_closing() || !peer_open {
                    self.close(ev.token, None);
                    return;
                }
                // Fully drained: back to read-only interest (a no-op most
                // of the time, but required after a partial-write episode).
                let _ = self
                    .poller
                    .reregister(conn.stream(), ev.token, Interest::READ);
            }
            Ok(false) => {
                if !peer_open && !conn.is_closing() {
                    // EOF already seen: whatever flushes, flushes — but
                    // nothing new will be dispatched.
                    conn.set_closing();
                }
                let _ = self
                    .poller
                    .reregister(conn.stream(), ev.token, Interest::READ_WRITE);
            }
            Err(_) => self.close(ev.token, None),
        }
    }

    /// Answers every complete frame buffered on `token`. Returns `false`
    /// when the connection was closed in the process.
    fn dispatch_buffered(&mut self, token: u64) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            match conn.machine().next_frame() {
                Ok(Some(frame)) => {
                    // A durable server that can no longer persist must not
                    // keep acknowledging (same contract as the thread
                    // backend): stop this conversation and the whole
                    // server.
                    if let Some(store) = &self.store {
                        if store.health().is_err() {
                            self.shutdown.store(true, Ordering::Relaxed);
                            self.close(token, None);
                            return false;
                        }
                    }
                    // Span identity is read before dispatch, the clock
                    // started right next to it (see the thread core).
                    let span_seed = self.obs.as_ref().map(|net_obs| {
                        let (mut span, cycles_before) = span_for_frame(&frame, &self.service);
                        span.queue_wait_nanos = 0;
                        (Arc::clone(net_obs), span, cycles_before, Instant::now())
                    });
                    let response = match self.clock {
                        Some(now) => self.service.dispatch_at(&frame, now),
                        None => self.service.dispatch(&frame),
                    };
                    let dispatched_at = Instant::now();
                    let Some(conn) = self.conns.get_mut(&token) else {
                        return false;
                    };
                    match span_seed {
                        None => conn.machine().queue_response(&response),
                        Some((net_obs, mut span, cycles_before, started)) => {
                            span.cycles =
                                self.service.charged_cycles().saturating_sub(cycles_before);
                            // "Write-back" here is the response-buffer
                            // enqueue: the socket flush is shared across
                            // connections and cannot be attributed per
                            // frame.
                            let write_started = Instant::now();
                            conn.machine().queue_response(&response);
                            net_obs.record_frame(
                                dispatched_at.duration_since(started),
                                write_started.elapsed(),
                                span,
                            );
                        }
                    }
                }
                Ok(None) => {
                    conn.note_frame_progress();
                    return true;
                }
                Err(e) => {
                    // Framing lost for good: tell the peer why, flush,
                    // close.
                    conn.machine()
                        .queue_response(&RoapPdu::Status(RoapStatus::from(e)).encode());
                    conn.set_closing();
                    return true;
                }
            }
        }
    }

    /// Sweeps the deadline wheel: reap expired connections, re-file live
    /// ones at their real next deadline.
    fn reap_due(&mut self) {
        let now = Instant::now();
        for token in self.wheel.sweep(now) {
            let Some(conn) = self.conns.get(&token) else {
                continue; // closed since it was filed
            };
            match conn.expired(now, self.idle_timeout, self.frame_timeout) {
                Some(expiry) => self.close(token, Some(expiry)),
                None => {
                    let due = conn.next_due(self.idle_timeout, self.frame_timeout);
                    self.wheel.insert(token, due, now);
                }
            }
        }
    }

    fn close(&mut self, token: u64, expiry: Option<Expiry>) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream());
            match expiry {
                Some(Expiry::Idle) => self.metrics.on_reaped_idle(),
                Some(Expiry::PartialFrame) => self.metrics.on_reaped_frame(),
                None => {}
            }
            self.metrics.on_served();
        }
    }

    /// Graceful drain: answer every frame already buffered, push the
    /// responses for as long as peers keep reading (bounded by
    /// [`DRAIN_BUDGET`]), close everything. A peer parked mid-frame can
    /// never complete it once we stop reading, so — like the thread
    /// backend — it simply gets closed.
    fn drain(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        let store_healthy = self
            .store
            .as_ref()
            .is_none_or(|store| store.health().is_ok());
        if store_healthy {
            for token in tokens {
                self.dispatch_buffered(token);
            }
        }
        let deadline = Instant::now() + DRAIN_BUDGET;
        while Instant::now() < deadline {
            let mut pending = false;
            let mut dead = Vec::new();
            for (&token, conn) in self.conns.iter_mut() {
                match conn.flush() {
                    Ok(true) => {}
                    Ok(false) => pending = true,
                    Err(_) => dead.push(token),
                }
            }
            for token in dead {
                self.close(token, None);
            }
            if !pending {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        for token in self.conns.keys().copied().collect::<Vec<u64>>() {
            self.close(token, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_frame, TcpTransport};
    use oma_drm::client::RoapClient;
    use oma_drm::roap::DeviceHello;
    use oma_pki::CertificationAuthority;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::io::Read;
    use std::net::TcpStream;

    fn service() -> Arc<RiService> {
        let mut rng = StdRng::seed_from_u64(0x7c9);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        Arc::new(RiService::new("ri", 384, &mut ca, &mut rng))
    }

    fn pinned() -> ServerConfig {
        ServerConfig::default().with_clock(Timestamp::new(1_000))
    }

    #[test]
    fn hello_roundtrip() {
        let server = RoapEventServer::bind(service(), pinned()).unwrap();
        let client = RoapClient::new(TcpTransport::connect(server.local_addr()).unwrap());
        assert_eq!(client.hello(&DeviceHello::new("dev")).unwrap().ri_id, "ri");
        server.shutdown();
    }

    #[test]
    fn one_connection_carries_many_exchanges() {
        let server = RoapEventServer::bind(service(), pinned()).unwrap();
        let client = RoapClient::new(TcpTransport::connect(server.local_addr()).unwrap());
        let mut sessions = Vec::new();
        for i in 0..5 {
            sessions.push(
                client
                    .hello(&DeviceHello::new(&format!("dev-{i}")))
                    .unwrap()
                    .session_id,
            );
        }
        sessions.dedup();
        assert_eq!(sessions.len(), 5);
        server.shutdown();
    }

    #[test]
    fn many_concurrent_connections_on_one_thread() {
        let server = RoapEventServer::bind(service(), pinned()).unwrap();
        let addr = server.local_addr();
        // Far more simultaneous connections than any worker pool default:
        // all parked at once, then all driven.
        let transports: Vec<TcpTransport> = (0..64)
            .map(|_| TcpTransport::connect(addr).unwrap())
            .collect();
        for (i, transport) in transports.iter().enumerate() {
            let client = RoapClient::new(transport);
            assert_eq!(
                client
                    .hello(&DeviceHello::new(&format!("dev-{i}")))
                    .unwrap()
                    .ri_id,
                "ri"
            );
        }
        let snapshot = server.metrics().snapshot();
        assert!(snapshot.peak_active >= 64, "metrics: {snapshot}");
        drop(transports);
        server.shutdown();
    }

    #[test]
    fn one_byte_writes_are_reassembled() {
        let server = RoapEventServer::bind(service(), pinned()).unwrap();
        let frame = RoapPdu::DeviceHello(DeviceHello::new("dev")).encode();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        for byte in &frame {
            stream.write_all(&[*byte]).unwrap();
        }
        let response = read_frame(&mut stream).unwrap();
        assert!(matches!(
            RoapPdu::decode(&response).unwrap(),
            RoapPdu::RiHello(_)
        ));
        server.shutdown();
    }

    #[test]
    fn non_roap_bytes_get_a_status_answer_and_a_hangup() {
        use oma_drm::roap::RoapError;
        let server = RoapEventServer::bind(service(), pinned()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let answer = read_frame(&mut stream).unwrap();
        assert_eq!(
            RoapPdu::decode(&answer).unwrap(),
            RoapPdu::Status(RoapStatus::Roap(RoapError::Malformed))
        );
        // And the server hangs up after the status.
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped() {
        let service = service();
        let server = RoapEventServer::bind(
            Arc::clone(&service),
            ServerConfig {
                idle_timeout: Duration::from_millis(150),
                ..pinned()
            },
        )
        .unwrap();
        let mut silent = TcpStream::connect(server.local_addr()).unwrap();
        // The reap closes the socket: our next read sees EOF.
        let mut buf = [0u8; 1];
        silent
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let n = silent.read(&mut buf).unwrap();
        assert_eq!(n, 0, "reap must close the idle connection");
        let snapshot = server.metrics().snapshot();
        assert_eq!(snapshot.reaped_idle, 1, "metrics: {snapshot}");
        server.shutdown();
    }

    #[test]
    fn slowloris_is_reaped_by_the_frame_deadline() {
        let service = service();
        let server = RoapEventServer::bind(
            Arc::clone(&service),
            ServerConfig {
                idle_timeout: Duration::from_secs(600),
                frame_timeout: Duration::from_millis(300),
                ..pinned()
            },
        )
        .unwrap();
        let frame = RoapPdu::DeviceHello(DeviceHello::new("slow")).encode();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Trickle a byte every 100ms: never idle, never complete.
        let mut reaped = false;
        for byte in &frame {
            if stream.write_all(&[*byte]).is_err() {
                reaped = true;
                break;
            }
            thread::sleep(Duration::from_millis(100));
            let mut buf = [0u8; 1];
            if let Ok(0) = stream.peek(&mut buf) {
                reaped = true;
                break;
            }
        }
        assert!(reaped, "slowloris must be cut off mid-frame");
        let snapshot = server.metrics().snapshot();
        assert_eq!(snapshot.reaped_frame, 1, "metrics: {snapshot}");
        // The loop is free again for an honest client.
        let client = RoapClient::new(TcpTransport::connect(server.local_addr()).unwrap());
        assert_eq!(client.hello(&DeviceHello::new("dev")).unwrap().ri_id, "ri");
        server.shutdown();
    }

    #[test]
    fn connections_beyond_the_cap_are_shed_with_busy() {
        let server = RoapEventServer::bind(
            service(),
            ServerConfig {
                max_connections: 2,
                ..pinned()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let _a = TcpTransport::connect(addr).unwrap();
        let _b = TcpTransport::connect(addr).unwrap();
        // Park the first two, then watch a third get the Busy status.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut shed = false;
        while Instant::now() < deadline && !shed {
            let extra = TcpTransport::connect(addr).unwrap();
            match RoapClient::new(extra).hello(&DeviceHello::new("late")) {
                Err(DrmError::Busy) => shed = true,
                // The cap is enforced when the loop *accepts*, so a racing
                // connect may still sneak in while a or b is pending
                // registration; retry.
                _ => thread::sleep(Duration::from_millis(20)),
            }
        }
        assert!(shed, "over-cap connection must see DrmError::Busy");
        assert!(server.metrics().snapshot().shed >= 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_completes_despite_a_parked_partial_frame() {
        let server = RoapEventServer::bind(service(), pinned()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"ROAP\x01").unwrap();
        thread::sleep(POLL_INTERVAL * 4);
        let started = Instant::now();
        server.shutdown();
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn shutdown_answers_buffered_frames() {
        let server = RoapEventServer::bind(service(), pinned()).unwrap();
        let transport = TcpTransport::connect(server.local_addr()).unwrap();
        let client = RoapClient::new(transport);
        client.hello(&DeviceHello::new("dev")).unwrap();
        server.shutdown();
        let err = client.hello(&DeviceHello::new("dev")).unwrap_err();
        assert!(matches!(err, DrmError::Transport(_)), "got {err:?}");
    }

    #[test]
    fn durable_server_stops_acknowledging_after_a_store_fault() {
        use oma_store::{RiStore, StoreError};

        let mut rng = StdRng::seed_from_u64(0xfa_17);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let service = Arc::new(RiService::new("ri", 384, &mut ca, &mut rng));
        let store = Arc::new(RiStore::in_memory());
        let server = RoapEventServer::bind(
            Arc::clone(&service),
            ServerConfig::durable(Arc::clone(&store) as Arc<dyn RiJournal>)
                .with_clock(Timestamp::new(1_000)),
        )
        .unwrap();

        let client = RoapClient::new(TcpTransport::connect(server.local_addr()).unwrap());
        client.hello(&DeviceHello::new("dev-ok")).unwrap();

        store.record(
            &oma_drm::RiEvent::SessionOpened {
                session_id: 99,
                device_id: "x".repeat(2 << 20),
                ri_nonce: vec![0; 14],
                opened_at: Timestamp::new(0),
            },
            &|| [0; 32],
        );
        assert!(matches!(store.fault(), Some(StoreError::RecordTooLarge(_))));

        let err = client.hello(&DeviceHello::new("dev")).unwrap_err();
        assert!(matches!(err, DrmError::Transport(_)), "got {err:?}");
        server.shutdown();
    }

    #[test]
    fn deadline_wheel_fires_and_refiles() {
        let t0 = Instant::now();
        let mut wheel = DeadlineWheel::new(t0);
        wheel.insert(1, t0 + Duration::from_millis(150), t0);
        wheel.insert(2, t0 + Duration::from_secs(500), t0); // beyond span
        assert!(wheel.sweep(t0 + Duration::from_millis(50)).is_empty());
        let due = wheel.sweep(t0 + Duration::from_millis(350));
        assert!(due.contains(&1), "past deadline must fire: {due:?}");
        // The far-out token fires (pessimistically) within one revolution.
        let all = wheel.sweep(t0 + Duration::from_secs(200));
        assert!(all.contains(&2));
    }
}
