//! OS readiness notification for the event loop.
//!
//! [`Poller`] is the thinnest possible wrapper over the platform's
//! readiness API: register a socket under a `u64` token, block in
//! [`Poller::wait`] until some registered socket is readable/writable,
//! get the tokens back. Level-triggered semantics throughout — a socket
//! that still has unread bytes (or writable buffer space) keeps showing
//! up, so the event loop never needs to drain-to-`WouldBlock` on pain of
//! losing a wakeup, only for throughput.
//!
//! On Linux this is epoll, reached through a four-function `extern "C"`
//! shim (`epoll_create1`/`epoll_ctl`/`epoll_wait`/`close`) — the vendored
//! std-only rule leaves no libc crate, but glibc itself is already linked
//! under every `std` binary, so declaring the symbols is enough. The shim
//! is the crate's only `#[allow(unsafe_code)]` island.
//!
//! Elsewhere the fallback poller keeps the same contract degenerately: it
//! sleeps out the timeout slice and reports every registered token ready.
//! The connection layer treats readiness as a hint and reads until
//! `WouldBlock` anyway, so spurious readiness costs syscalls, never
//! correctness.

use std::io;
use std::os::fd::AsRawFd;
use std::time::Duration;

/// Which readiness directions a registration asks to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the socket has bytes to read (or the peer hung up).
    pub readable: bool,
    /// Wake when the socket can accept more outgoing bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of a parked connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest — a connection with a backed-up write buffer.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the socket was registered under.
    pub token: u64,
    /// The socket is readable — including EOF and error conditions, which
    /// a read will surface.
    pub readable: bool,
    /// The socket is writable.
    pub writable: bool,
    /// The peer closed or the socket errored; the connection is done for.
    pub closed: bool,
}

/// A level-triggered readiness poller (epoll on Linux; a degenerate
/// tick-scan elsewhere). All methods take `&self` — registration changes
/// and waiting may race freely, as epoll itself guarantees.
#[derive(Debug)]
pub struct Poller {
    inner: imp::Poller,
}

impl Poller {
    /// Creates a poller with no registrations.
    ///
    /// # Errors
    ///
    /// The underlying OS call failed (fd exhaustion, typically).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: imp::Poller::new()?,
        })
    }

    /// Starts watching `fd` under `token`. One registration per fd.
    ///
    /// # Errors
    ///
    /// The fd is already registered, invalid, or the kernel table is full.
    pub fn register(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.register(fd.as_raw_fd(), token, interest)
    }

    /// Changes an existing registration's interest (same token or a new
    /// one).
    ///
    /// # Errors
    ///
    /// The fd was never registered.
    pub fn reregister(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.reregister(fd.as_raw_fd(), token, interest)
    }

    /// Stops watching `fd`. Safe to call right before closing it.
    ///
    /// # Errors
    ///
    /// The fd was never registered.
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.inner.deregister(fd.as_raw_fd())
    }

    /// Blocks until at least one registered socket is ready or `timeout`
    /// elapses (`None` blocks indefinitely), refilling `events` with the
    /// ready set — possibly empty on timeout. `EINTR` is retried
    /// internally.
    ///
    /// # Errors
    ///
    /// A non-transient failure of the OS wait call.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.wait(events, timeout)
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    /// Raw epoll bindings. glibc is linked under every `std` binary, so
    /// these four symbols resolve without any crate dependency. Kept to
    /// the absolute minimum surface; everything above speaks safe Rust.
    #[allow(unsafe_code)]
    mod sys {
        use std::os::fd::RawFd;

        pub const EPOLL_CLOEXEC: i32 = 0o2000000;
        pub const EPOLL_CTL_ADD: i32 = 1;
        pub const EPOLL_CTL_DEL: i32 = 2;
        pub const EPOLL_CTL_MOD: i32 = 3;
        pub const EPOLLIN: u32 = 0x1;
        pub const EPOLLOUT: u32 = 0x4;
        pub const EPOLLERR: u32 = 0x8;
        pub const EPOLLHUP: u32 = 0x10;
        pub const EPOLLRDHUP: u32 = 0x2000;

        /// Mirror of the kernel's `struct epoll_event`. On x86-64 the ABI
        /// packs it (4-byte-aligned u64 payload); other architectures use
        /// natural alignment.
        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: i32) -> i32;
            fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
            fn close(fd: i32) -> i32;
        }

        pub fn create() -> i32 {
            // SAFETY: epoll_create1 takes no pointers; any flags value is
            // merely accepted or rejected with EINVAL.
            unsafe { epoll_create1(EPOLL_CLOEXEC) }
        }

        pub fn ctl(epfd: RawFd, op: i32, fd: RawFd, event: Option<&mut EpollEvent>) -> i32 {
            let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is null or a live exclusive borrow for the
            // duration of the call; the kernel only reads it.
            unsafe { epoll_ctl(epfd, op, fd, ptr) }
        }

        pub fn wait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> i32 {
            // SAFETY: the kernel writes at most `events.len()` entries into
            // the exclusively borrowed slice.
            unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) }
        }

        pub fn close_fd(fd: RawFd) -> i32 {
            // SAFETY: plain close of an fd this module created and owns.
            unsafe { close(fd) }
        }
    }

    #[derive(Debug)]
    pub(super) struct Poller {
        epfd: RawFd,
    }

    fn mask(interest: Interest) -> u32 {
        // RDHUP is always on: a half-closing peer must wake the loop even
        // when the connection is parked read-only.
        let mut m = sys::EPOLLRDHUP;
        if interest.readable {
            m |= sys::EPOLLIN;
        }
        if interest.writable {
            m |= sys::EPOLLOUT;
        }
        m
    }

    fn check(rc: i32) -> io::Result<()> {
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    impl Poller {
        pub(super) fn new() -> io::Result<Poller> {
            let epfd = sys::create();
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        pub(super) fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = sys::EpollEvent {
                events: mask(interest),
                data: token,
            };
            check(sys::ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, Some(&mut ev)))
        }

        pub(super) fn reregister(
            &self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            let mut ev = sys::EpollEvent {
                events: mask(interest),
                data: token,
            };
            check(sys::ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, Some(&mut ev)))
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            // Pre-2.6.9 kernels insisted on a non-null event for DEL; pass
            // one unconditionally, it is ignored either way.
            let mut ev = sys::EpollEvent { events: 0, data: 0 };
            check(sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, Some(&mut ev)))
        }

        pub(super) fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            let mut raw = [sys::EpollEvent { events: 0, data: 0 }; 256];
            let timeout_ms = match timeout {
                None => -1,
                // Round up so a 100µs timeout polls for 1ms, not 0 (busy
                // loop).
                Some(t) => t
                    .as_millis()
                    .max(u128::from(u32::from(!t.is_zero())))
                    .min(i32::MAX as u128) as i32,
            };
            loop {
                let n = sys::wait(self.epfd, &mut raw, timeout_ms);
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(err);
                }
                for slot in raw.iter().take(n as usize) {
                    // Copy out of the (possibly packed) FFI struct before
                    // touching fields.
                    let ev = *slot;
                    let bits = ev.events;
                    let closed = bits & (sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR) != 0;
                    events.push(Event {
                        token: ev.data,
                        // HUP/ERR count as readable: the read path is where
                        // EOF and the pending error get surfaced.
                        readable: bits & sys::EPOLLIN != 0 || closed,
                        writable: bits & sys::EPOLLOUT != 0,
                        closed,
                    });
                }
                return Ok(());
            }
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            let _ = sys::close_fd(self.epfd);
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Portable fallback: no OS wait at all — sleep out a slice of the
    /// timeout, then report every registration ready per its interest.
    /// Correct (the connection layer tolerates spurious readiness via
    /// `WouldBlock`) but O(connections) per tick; the Linux build is the
    /// one the 10k-idle scenario is sized for.
    #[derive(Debug)]
    pub(super) struct Poller {
        registered: Mutex<HashMap<RawFd, (u64, Interest)>>,
    }

    const TICK: Duration = Duration::from_millis(5);

    impl Poller {
        pub(super) fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Mutex::new(HashMap::new()),
            })
        }

        pub(super) fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut map = self.registered.lock().expect("poller registry");
            if map.insert(fd, (token, interest)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            Ok(())
        }

        pub(super) fn reregister(
            &self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            let mut map = self.registered.lock().expect("poller registry");
            match map.get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut map = self.registered.lock().expect("poller registry");
            match map.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            std::thread::sleep(timeout.unwrap_or(TICK).min(TICK));
            let map = self.registered.lock().expect("poller registry");
            for (&_fd, &(token, interest)) in map.iter() {
                events.push(Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                    closed: false,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{Ipv4Addr, TcpListener, TcpStream};
    use std::time::Instant;

    /// Waits until `token` shows up readable, or panics after ~2s.
    fn await_token(poller: &Poller, token: u64) -> Event {
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if let Some(ev) = events.iter().find(|e| e.token == token && e.readable) {
                return *ev;
            }
        }
        panic!("token {token} never became readable");
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.register(&listener, 7, Interest::READ).unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let ev = await_token(&poller, 7);
        assert!(ev.readable);
        poller.deregister(&listener).unwrap();
    }

    #[test]
    fn stream_becomes_readable_on_bytes() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        poller.register(&accepted, 42, Interest::READ).unwrap();
        client.write_all(b"ping").unwrap();
        let ev = await_token(&poller, 42);
        assert_eq!(ev.token, 42);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn quiet_socket_stays_silent_until_timeout() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.register(&listener, 1, Interest::READ).unwrap();
        let mut events = Vec::new();
        let started = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(60)))
            .unwrap();
        assert!(events.is_empty(), "nothing connected, nothing ready");
        assert!(started.elapsed() >= Duration::from_millis(50));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peer_hangup_reports_closed() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        poller.register(&accepted, 9, Interest::READ).unwrap();
        drop(client);
        let ev = await_token(&poller, 9);
        assert!(ev.closed, "hangup must be flagged: {ev:?}");
    }

    #[test]
    fn reregister_switches_interest() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        poller.register(&accepted, 3, Interest::READ).unwrap();
        poller
            .reregister(&accepted, 3, Interest::READ_WRITE)
            .unwrap();
        // A fresh connection's send buffer is empty: writable immediately.
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if events.iter().any(|e| e.token == 3 && e.writable) {
                break;
            }
            assert!(Instant::now() < deadline, "never became writable");
        }
    }
}
