//! Log shipping: the [`Primary`] reads the durable WAL through the
//! read-side API of [`RiStore`] and streams verbatim record frames to a
//! [`Follower`], which re-validates every CRC, appends the frames to its
//! own log, and replays each event through
//! [`RiStateImage::apply`] — so a caught-up follower holds byte-identical
//! state, RNG checkpoint included, and [`Follower::promote`] turns it into
//! a serving [`RiService`] whose next signature is exactly what the dead
//! primary would have produced.
//!
//! # Failover safety
//!
//! Promotion can never re-issue an RO id or a session id because both are
//! monotone counters inside the replicated state: `next_session` and the
//! per-scope `ro_sequences` arrive with the image, and the RNG checkpoint
//! of the last applied record pins the random stream. The remaining hazard
//! is a *deposed primary that does not know it is deposed* — that is what
//! the epoch fences: every `Records` batch carries the sender's epoch, a
//! follower rejects anything older than the epoch it last accepted
//! ([`ClusterError::Fenced`]), and a primary that sees a newer epoch in an
//! ack fences itself and stops acknowledging.

use crate::proto::ReplPdu;
use crate::ClusterError;
use oma_drm::journal::{RiJournal, RiStateImage};
use oma_drm::RiService;
use oma_net::ServerMetrics;
use oma_obs::{Histogram, ObsConfig};
use oma_store::log::SEGMENT_HEADER;
use oma_store::{codec, MemLog, RiStore, StoreConfig, Wal};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How many record frames one `Records` PDU carries at most.
pub const MAX_BATCH_RECORDS: usize = 256;

/// Socket deadline for one replication round trip.
const REPL_DEADLINE: Duration = Duration::from_secs(30);

/// When a follower acknowledges a shipped batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckPolicy {
    /// Acknowledge as soon as the records are applied in memory and
    /// appended; they ride the follower's own fsync cadence. Lowest
    /// latency, loses the unsynced suffix if the follower also dies.
    Async,
    /// fsync the follower's log before acknowledging: an acked record
    /// survives the loss of *either* node.
    OnFsync,
}

/// The shipping side of one replicated node: wraps the durable store of a
/// serving [`RiService`] and answers follower handshakes, heartbeats and
/// acks with the right mix of snapshot bootstrap and record batches.
///
/// `handle` is `&self` and touches only the store's read side, so a
/// replication thread can run next to live dispatch traffic.
pub struct Primary<L: Wal> {
    id: String,
    epoch: u64,
    store: Arc<RiStore<L>>,
    fenced: AtomicBool,
    metrics: Option<Arc<ServerMetrics>>,
    obs: Option<ShipObs>,
}

/// Ship→ack latency tracking: every tail shipped to the follower leaves a
/// `(last_sequence, shipped_at)` marker; the ack that covers a marker's
/// sequence closes it and the elapsed time lands in the
/// `repl_ship_ack_nanos` histogram. This replaces the single point-in-time
/// `repl_follower_lag` gauge (still kept for the metrics `Display` line)
/// with a full replication-latency distribution.
struct ShipObs {
    ship_ack_nanos: Arc<Histogram>,
    pending: Mutex<VecDeque<(u64, Instant)>>,
}

/// Markers kept in flight before the oldest is discarded: a follower that
/// never acks must not grow the primary without bound.
const MAX_PENDING_SHIPS: usize = 1024;

impl ShipObs {
    fn on_shipped(&self, last_sequence: u64) {
        let mut pending = match self.pending.lock() {
            Ok(pending) => pending,
            Err(poisoned) => poisoned.into_inner(),
        };
        if pending.len() >= MAX_PENDING_SHIPS {
            pending.pop_front();
        }
        pending.push_back((last_sequence, Instant::now()));
    }

    fn on_acked(&self, last_sequence: u64) {
        let mut pending = match self.pending.lock() {
            Ok(pending) => pending,
            Err(poisoned) => poisoned.into_inner(),
        };
        while let Some(&(sequence, shipped_at)) = pending.front() {
            if sequence > last_sequence {
                break;
            }
            pending.pop_front();
            self.ship_ack_nanos.record_duration(shipped_at.elapsed());
        }
    }
}

impl<L: Wal> Primary<L> {
    /// Wraps a serving node's store as the shipping source for `epoch`.
    pub fn new(id: &str, epoch: u64, store: Arc<RiStore<L>>) -> Self {
        Primary {
            id: id.into(),
            epoch,
            store,
            fenced: AtomicBool::new(false),
            metrics: None,
            obs: None,
        }
    }

    /// Publishes the ship→ack latency distribution as the
    /// `repl_ship_ack_nanos` histogram of `obs`'s registry. No-op when
    /// observability is off.
    pub fn with_obs(mut self, obs: &ObsConfig) -> Self {
        if let Some(obs) = obs.obs() {
            self.obs = Some(ShipObs {
                ship_ack_nanos: obs.registry().histogram("repl_ship_ack_nanos"),
                pending: Mutex::new(VecDeque::new()),
            });
        }
        self
    }

    /// Publishes shipping counters (records shipped/acked, follower lag,
    /// epoch) into a server's metrics surface.
    pub fn with_metrics(self, metrics: Arc<ServerMetrics>) -> Self {
        metrics.set_epoch(self.epoch);
        Primary {
            metrics: Some(metrics),
            ..self
        }
    }

    /// The epoch this primary serves under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The node id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The wrapped store.
    pub fn store(&self) -> &Arc<RiStore<L>> {
        &self.store
    }

    /// Marks this primary as deposed: every later `handle` call refuses
    /// with [`ClusterError::Fenced`], so a stale node cannot keep shipping
    /// (or acknowledging) history after a failover it has not heard about.
    pub fn fence(&self) {
        self.fenced.store(true, Ordering::Release);
    }

    /// Whether this node has been deposed.
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::Acquire)
    }

    /// Answers one follower PDU with zero or more response PDUs:
    ///
    /// * `Handshake` → `HandshakeAck` (with the snapshot blob when the
    ///   follower is behind the compaction horizon), `Records` batches for
    ///   the tail, and a closing `Heartbeat`,
    /// * `Heartbeat` → `Records` batches since the follower's position and
    ///   a closing `Heartbeat`,
    /// * `Ack` → nothing; updates the shipping metrics, and fences this
    ///   primary if the ack names a newer epoch.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Fenced`] once deposed, [`ClusterError::Store`] when
    /// the log cannot be read, [`ClusterError::Malformed`] for a PDU that
    /// only a follower should send.
    pub fn handle(&self, pdu: &ReplPdu) -> Result<Vec<ReplPdu>, ClusterError> {
        if self.is_fenced() {
            return Err(ClusterError::Fenced {
                stale: self.epoch,
                current: self.epoch + 1,
            });
        }
        match pdu {
            ReplPdu::Handshake { last_sequence, .. } => {
                let (blob, watermark) = self
                    .store
                    .snapshot_blob()?
                    .ok_or(ClusterError::NotBootstrapped)?;
                // A follower below the compaction horizon needs the
                // snapshot; so does a brand-new one (sequence 0), even
                // when the primary's snapshot is still the genesis image
                // with watermark 0 — bootstrap is idempotent, so a
                // restarted follower that really is at sequence 0 just
                // re-installs the same state.
                let behind = *last_sequence < watermark || *last_sequence == 0;
                let mut responses = vec![ReplPdu::HandshakeAck {
                    epoch: self.epoch,
                    primary_id: self.id.clone(),
                    watermark,
                    snapshot: behind.then_some(blob),
                }];
                let start = if behind { watermark } else { *last_sequence };
                self.push_tail(start, &mut responses)?;
                Ok(responses)
            }
            ReplPdu::Heartbeat { last_sequence, .. } => {
                let mut responses = Vec::new();
                self.push_tail(*last_sequence, &mut responses)?;
                Ok(responses)
            }
            ReplPdu::Ack {
                epoch,
                last_sequence,
                applied,
                ..
            } => {
                if *epoch > self.epoch {
                    self.fence();
                    return Err(ClusterError::Fenced {
                        stale: self.epoch,
                        current: *epoch,
                    });
                }
                if let Some(metrics) = &self.metrics {
                    metrics.on_records_acked(*applied);
                    let head = self.store.next_sequence().saturating_sub(1);
                    metrics.set_follower_lag(head.saturating_sub(*last_sequence));
                }
                if let Some(obs) = &self.obs {
                    obs.on_acked(*last_sequence);
                }
                Ok(Vec::new())
            }
            ReplPdu::HandshakeAck { .. } | ReplPdu::Records { .. } => Err(ClusterError::Malformed(
                "primary received a primary-side pdu".into(),
            )),
        }
    }

    /// Appends the record tail after `start` as `Records` batches plus a
    /// closing `Heartbeat`.
    fn push_tail(&self, start: u64, responses: &mut Vec<ReplPdu>) -> Result<(), ClusterError> {
        let tail = self.store.records_after(start)?;
        let shipped = tail.frames.len() as u64;
        for chunk in tail.frames.chunks(MAX_BATCH_RECORDS) {
            responses.push(ReplPdu::Records {
                epoch: self.epoch,
                frames: chunk.to_vec(),
            });
        }
        responses.push(ReplPdu::Heartbeat {
            epoch: self.epoch,
            last_sequence: tail.last_sequence,
        });
        if let Some(metrics) = &self.metrics {
            metrics.on_records_shipped(shipped);
        }
        if shipped > 0 {
            if let Some(obs) = &self.obs {
                obs.on_shipped(tail.last_sequence);
            }
        }
        Ok(())
    }
}

/// The receiving side: owns its own [`Wal`] backend, appends shipped
/// frames verbatim, and replays every event into an in-memory
/// [`RiStateImage`] kept promotion-ready.
pub struct Follower<L: Wal> {
    id: String,
    log: L,
    config: StoreConfig,
    ack_policy: AckPolicy,
    image: Option<RiStateImage>,
    last_sequence: u64,
    epoch: u64,
    segment_bytes: u64,
}

impl Follower<MemLog> {
    /// An in-memory follower — the deterministic test and harness backend.
    pub fn in_memory(id: &str, ack_policy: AckPolicy) -> Self {
        Self::new(id, MemLog::new(), StoreConfig::default(), ack_policy)
            .expect("memory log cannot fail to open")
    }
}

impl<L: Wal> Follower<L> {
    /// Wraps a log backend. A log that already holds a snapshot (a
    /// restarted follower) resumes from snapshot + surviving records; a
    /// fresh log waits for the handshake to bootstrap it.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Store`] when the backend cannot be read.
    pub fn new(
        id: &str,
        log: L,
        config: StoreConfig,
        ack_policy: AckPolicy,
    ) -> Result<Self, ClusterError> {
        let (image, last_sequence) = replay_existing(&log)?;
        let segment_bytes = log.segment_len()?;
        Ok(Follower {
            id: id.into(),
            log,
            config,
            ack_policy,
            image,
            last_sequence,
            epoch: 0,
            segment_bytes,
        })
    }

    /// The handshake announcing this follower's position.
    pub fn handshake(&self) -> ReplPdu {
        ReplPdu::Handshake {
            follower_id: self.id.clone(),
            last_sequence: self.last_sequence,
        }
    }

    /// Sequence number of the last applied record.
    pub fn last_sequence(&self) -> u64 {
        self.last_sequence
    }

    /// The epoch this follower last accepted.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The replicated state, once bootstrapped.
    pub fn state_image(&self) -> Option<&RiStateImage> {
        self.image.as_ref()
    }

    /// Applies one primary PDU.
    ///
    /// Returns the `Ack` to send back for a `Records` batch, `None` for
    /// the session-control PDUs.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Fenced`] for a stale epoch,
    /// [`ClusterError::SequenceGap`] when a batch does not continue this
    /// follower's history, [`ClusterError::Store`]/[`ClusterError::Malformed`]
    /// for invalid frames.
    pub fn apply(&mut self, pdu: &ReplPdu) -> Result<Option<ReplPdu>, ClusterError> {
        match pdu {
            ReplPdu::HandshakeAck {
                epoch,
                watermark,
                snapshot,
                ..
            } => {
                self.adopt_epoch(*epoch)?;
                if let Some(blob) = snapshot {
                    self.bootstrap(blob, *watermark)?;
                } else if self.image.is_none() {
                    return Err(ClusterError::NotBootstrapped);
                }
                Ok(None)
            }
            ReplPdu::Records { epoch, frames } => {
                self.adopt_epoch(*epoch)?;
                let ack = self.apply_records(frames)?;
                Ok(Some(ack))
            }
            ReplPdu::Heartbeat { epoch, .. } => {
                self.adopt_epoch(*epoch)?;
                Ok(None)
            }
            ReplPdu::Handshake { .. } | ReplPdu::Ack { .. } => Err(ClusterError::Malformed(
                "follower received a follower-side pdu".into(),
            )),
        }
    }

    /// Fencing rule: accept the sender's epoch when it is current or
    /// newer; refuse anything older.
    fn adopt_epoch(&mut self, epoch: u64) -> Result<(), ClusterError> {
        if epoch < self.epoch {
            return Err(ClusterError::Fenced {
                stale: epoch,
                current: self.epoch,
            });
        }
        self.epoch = epoch;
        Ok(())
    }

    /// Installs a snapshot blob: writes it to the local log, drops any
    /// stale segments it covers, and resets the replayed image — the same
    /// compaction dance [`RiStore::snapshot`](oma_store::RiStore) performs.
    fn bootstrap(&mut self, blob: &[u8], watermark: u64) -> Result<(), ClusterError> {
        let (image, snapshot_watermark) = codec::decode_snapshot(blob)?;
        if snapshot_watermark != watermark {
            return Err(ClusterError::Malformed(
                "handshake watermark disagrees with its snapshot".into(),
            ));
        }
        self.log.write_snapshot(blob)?;
        let fresh = self.log.rotate()?;
        self.log.remove_segments_before(fresh)?;
        self.segment_bytes = self.log.segment_len()?;
        self.image = Some(image);
        self.last_sequence = watermark;
        Ok(())
    }

    /// Validates and applies one batch of record frames.
    fn apply_records(&mut self, frames: &[Vec<u8>]) -> Result<ReplPdu, ClusterError> {
        let image = self.image.as_mut().ok_or(ClusterError::NotBootstrapped)?;
        let mut applied = 0;
        for frame in frames {
            let (record, consumed) =
                codec::decode_record_prefix(frame).map_err(ClusterError::Store)?;
            if consumed != frame.len() {
                return Err(ClusterError::Malformed(
                    "record frame carries trailing bytes".into(),
                ));
            }
            if record.sequence <= self.last_sequence {
                // A re-shipped prefix (retry after a lost ack) is harmless.
                continue;
            }
            if record.sequence != self.last_sequence + 1 {
                return Err(ClusterError::SequenceGap {
                    expected: self.last_sequence + 1,
                    found: record.sequence,
                });
            }
            if self.segment_bytes + frame.len() as u64 > self.config.segment_max_bytes {
                self.log.rotate()?;
                self.segment_bytes = self.log.segment_len()?;
            }
            self.log.append(frame)?;
            self.segment_bytes += frame.len() as u64;
            image.apply(&record.event);
            image.rng_state = record.rng_after;
            self.last_sequence = record.sequence;
            applied += 1;
        }
        let durable = match self.ack_policy {
            AckPolicy::OnFsync => {
                self.log.sync()?;
                true
            }
            AckPolicy::Async => false,
        };
        Ok(ReplPdu::Ack {
            epoch: self.epoch,
            last_sequence: self.last_sequence,
            applied,
            durable,
        })
    }

    /// Promotes this follower into a serving primary under `new_epoch`.
    ///
    /// The follower's log is synced and re-opened as a [`RiStore`], the
    /// state is recovered through the very same snapshot+replay path a
    /// crash restart uses, and the result is cross-checked against the
    /// incrementally replayed image — any divergence refuses promotion
    /// instead of serving forked state. The recovered image carries
    /// `next_session`, every `ro_sequences` counter and the RNG
    /// checkpoint, which is why a promoted primary can never re-issue a
    /// session id or an RO id that the old primary already handed out.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NotBootstrapped`] before any handshake,
    /// [`ClusterError::Store`] when the log cannot be re-opened,
    /// [`ClusterError::Malformed`] when the durable and replayed states
    /// disagree.
    pub fn promote(self, new_epoch: u64) -> Result<Promoted<L>, ClusterError>
    where
        L: 'static,
    {
        let replayed = self.image.ok_or(ClusterError::NotBootstrapped)?;
        self.log.sync()?;
        let store = RiStore::new(self.log, self.config)?;
        let (image, _report) = store.load_with_report()?;
        if image != replayed {
            return Err(ClusterError::Malformed(
                "durable state diverged from the replayed image; refusing promotion".into(),
            ));
        }
        let store = Arc::new(store);
        let service = Arc::new(RiService::from_image(image.clone()));
        service.set_journal(Arc::clone(&store) as Arc<dyn RiJournal>);
        Ok(Promoted {
            service,
            store,
            epoch: new_epoch,
            image,
        })
    }
}

/// What [`Follower::promote`] yields: a serving node journaling into the
/// follower's log, under the next epoch.
pub struct Promoted<L: Wal> {
    /// The promoted service, journal already attached.
    pub service: Arc<RiService>,
    /// The store the service journals through (the follower's log).
    pub store: Arc<RiStore<L>>,
    /// The epoch the new primary serves under.
    pub epoch: u64,
    /// The recovered state at promotion — byte-identical to the deposed
    /// primary's durable state.
    pub image: RiStateImage,
}

/// One in-process catch-up round: handshake, snapshot bootstrap if needed,
/// every outstanding record, acks observed. Returns how many records the
/// follower applied.
///
/// # Errors
///
/// Everything [`Primary::handle`] and [`Follower::apply`] can raise.
pub fn replicate<P: Wal, F: Wal>(
    primary: &Primary<P>,
    follower: &mut Follower<F>,
) -> Result<u64, ClusterError> {
    let mut applied = 0;
    for response in primary.handle(&follower.handshake())? {
        if let Some(ack) = follower.apply(&response)? {
            if let ReplPdu::Ack { applied: batch, .. } = ack {
                applied += batch;
            }
            primary.handle(&ack)?;
        }
    }
    Ok(applied)
}

/// Replays an existing follower log (snapshot + surviving records) so a
/// restarted follower resumes where it crashed instead of re-shipping the
/// world. Stops cleanly at any damage, exactly like recovery.
fn replay_existing<L: Wal>(log: &L) -> Result<(Option<RiStateImage>, u64), ClusterError> {
    let Some(blob) = log.read_snapshot()? else {
        return Ok((None, 0));
    };
    let (mut image, watermark) = codec::decode_snapshot(&blob)?;
    let mut last = watermark;
    'segments: for segment in log.segments()? {
        let bytes = log.read_segment(segment)?;
        let Some(mut rest) = bytes.strip_prefix(&SEGMENT_HEADER[..]) else {
            break;
        };
        while !rest.is_empty() {
            let Ok((record, consumed)) = codec::decode_record_prefix(rest) else {
                break 'segments;
            };
            if record.sequence > last {
                if record.sequence != last + 1 {
                    break 'segments;
                }
                image.apply(&record.event);
                image.rng_state = record.rng_after;
                last = record.sequence;
            }
            rest = &rest[consumed..];
        }
    }
    Ok((Some(image), last))
}

// ----- replication over TCP --------------------------------------------------

/// Reads one replication frame, reassembling partial reads. `Ok(None)` on
/// a clean disconnect at a frame boundary.
fn read_repl_frame<R: Read>(reader: &mut R) -> Result<Option<Vec<u8>>, ClusterError> {
    let mut frame = vec![0u8; crate::proto::REPL_HEADER_LEN];
    let mut filled = 0;
    while filled < frame.len() {
        match reader.read(&mut frame[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(ClusterError::Io("peer died mid-frame".into())),
            Ok(n) => filled += n,
            Err(e) => return Err(ClusterError::Io(format!("read frame header: {e}"))),
        }
    }
    let total = ReplPdu::frame_len(&frame)?.expect("complete header yields a length");
    frame.resize(total, 0);
    reader
        .read_exact(&mut frame[crate::proto::REPL_HEADER_LEN..])
        .map_err(|e| ClusterError::Io(format!("read frame body: {e}")))?;
    Ok(Some(frame))
}

fn write_pdu(stream: &mut TcpStream, pdu: &ReplPdu) -> Result<(), ClusterError> {
    stream
        .write_all(&pdu.encode())
        .map_err(|e| ClusterError::Io(format!("write frame: {e}")))
}

/// Serves one follower connection on a primary: answers its PDUs until the
/// peer disconnects.
///
/// # Errors
///
/// Socket failures as [`ClusterError::Io`]; protocol violations and
/// fencing from [`Primary::handle`].
pub fn serve_replication<L: Wal>(
    primary: &Primary<L>,
    mut stream: TcpStream,
) -> Result<(), ClusterError> {
    stream
        .set_read_timeout(Some(REPL_DEADLINE))
        .and_then(|()| stream.set_write_timeout(Some(REPL_DEADLINE)))
        .map_err(|e| ClusterError::Io(format!("set deadline: {e}")))?;
    while let Some(frame) = read_repl_frame(&mut stream)? {
        for response in primary.handle(&ReplPdu::decode(&frame)?)? {
            write_pdu(&mut stream, &response)?;
        }
    }
    Ok(())
}

/// One catch-up round over TCP: connects to a primary's replication
/// endpoint, handshakes, applies the snapshot and/or record tail, acks,
/// and disconnects at the primary's end-of-catch-up heartbeat. Returns how
/// many records were applied.
///
/// # Errors
///
/// Socket failures as [`ClusterError::Io`]; everything
/// [`Follower::apply`] can raise.
pub fn sync_over_tcp<F: Wal>(
    follower: &mut Follower<F>,
    addr: impl ToSocketAddrs,
) -> Result<u64, ClusterError> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| ClusterError::Io(format!("connect: {e}")))?;
    stream
        .set_nodelay(true)
        .and_then(|()| stream.set_read_timeout(Some(REPL_DEADLINE)))
        .and_then(|()| stream.set_write_timeout(Some(REPL_DEADLINE)))
        .map_err(|e| ClusterError::Io(format!("configure socket: {e}")))?;
    write_pdu(&mut stream, &follower.handshake())?;
    let mut applied = 0;
    loop {
        let Some(frame) = read_repl_frame(&mut stream)? else {
            return Err(ClusterError::Io("primary hung up mid-catch-up".into()));
        };
        let pdu = ReplPdu::decode(&frame)?;
        let done = matches!(pdu, ReplPdu::Heartbeat { .. });
        if let Some(ack) = follower.apply(&pdu)? {
            if let ReplPdu::Ack { applied: batch, .. } = ack {
                applied += batch;
            }
            write_pdu(&mut stream, &ack)?;
        }
        if done {
            return Ok(applied);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oma_drm::roap::DeviceHello;
    use oma_pki::{CertificationAuthority, Timestamp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::TcpListener;

    /// A journaled serving primary with a genesis snapshot — the world
    /// every test replicates from.
    fn primary_world() -> (Arc<RiService>, Primary<MemLog>) {
        let mut rng = StdRng::seed_from_u64(0x5109);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let service = Arc::new(RiService::new("ri.a", 384, &mut ca, &mut rng));
        let store = Arc::new(RiStore::in_memory());
        service.set_journal(Arc::clone(&store) as Arc<dyn RiJournal>);
        store.snapshot(&|| service.state_image()).unwrap();
        (service, Primary::new("node.a", 1, store))
    }

    fn say_hello(service: &RiService, n: usize) {
        for i in 0..n {
            service.hello_at(&DeviceHello::new(&format!("dev-{i:03}")), Timestamp::new(0));
        }
    }

    #[test]
    fn replicate_reaches_byte_identical_state_incrementally() {
        let (service, primary) = primary_world();
        say_hello(&service, 5);
        service.create_domain("family", 4);

        let mut follower = Follower::in_memory("node.b", AckPolicy::OnFsync);
        let applied = replicate(&primary, &mut follower).unwrap();
        assert_eq!(applied, 6);
        assert_eq!(follower.state_image(), Some(&service.state_image()));
        assert_eq!(follower.epoch(), 1);

        // More traffic, another round: only the tail ships, state stays
        // identical — RNG checkpoint included.
        say_hello(&service, 3);
        let applied = replicate(&primary, &mut follower).unwrap();
        assert_eq!(applied, 3);
        assert_eq!(follower.state_image(), Some(&service.state_image()));
    }

    #[test]
    fn ack_policy_controls_the_durable_flag() {
        for (policy, durable) in [(AckPolicy::Async, false), (AckPolicy::OnFsync, true)] {
            let (service, primary) = primary_world();
            say_hello(&service, 2);
            let mut follower = Follower::in_memory("node.b", policy);
            let responses = primary.handle(&follower.handshake()).unwrap();
            let mut acked = 0;
            for response in responses {
                if let Some(ReplPdu::Ack { durable: got, .. }) = follower.apply(&response).unwrap()
                {
                    assert_eq!(got, durable);
                    acked += 1;
                }
            }
            assert!(acked > 0, "records must have shipped");
        }
    }

    #[test]
    fn ship_ack_latency_lands_in_the_histogram() {
        let (service, primary) = primary_world();
        let obs = oma_obs::Obs::new();
        let primary = primary.with_obs(&ObsConfig::On(Arc::clone(&obs)));
        say_hello(&service, 4);

        let mut follower = Follower::in_memory("node.b", AckPolicy::Async);
        let applied = replicate(&primary, &mut follower).unwrap();
        assert!(applied > 0);

        let hist = obs
            .registry()
            .find_histogram("repl_ship_ack_nanos")
            .expect("with_obs registers the histogram");
        let snap = hist.snapshot();
        // One sample per acked shipped tail: the handshake round ships one
        // tail and the follower acks it once.
        assert!(snap.count() >= 1, "ack must close a shipped marker");

        // Acking again past the head records nothing new (no open marker).
        let before = hist.snapshot().count();
        primary
            .handle(&ReplPdu::Ack {
                epoch: 1,
                last_sequence: follower.last_sequence(),
                applied: 0,
                durable: false,
            })
            .unwrap();
        assert_eq!(hist.snapshot().count(), before);
    }

    #[test]
    fn stale_epoch_records_are_fenced() {
        let (service, primary) = primary_world();
        say_hello(&service, 1);
        let mut follower = Follower::in_memory("node.b", AckPolicy::Async);
        replicate(&primary, &mut follower).unwrap();

        // The follower hears about epoch 3, then the epoch-1 primary tries
        // to keep shipping: refused.
        follower
            .apply(&ReplPdu::Heartbeat {
                epoch: 3,
                last_sequence: follower.last_sequence(),
            })
            .unwrap();
        say_hello(&service, 1);
        let responses = primary.handle(&follower.handshake()).unwrap();
        let records = responses
            .iter()
            .find(|r| matches!(r, ReplPdu::Records { .. }))
            .expect("tail must ship");
        assert_eq!(
            follower.apply(records),
            Err(ClusterError::Fenced {
                stale: 1,
                current: 3
            })
        );
    }

    #[test]
    fn newer_epoch_in_an_ack_fences_the_primary() {
        let (_service, primary) = primary_world();
        let err = primary
            .handle(&ReplPdu::Ack {
                epoch: 7,
                last_sequence: 0,
                applied: 0,
                durable: true,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            ClusterError::Fenced {
                stale: 1,
                current: 7
            }
        ));
        assert!(primary.is_fenced());
        // Once deposed, nothing is served anymore.
        let handshake = Follower::in_memory("node.b", AckPolicy::Async).handshake();
        assert!(matches!(
            primary.handle(&handshake),
            Err(ClusterError::Fenced { .. })
        ));
    }

    #[test]
    fn catch_up_crosses_the_compaction_horizon() {
        let (service, primary) = primary_world();
        say_hello(&service, 4);
        // Compaction: snapshot covers the 4 hellos, old segments go away.
        primary.store().snapshot(&|| service.state_image()).unwrap();
        say_hello(&service, 2);

        // A brand-new follower can still catch up: snapshot + 2-record tail.
        let mut follower = Follower::in_memory("node.b", AckPolicy::OnFsync);
        let applied = replicate(&primary, &mut follower).unwrap();
        assert_eq!(applied, 2, "only the post-snapshot tail ships as records");
        assert_eq!(follower.state_image(), Some(&service.state_image()));
    }

    #[test]
    fn sequence_gaps_are_rejected() {
        let (service, primary) = primary_world();
        say_hello(&service, 3);
        let mut follower = Follower::in_memory("node.b", AckPolicy::Async);
        // Bootstrap only (snapshot at watermark 0), then feed a batch that
        // skips the first record.
        let responses = primary.handle(&follower.handshake()).unwrap();
        follower.apply(&responses[0]).unwrap();
        let ReplPdu::Records { epoch, frames } = &responses[1] else {
            panic!("expected the record tail");
        };
        let gapped = ReplPdu::Records {
            epoch: *epoch,
            frames: frames[1..].to_vec(),
        };
        assert_eq!(
            follower.apply(&gapped),
            Err(ClusterError::SequenceGap {
                expected: 1,
                found: 2
            })
        );
    }

    #[test]
    fn promotion_recovers_byte_identical_state_and_keeps_counting() {
        let (service, primary) = primary_world();
        say_hello(&service, 4);
        let sessions_before = service.pending_session_count();
        let image_before = service.state_image();

        let mut follower = Follower::in_memory("node.b", AckPolicy::OnFsync);
        replicate(&primary, &mut follower).unwrap();
        primary.fence();
        let promoted = follower.promote(2).unwrap();

        assert_eq!(promoted.epoch, 2);
        assert_eq!(promoted.image, image_before, "byte-identical state");
        // The promoted node keeps journaling and never reuses a session id:
        // the next hello continues the deposed primary's counter.
        let hello = promoted
            .service
            .hello_at(&DeviceHello::new("dev-next"), Timestamp::new(0));
        assert_eq!(hello.session_id as usize, sessions_before + 1);
        assert_eq!(
            promoted.store.next_sequence(),
            5 + 1,
            "promoted store appends after the replicated tail"
        );
    }

    #[test]
    fn follower_restart_resumes_from_its_own_log() {
        let (service, primary) = primary_world();
        say_hello(&service, 3);

        // First life: catch up, then "crash" — keep only the log bytes.
        let mut follower = Follower::in_memory("node.b", AckPolicy::OnFsync);
        replicate(&primary, &mut follower).unwrap();
        let log = MemLog::new();
        log.write_snapshot(&primary.store().log().read_snapshot().unwrap().unwrap())
            .unwrap();
        for (index, bytes) in primary.store().log().raw_segments() {
            while log.current_segment() < index {
                log.rotate().unwrap();
            }
            log.mutate_segment(index, |segment| *segment = bytes.clone());
        }

        // Second life over the surviving bytes: resumes at the right
        // sequence, and a sync round ships nothing new.
        let mut reborn =
            Follower::new("node.b", log, StoreConfig::default(), AckPolicy::OnFsync).unwrap();
        assert_eq!(reborn.last_sequence(), 3);
        assert_eq!(reborn.state_image(), Some(&service.state_image()));
        assert_eq!(replicate(&primary, &mut reborn).unwrap(), 0);
    }

    #[test]
    fn replication_metrics_are_published() {
        let (service, primary) = primary_world();
        let metrics = Arc::new(ServerMetrics::default());
        let primary = primary.with_metrics(Arc::clone(&metrics));
        say_hello(&service, 4);
        let mut follower = Follower::in_memory("node.b", AckPolicy::OnFsync);
        replicate(&primary, &mut follower).unwrap();

        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.records_shipped, 4);
        assert_eq!(snapshot.records_acked, 4);
        assert_eq!(snapshot.follower_lag, 0);
        assert_eq!(snapshot.epoch, 1);
    }

    #[test]
    fn tcp_pair_ships_the_stream() {
        let (service, primary) = primary_world();
        say_hello(&service, 5);
        let expected = service.state_image();

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            serve_replication(&primary, stream)
        });

        let mut follower = Follower::in_memory("node.b", AckPolicy::OnFsync);
        let applied = sync_over_tcp(&mut follower, addr).unwrap();
        assert_eq!(applied, 5);
        assert_eq!(follower.state_image(), Some(&expected));
        server.join().unwrap().unwrap();
    }
}
