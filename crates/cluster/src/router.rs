//! Consistent-hash sharding: spreads a device fleet across N Rights
//! Issuer shards so that adding or removing one shard remaps only about
//! K/N of K devices, instead of reshuffling the world the way
//! `hash % N` does.
//!
//! The ring is the textbook construction: every shard projects a fixed
//! number of *virtual nodes* onto a 64-bit circle, a device hashes to a
//! point on the same circle, and it belongs to the first virtual node at
//! or after its point (wrapping). Both hashes are FNV-1a over stable
//! strings, so two processes that build a router from the same shard set
//! route every device identically — that is what lets a fleet driver, a
//! standalone client and a test agree on shard placement with no
//! coordination.

use oma_drm::wire::RoapPdu;

/// Virtual nodes per shard when none are specified. 64 points per shard
/// keeps the expected load imbalance within a few percent for small
/// fleets while the ring stays tiny (a sorted `Vec` of `(u64, u32)`).
pub const DEFAULT_VIRTUAL_NODES: u32 = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, finished with a 64-bit avalanche mix.
/// Deliberately not `DefaultHasher`: the std hasher is allowed to change
/// between Rust releases, and shard placement must be reproducible across
/// builds and processes. The finalizer matters — raw FNV-1a maps similar
/// short strings ("shard:0:vnode:0".."vnode:63") into one tight band of
/// the 64-bit circle, which collapses the ring into contiguous arcs per
/// shard and starves the others.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    mix64(hash)
}

/// MurmurHash3's 64-bit finalizer: full avalanche, fixed constants.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Maps device ids onto shard indices with a consistent-hash ring.
///
/// ```
/// use oma_cluster::ClusterRouter;
///
/// let router = ClusterRouter::new(3);
/// let shard = router.route("device.0042").unwrap();
/// assert!(shard < 3);
/// // Same inputs, same placement — in any process, any build.
/// assert_eq!(ClusterRouter::new(3).route("device.0042"), Some(shard));
/// ```
#[derive(Debug, Clone)]
pub struct ClusterRouter {
    /// Sorted ring of (point, shard) pairs.
    ring: Vec<(u64, u32)>,
    vnodes: u32,
}

impl ClusterRouter {
    /// A ring over shards `0..shards` with [`DEFAULT_VIRTUAL_NODES`]
    /// points each.
    pub fn new(shards: u32) -> Self {
        Self::with_virtual_nodes(shards, DEFAULT_VIRTUAL_NODES)
    }

    /// A ring over shards `0..shards` with `vnodes` points per shard.
    /// `vnodes` is clamped to at least 1.
    pub fn with_virtual_nodes(shards: u32, vnodes: u32) -> Self {
        let vnodes = vnodes.max(1);
        let mut router = ClusterRouter {
            ring: Vec::with_capacity(shards as usize * vnodes as usize),
            vnodes,
        };
        for shard in 0..shards {
            router.insert_points(shard);
        }
        router.ring.sort_unstable();
        router
    }

    fn insert_points(&mut self, shard: u32) {
        for vnode in 0..self.vnodes {
            let point = fnv1a64(format!("shard:{shard}:vnode:{vnode}").as_bytes());
            self.ring.push((point, shard));
        }
    }

    /// Adds `shard`'s points to the ring (no-op if already present).
    pub fn add_shard(&mut self, shard: u32) {
        if self.ring.iter().any(|&(_, s)| s == shard) {
            return;
        }
        self.insert_points(shard);
        self.ring.sort_unstable();
    }

    /// Removes `shard`'s points from the ring. Devices that were on it
    /// redistribute to ring successors; every other device keeps its
    /// shard — the property the proptest below pins down.
    pub fn remove_shard(&mut self, shard: u32) {
        self.ring.retain(|&(_, s)| s != shard);
    }

    /// The distinct shard indices currently on the ring, ascending.
    pub fn shards(&self) -> Vec<u32> {
        let mut shards: Vec<u32> = self.ring.iter().map(|&(_, s)| s).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// Routes a device id to its shard: the first ring point at or after
    /// the device's hash, wrapping to the first point. `None` only when
    /// the ring is empty.
    pub fn route(&self, device_id: &str) -> Option<u32> {
        if self.ring.is_empty() {
            return None;
        }
        let point = fnv1a64(device_id.as_bytes());
        let at = self.ring.partition_point(|&(p, _)| p < point);
        let (_, shard) = self.ring[at % self.ring.len()];
        Some(shard)
    }
}

/// Extracts the routing key — the device id — from an encoded ROAP
/// request frame, so a cluster front door can steer a raw frame to its
/// shard without dispatching it. Returns `None` for frames that do not
/// decode or PDUs that carry no device identity (responses, triggers,
/// status).
pub fn frame_device_id(frame: &[u8]) -> Option<String> {
    RoapPdu::decode(frame)
        .ok()?
        .device_id()
        .map(|device_id| device_id.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn device_ids(count: usize) -> Vec<String> {
        (0..count).map(|i| format!("device.{i:04}")).collect()
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        assert_eq!(ClusterRouter::new(0).route("device.0001"), None);
        let mut router = ClusterRouter::new(1);
        router.remove_shard(0);
        assert_eq!(router.route("device.0001"), None);
    }

    #[test]
    fn single_shard_takes_everything() {
        let router = ClusterRouter::new(1);
        for id in device_ids(64) {
            assert_eq!(router.route(&id), Some(0));
        }
    }

    #[test]
    fn placement_is_pinned_across_builds() {
        // Literal expectations: if the hash, the vnode naming scheme or
        // the successor rule ever changes, placement changes for every
        // deployed fleet — this test makes that a conscious decision.
        let router = ClusterRouter::new(4);
        let placements: Vec<Option<u32>> =
            ["device.0000", "device.0001", "device.0017", "ri.fleet"]
                .iter()
                .map(|id| router.route(id))
                .collect();
        assert_eq!(placements, vec![Some(1), Some(1), Some(0), Some(2)]);
    }

    #[test]
    fn every_shard_gets_some_of_a_large_fleet() {
        let router = ClusterRouter::new(4);
        let mut counts = [0usize; 4];
        for id in device_ids(512) {
            counts[router.route(&id).unwrap() as usize] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(count > 0, "shard {shard} got no devices");
        }
    }

    #[test]
    fn add_then_remove_restores_placement() {
        let before = ClusterRouter::new(3);
        let mut router = ClusterRouter::new(3);
        router.add_shard(3);
        router.add_shard(3); // idempotent
        router.remove_shard(3);
        for id in device_ids(256) {
            assert_eq!(router.route(&id), before.route(&id));
        }
    }

    #[test]
    fn frame_device_id_reads_requests_and_ignores_the_rest() {
        use oma_drm::roap::DeviceHello;
        use oma_drm::wire::RoapStatus;

        let hello = RoapPdu::DeviceHello(DeviceHello::new("device.0042"));
        assert_eq!(
            frame_device_id(&hello.encode()).as_deref(),
            Some("device.0042")
        );
        let status = RoapPdu::Status(RoapStatus::Ok);
        assert_eq!(frame_device_id(&status.encode()), None);
        assert_eq!(frame_device_id(b"not a roap frame"), None);
    }

    proptest! {
        /// The consistent-hashing contract, exactly: removing a shard
        /// remaps ONLY the devices that lived on it. Everyone else keeps
        /// their shard.
        #[test]
        fn removal_remaps_only_the_lost_shard(
            shards in 2u32..8,
            victim_seed in 0u32..8,
            devices in 16usize..200,
        ) {
            let victim = victim_seed % shards;
            let before = ClusterRouter::new(shards);
            let mut after = before.clone();
            after.remove_shard(victim);
            for id in device_ids(devices) {
                let old = before.route(&id).unwrap();
                let new = after.route(&id).unwrap();
                if old == victim {
                    prop_assert_ne!(new, victim);
                } else {
                    prop_assert_eq!(new, old);
                }
            }
        }

        /// Adding a shard steals roughly K/N devices, never more than a
        /// slack-adjusted bound — the whole point of the ring over
        /// `hash % N` (which would remap ~half).
        #[test]
        fn addition_remaps_about_one_nth(shards in 2u32..6, devices in 200usize..400) {
            let before = ClusterRouter::new(shards);
            let mut after = before.clone();
            after.add_shard(shards);
            let moved = device_ids(devices)
                .iter()
                .filter(|id| before.route(id) != after.route(id))
                .count();
            // Expected K/(N+1); allow 3x slack for hash variance at these
            // fleet sizes. hash%N-style reshuffling would move ~K/2 and
            // trip this comfortably.
            let bound = 3 * devices / (shards as usize + 1);
            prop_assert!(
                moved <= bound,
                "{moved} of {devices} devices moved, bound {bound}"
            );
            // And the new shard actually takes load.
            prop_assert!(moved > 0);
        }

        /// Two routers built independently agree on every placement —
        /// the determinism a coordination-free fleet relies on.
        #[test]
        fn independently_built_routers_agree(shards in 1u32..9, devices in 1usize..128) {
            let a = ClusterRouter::new(shards);
            let b = ClusterRouter::with_virtual_nodes(shards, DEFAULT_VIRTUAL_NODES);
            for id in device_ids(devices) {
                prop_assert_eq!(a.route(&id), b.route(&id));
            }
        }
    }
}
