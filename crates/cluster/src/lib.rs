//! Multi-RI scale-out for the Rights Issuer: WAL log-shipping replication,
//! epoch-fenced primary failover, and consistent-hash sharding.
//!
//! The `oma-store` write-ahead log is a totally-ordered, CRC-framed event
//! stream with snapshots — exactly the primitive classic primary/backup
//! replication needs. This crate ships that stream:
//!
//! * [`proto`] — the replication PDUs (handshake with snapshot watermark,
//!   record batches, acks, heartbeats), framed in the same
//!   magic/version/tag/length envelope style as `oma_drm::wire`, with the
//!   serving **epoch stamped into every PDU** so a deposed primary is
//!   fenced instead of silently forking history,
//! * [`ship`] — the [`Primary`] shipper reading the log
//!   through [`RiStore::records_after`](oma_store::RiStore::records_after)
//!   and the [`Follower`] replaying each record via
//!   [`RiStateImage::apply`](oma_drm::journal::RiStateImage::apply) into
//!   byte-identical state (RNG checkpoint included), with catch-up from
//!   snapshot + tail, an [`AckPolicy`] choosing async or
//!   ack-on-fsync durability, and [`promote`](ship::Follower::promote)
//!   turning a caught-up follower into a serving primary that provably
//!   never re-issues an RO id or session id,
//! * [`router`] — the [`ClusterRouter`] spreading a
//!   device fleet across N shards by consistent hashing, so adding or
//!   removing one shard remaps only ~K/N devices, plus the
//!   `NotPrimary` redirect machinery misrouted clients retarget on.
//!
//! Replication is observable through the ordinary per-server metrics
//! surface: [`ServerMetrics`](oma_net::ServerMetrics) carries records
//! shipped/acked, follower lag and the serving epoch next to the
//! connection counters both server cores already publish.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;
pub mod router;
pub mod ship;

pub use proto::ReplPdu;
pub use router::{frame_device_id, ClusterRouter};
pub use ship::{
    replicate, serve_replication, sync_over_tcp, AckPolicy, Follower, Primary, Promoted,
};

use oma_store::StoreError;
use std::error::Error;
use std::fmt;

/// Errors of the replication and failover machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// A replication frame failed structural validation (bad magic,
    /// truncation, trailing bytes, unknown tag, ...).
    Malformed(String),
    /// The peer speaks a replication protocol version this node does not.
    UnsupportedVersion(u8),
    /// The sender's epoch is older than the receiver's: a deposed primary
    /// (or a stale follower session) tried to keep writing history. The
    /// stream must stop — the stale node re-syncs under the current epoch
    /// or stands down.
    Fenced {
        /// The stale epoch the sender stamped into the PDU.
        stale: u64,
        /// The epoch the receiver currently serves under.
        current: u64,
    },
    /// A shipped record does not continue the follower's sequence — records
    /// were lost in transit or the peers disagree about history.
    SequenceGap {
        /// The sequence number the follower expected next.
        expected: u64,
        /// The sequence number that actually arrived.
        found: u64,
    },
    /// The follower has neither a snapshot nor a genesis image yet; it
    /// cannot apply records (or promote) until a handshake bootstraps it.
    NotBootstrapped,
    /// The durable store failed underneath replication.
    Store(StoreError),
    /// A socket-level failure while shipping the stream.
    Io(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Malformed(reason) => write!(f, "malformed replication pdu: {reason}"),
            ClusterError::UnsupportedVersion(version) => {
                write!(f, "unsupported replication protocol version {version}")
            }
            ClusterError::Fenced { stale, current } => write!(
                f,
                "fenced: epoch {stale} superseded by epoch {current}, stream must stop"
            ),
            ClusterError::SequenceGap { expected, found } => write!(
                f,
                "replication sequence gap: expected {expected}, found {found}"
            ),
            ClusterError::NotBootstrapped => {
                write!(f, "follower holds no snapshot: handshake must bootstrap it")
            }
            ClusterError::Store(e) => write!(f, "store failure under replication: {e}"),
            ClusterError::Io(reason) => write!(f, "replication transport failure: {reason}"),
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for ClusterError {
    fn from(e: StoreError) -> Self {
        ClusterError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_source() {
        let errors = [
            ClusterError::Malformed("x".into()),
            ClusterError::UnsupportedVersion(9),
            ClusterError::Fenced {
                stale: 1,
                current: 2,
            },
            ClusterError::SequenceGap {
                expected: 5,
                found: 9,
            },
            ClusterError::NotBootstrapped,
            ClusterError::Store(StoreError::NoGenesis),
            ClusterError::Io("refused".into()),
        ];
        for e in &errors {
            assert!(!e.to_string().is_empty());
        }
        assert!(errors[5].source().is_some());
        assert!(errors[0].source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ClusterError>();
    }
}
