//! The replication wire protocol: framed PDUs a primary and a follower
//! exchange to ship the WAL, in the same envelope style as
//! `oma_drm::wire` — fixed magic, version byte, type tag, big-endian
//! length, total bounds-checked decode that never panics on hostile input.
//!
//! Every PDU after the handshake carries the sender's **epoch**. The epoch
//! is the fencing token of failover: a follower rejects records stamped
//! with an epoch older than the one it last accepted, so a deposed primary
//! that comes back from a network partition cannot fork history — its
//! stream dies with [`ClusterError::Fenced`] at the first record.
//!
//! A catch-up session is one round trip:
//!
//! ```text
//! follower                                   primary
//!    | -- Handshake{follower_id, last_seq} --> |
//!    | <-- HandshakeAck{epoch, watermark,      |   snapshot only when the
//!    |        snapshot?} --------------------- |   follower is behind the
//!    | <-- Records{epoch, frames} ------------ |   compaction horizon
//!    | --- Ack{epoch, last_seq, durable} ----> |
//!    | <-- Heartbeat{epoch, last_seq} -------- |   end-of-catch-up marker
//! ```

use crate::ClusterError;

/// Frame magic of every replication PDU.
pub const REPL_MAGIC: [u8; 4] = *b"OMRP";

/// Replication protocol version this crate speaks.
pub const REPL_VERSION: u8 = 1;

/// Fixed frame header: magic, version, tag, big-endian body length.
pub const REPL_HEADER_LEN: usize = 4 + 1 + 1 + 4;

/// Upper bound on a replication frame body. Larger than the ROAP cap
/// because one `Records` batch may carry many WAL records, and a
/// `HandshakeAck` may carry a full state snapshot.
pub const MAX_REPL_BODY_LEN: usize = 16 << 20;

const TAG_HANDSHAKE: u8 = 1;
const TAG_HANDSHAKE_ACK: u8 = 2;
const TAG_RECORDS: u8 = 3;
const TAG_ACK: u8 = 4;
const TAG_HEARTBEAT: u8 = 5;

/// One replication protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplPdu {
    /// Follower → primary: announces who is asking and how much log it
    /// already holds.
    Handshake {
        /// Follower's node id (diagnostics; not part of the safety rules).
        follower_id: String,
        /// Sequence number of the last record the follower holds (0 when
        /// empty).
        last_sequence: u64,
    },
    /// Primary → follower: opens (or refreshes) a session.
    HandshakeAck {
        /// Epoch the primary serves under.
        epoch: u64,
        /// Primary's node id.
        primary_id: String,
        /// Sequence watermark of the primary's snapshot — the compaction
        /// horizon below which records no longer exist as log frames.
        watermark: u64,
        /// The snapshot blob, present only when the follower is behind the
        /// watermark and must bootstrap from the full image.
        snapshot: Option<Vec<u8>>,
    },
    /// Primary → follower: a batch of verbatim WAL record frames, in
    /// sequence order.
    Records {
        /// Epoch the primary serves under; the fencing token.
        epoch: u64,
        /// Raw CRC-framed record frames, exactly as they sit in the log.
        frames: Vec<Vec<u8>>,
    },
    /// Follower → primary: how far the follower has applied.
    Ack {
        /// Epoch the follower currently accepts.
        epoch: u64,
        /// Sequence number of the last applied record.
        last_sequence: u64,
        /// Records applied since the previous ack.
        applied: u64,
        /// Whether the applied records are fsync-durable on the follower
        /// ([`AckPolicy::OnFsync`](crate::ship::AckPolicy::OnFsync)).
        durable: bool,
    },
    /// Either direction: liveness + position probe. From the primary it
    /// also marks the end of a catch-up burst.
    Heartbeat {
        /// Sender's epoch.
        epoch: u64,
        /// Sender's last durable sequence number.
        last_sequence: u64,
    },
}

impl ReplPdu {
    /// The frame type tag.
    pub fn tag(&self) -> u8 {
        match self {
            ReplPdu::Handshake { .. } => TAG_HANDSHAKE,
            ReplPdu::HandshakeAck { .. } => TAG_HANDSHAKE_ACK,
            ReplPdu::Records { .. } => TAG_RECORDS,
            ReplPdu::Ack { .. } => TAG_ACK,
            ReplPdu::Heartbeat { .. } => TAG_HEARTBEAT,
        }
    }

    /// Encodes the PDU into one framed envelope.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.encode_body();
        debug_assert!(
            body.len() <= MAX_REPL_BODY_LEN,
            "replication body of {} bytes exceeds MAX_REPL_BODY_LEN",
            body.len()
        );
        let mut out = Vec::with_capacity(REPL_HEADER_LEN + body.len());
        out.extend_from_slice(&REPL_MAGIC);
        out.push(REPL_VERSION);
        out.push(self.tag());
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes one envelope that must span the whole input.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Malformed`] for any structural problem and
    /// [`ClusterError::UnsupportedVersion`] for an unknown version byte.
    /// Never panics.
    pub fn decode(frame: &[u8]) -> Result<Self, ClusterError> {
        let total = match Self::frame_len(frame)? {
            Some(total) if frame.len() == total => total,
            _ => return Err(malformed("frame length does not span the input")),
        };
        let tag = frame[5];
        let mut r = Reader::new(&frame[REPL_HEADER_LEN..total]);
        let pdu = Self::decode_body(tag, &mut r)?;
        r.finish()?;
        Ok(pdu)
    }

    /// Reports the total length of the frame beginning at `prefix`, or
    /// `None` while fewer than [`REPL_HEADER_LEN`] bytes are available —
    /// the reassembly primitive for a streaming transport, mirroring
    /// `RoapPdu::frame_len`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Malformed`] for a bad magic or an oversized length,
    /// [`ClusterError::UnsupportedVersion`] for an unknown version byte.
    pub fn frame_len(prefix: &[u8]) -> Result<Option<usize>, ClusterError> {
        if prefix.len() < REPL_HEADER_LEN {
            if let Some(checkable) = prefix.get(..4) {
                if checkable != REPL_MAGIC {
                    return Err(malformed("bad replication magic"));
                }
            }
            return Ok(None);
        }
        if prefix[..4] != REPL_MAGIC {
            return Err(malformed("bad replication magic"));
        }
        if prefix[4] != REPL_VERSION {
            return Err(ClusterError::UnsupportedVersion(prefix[4]));
        }
        let body_len = u32::from_be_bytes(prefix[6..10].try_into().expect("4 bytes")) as usize;
        if body_len > MAX_REPL_BODY_LEN {
            return Err(malformed("oversized replication body"));
        }
        Ok(Some(REPL_HEADER_LEN + body_len))
    }

    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            ReplPdu::Handshake {
                follower_id,
                last_sequence,
            } => {
                put_str(&mut out, follower_id);
                out.extend_from_slice(&last_sequence.to_be_bytes());
            }
            ReplPdu::HandshakeAck {
                epoch,
                primary_id,
                watermark,
                snapshot,
            } => {
                out.extend_from_slice(&epoch.to_be_bytes());
                put_str(&mut out, primary_id);
                out.extend_from_slice(&watermark.to_be_bytes());
                match snapshot {
                    None => out.push(0),
                    Some(blob) => {
                        out.push(1);
                        put_bytes(&mut out, blob);
                    }
                }
            }
            ReplPdu::Records { epoch, frames } => {
                out.extend_from_slice(&epoch.to_be_bytes());
                out.extend_from_slice(&(frames.len() as u32).to_be_bytes());
                for frame in frames {
                    put_bytes(&mut out, frame);
                }
            }
            ReplPdu::Ack {
                epoch,
                last_sequence,
                applied,
                durable,
            } => {
                out.extend_from_slice(&epoch.to_be_bytes());
                out.extend_from_slice(&last_sequence.to_be_bytes());
                out.extend_from_slice(&applied.to_be_bytes());
                out.push(u8::from(*durable));
            }
            ReplPdu::Heartbeat {
                epoch,
                last_sequence,
            } => {
                out.extend_from_slice(&epoch.to_be_bytes());
                out.extend_from_slice(&last_sequence.to_be_bytes());
            }
        }
        out
    }

    fn decode_body(tag: u8, r: &mut Reader<'_>) -> Result<Self, ClusterError> {
        Ok(match tag {
            TAG_HANDSHAKE => ReplPdu::Handshake {
                follower_id: r.str()?,
                last_sequence: r.u64()?,
            },
            TAG_HANDSHAKE_ACK => ReplPdu::HandshakeAck {
                epoch: r.u64()?,
                primary_id: r.str()?,
                watermark: r.u64()?,
                snapshot: match r.u8()? {
                    0 => None,
                    1 => Some(r.bytes()?),
                    _ => return Err(malformed("bad snapshot presence byte")),
                },
            },
            TAG_RECORDS => {
                let epoch = r.u64()?;
                let count = r.u32()? as usize;
                // Every frame costs at least a length prefix; reject counts
                // the remaining body cannot possibly hold before allocating.
                if count > r.remaining() / 4 {
                    return Err(malformed("record count exceeds body"));
                }
                let mut frames = Vec::with_capacity(count);
                for _ in 0..count {
                    frames.push(r.bytes()?);
                }
                ReplPdu::Records { epoch, frames }
            }
            TAG_ACK => ReplPdu::Ack {
                epoch: r.u64()?,
                last_sequence: r.u64()?,
                applied: r.u64()?,
                durable: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(malformed("bad durable flag")),
                },
            },
            TAG_HEARTBEAT => ReplPdu::Heartbeat {
                epoch: r.u64()?,
                last_sequence: r.u64()?,
            },
            _ => return Err(malformed("unknown replication tag")),
        })
    }
}

fn malformed(reason: &str) -> ClusterError {
    ClusterError::Malformed(reason.into())
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

struct Reader<'a> {
    rest: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(rest: &'a [u8]) -> Self {
        Reader { rest }
    }

    fn remaining(&self) -> usize {
        self.rest.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ClusterError> {
        if self.rest.len() < n {
            return Err(malformed("truncated body"));
        }
        let (head, rest) = self.rest.split_at(n);
        self.rest = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ClusterError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ClusterError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ClusterError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ClusterError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn str(&mut self) -> Result<String, ClusterError> {
        String::from_utf8(self.bytes()?).map_err(|_| malformed("invalid utf-8"))
    }

    fn finish(&self) -> Result<(), ClusterError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(malformed("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ReplPdu> {
        vec![
            ReplPdu::Handshake {
                follower_id: "follower-b".into(),
                last_sequence: 41,
            },
            ReplPdu::HandshakeAck {
                epoch: 3,
                primary_id: "primary-a".into(),
                watermark: 12,
                snapshot: None,
            },
            ReplPdu::HandshakeAck {
                epoch: 3,
                primary_id: "primary-a".into(),
                watermark: 12,
                snapshot: Some(vec![0xAB; 100]),
            },
            ReplPdu::Records {
                epoch: 3,
                frames: vec![vec![1, 2, 3], vec![], vec![9; 40]],
            },
            ReplPdu::Ack {
                epoch: 3,
                last_sequence: 44,
                applied: 3,
                durable: true,
            },
            ReplPdu::Heartbeat {
                epoch: 3,
                last_sequence: 44,
            },
        ]
    }

    #[test]
    fn every_pdu_roundtrips() {
        for pdu in samples() {
            let frame = pdu.encode();
            assert_eq!(ReplPdu::decode(&frame).unwrap(), pdu);
            assert_eq!(ReplPdu::frame_len(&frame).unwrap(), Some(frame.len()));
        }
    }

    #[test]
    fn structural_damage_is_rejected_not_panicked() {
        for pdu in samples() {
            let frame = pdu.encode();
            // Truncation at every boundary.
            for cut in 0..frame.len() {
                let _ = ReplPdu::decode(&frame[..cut]);
            }
            // Trailing garbage.
            let mut long = frame.clone();
            long.push(0);
            assert!(ReplPdu::decode(&long).is_err());
            // Every single-byte flip either still decodes or errors cleanly.
            for i in 0..frame.len() {
                let mut bent = frame.clone();
                bent[i] ^= 0xFF;
                let _ = ReplPdu::decode(&bent);
            }
        }
        assert!(matches!(
            ReplPdu::decode(b"XXXX\x01\x01\x00\x00\x00\x00"),
            Err(ClusterError::Malformed(_))
        ));
    }

    #[test]
    fn version_and_size_guards() {
        let mut frame = ReplPdu::Heartbeat {
            epoch: 1,
            last_sequence: 1,
        }
        .encode();
        frame[4] = 9;
        assert_eq!(
            ReplPdu::decode(&frame),
            Err(ClusterError::UnsupportedVersion(9))
        );
        frame[4] = REPL_VERSION;
        frame[6..10].copy_from_slice(&(MAX_REPL_BODY_LEN as u32 + 1).to_be_bytes());
        assert!(matches!(
            ReplPdu::decode(&frame),
            Err(ClusterError::Malformed(_))
        ));
        // A hostile record count cannot trigger a huge allocation.
        let bomb = ReplPdu::Records {
            epoch: 1,
            frames: vec![],
        };
        let mut frame = bomb.encode();
        let body_start = REPL_HEADER_LEN + 8;
        frame[body_start..body_start + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            ReplPdu::decode(&frame),
            Err(ClusterError::Malformed(_))
        ));
    }

    #[test]
    fn frame_len_streams_partial_headers() {
        let frame = ReplPdu::Heartbeat {
            epoch: 7,
            last_sequence: 9,
        }
        .encode();
        assert_eq!(ReplPdu::frame_len(&frame[..3]).unwrap(), None);
        assert_eq!(
            ReplPdu::frame_len(&frame[..REPL_HEADER_LEN - 1]).unwrap(),
            None
        );
        assert!(ReplPdu::frame_len(b"ROAP\x01").is_err(), "wrong magic");
    }
}
