//! The DRM Content Format (DCF): the container that carries encrypted media
//! together with descriptive headers.
//!
//! A DCF holds the AES-CBC-encrypted payload, the IV, descriptive metadata
//! (title, author) and the RightsIssuerURL the user can visit to obtain a
//! license. The payload stays encrypted at rest — the paper stresses that
//! secure memory is far too scarce to store content in clear, which is why
//! the consumption phase has to hash and decrypt the whole file on every
//! access.

use oma_crypto::sha1::DIGEST_SIZE;

/// Descriptive (non-protected) metadata carried in DCF headers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DcfHeaders {
    /// Human-readable title of the content.
    pub title: String,
    /// Author / artist.
    pub author: String,
    /// MIME type of the plaintext content.
    pub content_type: String,
    /// URL of the Rights Issuer where a license can be acquired.
    pub rights_issuer_url: String,
}

/// A packaged piece of DRM-protected content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dcf {
    content_id: String,
    headers: DcfHeaders,
    iv: [u8; 16],
    encrypted_payload: Vec<u8>,
    plaintext_len: usize,
}

impl Dcf {
    /// Assembles a DCF from its parts (used by the Content Issuer).
    pub fn new(
        content_id: &str,
        headers: DcfHeaders,
        iv: [u8; 16],
        encrypted_payload: Vec<u8>,
        plaintext_len: usize,
    ) -> Self {
        Dcf {
            content_id: content_id.to_string(),
            headers,
            iv,
            encrypted_payload,
            plaintext_len,
        }
    }

    /// The globally unique content identifier (`cid:` URI in the standard).
    pub fn content_id(&self) -> &str {
        &self.content_id
    }

    /// Descriptive headers.
    pub fn headers(&self) -> &DcfHeaders {
        &self.headers
    }

    /// Initialisation vector of the CBC encryption.
    pub fn iv(&self) -> &[u8; 16] {
        &self.iv
    }

    /// The encrypted payload.
    pub fn encrypted_payload(&self) -> &[u8] {
        &self.encrypted_payload
    }

    /// Length of the original plaintext in bytes.
    pub fn plaintext_len(&self) -> usize {
        self.plaintext_len
    }

    /// Total size of the DCF as stored on the device (headers + payload).
    pub fn stored_len(&self) -> usize {
        self.encrypted_payload.len()
            + self.headers.title.len()
            + self.headers.author.len()
            + self.headers.content_type.len()
            + self.headers.rights_issuer_url.len()
            + self.content_id.len()
            + 16
    }

    /// The byte string whose SHA-1 hash is recorded inside the Rights Object
    /// ("a hash value of the DCF is included in the Rights Object").
    ///
    /// The hash covers the encrypted payload, so integrity can be verified
    /// without decrypting.
    pub fn hash_input(&self) -> &[u8] {
        &self.encrypted_payload
    }

    /// Computes the DCF hash through an instrumented engine (used by the
    /// DRM Agent so the hashing cost is recorded).
    pub fn hash_with(&self, engine: &oma_crypto::CryptoEngine) -> [u8; DIGEST_SIZE] {
        engine.sha1(self.hash_input())
    }

    /// Computes the DCF hash without instrumentation (used by the Rights
    /// Issuer when it builds the Rights Object — server-side cost).
    pub fn hash(&self) -> [u8; DIGEST_SIZE] {
        oma_crypto::sha1::sha1(self.hash_input())
    }

    /// Returns a copy with a tampered payload byte, for integrity tests.
    pub fn tampered(&self) -> Dcf {
        let mut out = self.clone();
        if let Some(byte) = out.encrypted_payload.first_mut() {
            *byte ^= 0x01;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dcf {
        Dcf::new(
            "cid:song@example",
            DcfHeaders {
                title: "Song".into(),
                author: "Artist".into(),
                content_type: "audio/mpeg".into(),
                rights_issuer_url: "https://ri.example.com".into(),
            },
            [7u8; 16],
            vec![1, 2, 3, 4, 5, 6, 7, 8],
            5,
        )
    }

    #[test]
    fn accessors() {
        let dcf = sample();
        assert_eq!(dcf.content_id(), "cid:song@example");
        assert_eq!(dcf.headers().title, "Song");
        assert_eq!(dcf.iv(), &[7u8; 16]);
        assert_eq!(dcf.encrypted_payload().len(), 8);
        assert_eq!(dcf.plaintext_len(), 5);
        assert!(dcf.stored_len() > dcf.encrypted_payload().len());
    }

    #[test]
    fn hash_is_over_encrypted_payload() {
        let dcf = sample();
        assert_eq!(
            dcf.hash(),
            oma_crypto::sha1::sha1(&[1, 2, 3, 4, 5, 6, 7, 8])
        );
        let engine = oma_crypto::CryptoEngine::with_seed(1);
        assert_eq!(dcf.hash_with(&engine), dcf.hash());
        assert_eq!(
            engine
                .trace()
                .count(oma_crypto::Algorithm::Sha1)
                .invocations,
            1
        );
    }

    #[test]
    fn tampering_changes_hash() {
        let dcf = sample();
        assert_ne!(dcf.tampered().hash(), dcf.hash());
        assert_eq!(dcf.tampered().content_id(), dcf.content_id());
    }
}
