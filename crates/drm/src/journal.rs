//! The durability contract of the Rights Issuer service.
//!
//! A production Rights Issuer must survive a power loss without losing a
//! single registration or ever re-issuing a Rights Object id — OMA DRM's
//! replay protection and license identity both live in server state, so
//! durability is a *correctness* feature of the service, not an ops nicety.
//! This module defines the vocabulary that makes [`RiService`] durable
//! without binding it to any particular storage engine:
//!
//! * [`RiEvent`] — one entry per state mutation the service performs. Every
//!   handler that changes state emits exactly one event *after* the mutation
//!   (and after all of its random draws) and *before* the response leaves
//!   the service, so a write-ahead log sees mutations in commit order.
//! * [`RiStateImage`] — a complete, canonical snapshot of the mutable
//!   service state, including the RSA identity and the engine's random
//!   stream checkpoint. [`RiStateImage::apply`] replays one event onto an
//!   image; snapshot + ordered events = the service, byte for byte.
//! * [`RiJournal`] — what the service needs from a store: record an event,
//!   flush buffered records, persist a snapshot. Implemented by
//!   `oma_store::RiStore`.
//! * [`StateSource`] — what recovery needs from a store: the latest
//!   snapshot with all surviving events already applied.
//!   [`RiService::recover`] turns it back into a serving instance.
//!
//! # Why events carry the RNG checkpoint
//!
//! The service draws nonces, PSS salts, `K_MAC`/`K_REK` key material and KEM
//! secrets from one deterministic engine stream. "Recovery rebuilds
//! byte-identical state" therefore has to include that stream: a recovered
//! service must sign the *next* response with exactly the salt an
//! uninterrupted run would have used. [`RiJournal::record`] receives the
//! post-event stream checkpoint; replay applies events in order and restores
//! the checkpoint of the last surviving record. A log truncated by a torn
//! write thus recovers to a consistent cut: the state *and* the random
//! stream as of the last durable event.
//!
//! [`RiService`]: crate::service::RiService
//! [`RiService::recover`]: crate::service::RiService::recover

use crate::domain::DomainId;
use crate::error::DrmError;
use crate::rel::RightsTemplate;
use oma_crypto::rsa::RsaKeyPair;
use oma_crypto::sha1::DIGEST_SIZE;
use oma_pki::ocsp::OcspResponse;
use oma_pki::{Certificate, Timestamp};
use std::sync::Arc;

/// One durable state mutation of the Rights Issuer service, in the order the
/// service committed it. The event taxonomy covers every mutation a handler
/// can perform; anything not listed here is derived state.
///
/// Deliberately *not* `#[non_exhaustive]`: the storage codec must encode
/// every variant, and adding one should break its build until the encoding
/// (and a golden vector) exists.
#[derive(Clone, PartialEq, Eq)]
pub enum RiEvent {
    /// A content item (CEK, DCF hash and license template) entered the
    /// catalogue.
    ContentAdded {
        /// Content identifier.
        content_id: String,
        /// Content encryption key received from the Content Issuer.
        cek: [u8; 16],
        /// Hash binding of the DCF the CEK encrypts.
        dcf_hash: [u8; DIGEST_SIZE],
        /// License template on sale for this content.
        template: RightsTemplate,
    },
    /// A `DeviceHello` opened (or superseded) a pending ROAP session.
    SessionOpened {
        /// The session id allocated for this hello.
        session_id: u64,
        /// Device that said hello.
        device_id: String,
        /// The RI nonce the device must echo into its signed request.
        ri_nonce: Vec<u8>,
        /// Server clock when the session was opened (drives the TTL sweep).
        opened_at: Timestamp,
    },
    /// A registration completed: the session was consumed and the device is
    /// now trusted.
    DeviceRegistered {
        /// The session the registration consumed.
        session_id: u64,
        /// The registered device.
        device_id: String,
        /// The device certificate pinned for later signature checks.
        certificate: Certificate,
    },
    /// A Rights Object id was allocated from a scope's sequence.
    RoIssued {
        /// Allocation scope (`dev:<device_id>` or `dom:<domain_id>`).
        scope: String,
        /// The sequence number the id consumed.
        sequence: u64,
    },
    /// A domain was created with a fresh shared key.
    DomainCreated {
        /// The new domain's identifier.
        domain_id: DomainId,
        /// The domain key members receive on join.
        key: [u8; 16],
        /// Member capacity.
        max_members: u64,
    },
    /// A device joined a domain. The event carries the domain's key
    /// material as the join handler saw it: a join can reach the log ahead
    /// of its domain's `DomainCreated` record (the live insert precedes
    /// that record), and if a crash then tears the creation record off,
    /// replay must still rebuild the domain with the key the member was
    /// acknowledged with — never a zeroed stub.
    DomainJoined {
        /// The domain joined.
        domain_id: DomainId,
        /// The joining device.
        device_id: String,
        /// The domain key the joining device received.
        key: [u8; 16],
        /// Domain-key generation at join time.
        generation: u32,
        /// Member capacity of the domain.
        max_members: u64,
    },
    /// A device left a domain.
    DomainLeft {
        /// The domain left.
        domain_id: DomainId,
        /// The leaving device.
        device_id: String,
    },
    /// The cached OCSP response presented during registration was replaced.
    OcspRefreshed {
        /// The fresh response.
        response: OcspResponse,
    },
    /// The pending-session TTL configuration changed. Journaled so that a
    /// later [`RiEvent::SessionsSwept`] replays with the TTL that was
    /// actually in force, not whatever the last snapshot happened to carry.
    SessionTtlSet {
        /// The new TTL in seconds (0 disables sweeping).
        seconds: u64,
    },
    /// The TTL sweep ran at `now` and removed the listed pending sessions.
    /// The event names the swept session ids explicitly rather than
    /// re-running the expiry predicate on replay: a `SessionOpened` that
    /// reached the log *after* the sweep record (its handler raced the
    /// sweep) must not be expired retroactively by the replayed sweep.
    SessionsSwept {
        /// The server clock the sweep used.
        now: Timestamp,
        /// The session ids the sweep removed, ascending.
        session_ids: Vec<u64>,
    },
}

/// Whether a pending session opened at `opened_at` has expired by `now`
/// under `ttl_seconds` — the live sweep's predicate. (Replay does not
/// re-run it: [`RiEvent::SessionsSwept`] names the swept ids explicitly.)
pub(crate) fn session_expired(ttl_seconds: u64, opened_at: Timestamp, now: Timestamp) -> bool {
    ttl_seconds > 0 && now.seconds().saturating_sub(opened_at.seconds()) > ttl_seconds
}

/// Redaction marker used by the `Debug` impls below: images and events
/// carry raw key material (CEKs, domain keys, the RNG checkpoint), and the
/// repo's discipline — set by `RsaPrivateKey`'s `Debug` — is that secrets
/// never reach debug output.
const REDACTED: &str = "<redacted>";

/// A pending ROAP session as it appears in a state image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionImage {
    /// Session id.
    pub session_id: u64,
    /// Device that opened the session.
    pub device_id: String,
    /// The RI nonce issued for it.
    pub ri_nonce: Vec<u8>,
    /// Server clock at open time.
    pub opened_at: Timestamp,
}

/// A registered device as it appears in a state image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisteredImage {
    /// Device identifier.
    pub device_id: String,
    /// The certificate pinned at registration.
    pub certificate: Certificate,
}

/// A catalogue entry as it appears in a state image.
#[derive(Clone, PartialEq, Eq)]
pub struct ContentImage {
    /// Content identifier.
    pub content_id: String,
    /// Content encryption key.
    pub cek: [u8; 16],
    /// DCF hash binding.
    pub dcf_hash: [u8; DIGEST_SIZE],
    /// License template on sale.
    pub template: RightsTemplate,
}

/// A domain as it appears in a state image.
#[derive(Clone, PartialEq, Eq)]
pub struct DomainImage {
    /// Domain identifier.
    pub domain_id: DomainId,
    /// Current shared domain key.
    pub key: [u8; 16],
    /// Key generation.
    pub generation: u32,
    /// Member capacity.
    pub max_members: u64,
    /// Member device ids, sorted.
    pub members: Vec<String>,
}

/// A complete snapshot of the mutable Rights Issuer state, canonicalised
/// (every list sorted by its key) so that two images of the same logical
/// state compare — and encode — identically.
///
/// The image deliberately contains the full identity (RSA key pair,
/// certificates, OCSP) and the engine RNG checkpoint: recovery must
/// reproduce *signatures*, not just table contents.
#[derive(Clone, PartialEq, Eq)]
pub struct RiStateImage {
    /// Rights Issuer identifier.
    pub id: String,
    /// The service's RSA identity (private key included).
    pub keys: RsaKeyPair,
    /// The service certificate.
    pub certificate: Certificate,
    /// The trusted CA root.
    pub ca_root: Certificate,
    /// The cached OCSP response presented during registration.
    pub ocsp: OcspResponse,
    /// Next ROAP session id to allocate.
    pub next_session: u64,
    /// Total Rights Objects issued.
    pub issued_ros: u64,
    /// Pending-session TTL in seconds (0 = sweeping disabled).
    pub session_ttl: u64,
    /// Pending ROAP sessions, sorted by session id.
    pub sessions: Vec<SessionImage>,
    /// Registered devices, sorted by device id.
    pub registered: Vec<RegisteredImage>,
    /// Content catalogue, sorted by content id.
    pub content: Vec<ContentImage>,
    /// Domains, sorted by domain id.
    pub domains: Vec<DomainImage>,
    /// Per-scope Rights-Object-id sequences (`scope` → next sequence),
    /// sorted by scope.
    pub ro_sequences: Vec<(String, u64)>,
    /// Checkpoint of the engine's deterministic random stream.
    pub rng_state: [u8; 32],
}

impl std::fmt::Debug for RiEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RiEvent::ContentAdded {
                content_id,
                dcf_hash,
                template,
                ..
            } => f
                .debug_struct("ContentAdded")
                .field("content_id", content_id)
                .field("cek", &REDACTED)
                .field("dcf_hash", dcf_hash)
                .field("template", template)
                .finish(),
            RiEvent::SessionOpened {
                session_id,
                device_id,
                ri_nonce,
                opened_at,
            } => f
                .debug_struct("SessionOpened")
                .field("session_id", session_id)
                .field("device_id", device_id)
                .field("ri_nonce", ri_nonce)
                .field("opened_at", opened_at)
                .finish(),
            RiEvent::DeviceRegistered {
                session_id,
                device_id,
                certificate,
            } => f
                .debug_struct("DeviceRegistered")
                .field("session_id", session_id)
                .field("device_id", device_id)
                .field("certificate", certificate)
                .finish(),
            RiEvent::RoIssued { scope, sequence } => f
                .debug_struct("RoIssued")
                .field("scope", scope)
                .field("sequence", sequence)
                .finish(),
            RiEvent::DomainCreated {
                domain_id,
                max_members,
                ..
            } => f
                .debug_struct("DomainCreated")
                .field("domain_id", domain_id)
                .field("key", &REDACTED)
                .field("max_members", max_members)
                .finish(),
            RiEvent::DomainJoined {
                domain_id,
                device_id,
                generation,
                max_members,
                ..
            } => f
                .debug_struct("DomainJoined")
                .field("domain_id", domain_id)
                .field("device_id", device_id)
                .field("key", &REDACTED)
                .field("generation", generation)
                .field("max_members", max_members)
                .finish(),
            RiEvent::DomainLeft {
                domain_id,
                device_id,
            } => f
                .debug_struct("DomainLeft")
                .field("domain_id", domain_id)
                .field("device_id", device_id)
                .finish(),
            RiEvent::OcspRefreshed { response } => f
                .debug_struct("OcspRefreshed")
                .field("response", response)
                .finish(),
            RiEvent::SessionTtlSet { seconds } => f
                .debug_struct("SessionTtlSet")
                .field("seconds", seconds)
                .finish(),
            RiEvent::SessionsSwept { now, session_ids } => f
                .debug_struct("SessionsSwept")
                .field("now", now)
                .field("session_ids", session_ids)
                .finish(),
        }
    }
}

impl std::fmt::Debug for ContentImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContentImage")
            .field("content_id", &self.content_id)
            .field("cek", &REDACTED)
            .field("dcf_hash", &self.dcf_hash)
            .field("template", &self.template)
            .finish()
    }
}

impl std::fmt::Debug for DomainImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DomainImage")
            .field("domain_id", &self.domain_id)
            .field("key", &REDACTED)
            .field("generation", &self.generation)
            .field("max_members", &self.max_members)
            .field("members", &self.members)
            .finish()
    }
}

impl std::fmt::Debug for RiStateImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `keys` relies on RsaPrivateKey's own redacting Debug; the RNG
        // checkpoint is a secret in its own right (it predicts every
        // future nonce and salt).
        f.debug_struct("RiStateImage")
            .field("id", &self.id)
            .field("keys", &self.keys)
            .field("certificate", &self.certificate)
            .field("next_session", &self.next_session)
            .field("issued_ros", &self.issued_ros)
            .field("session_ttl", &self.session_ttl)
            .field("sessions", &self.sessions)
            .field("registered", &self.registered)
            .field("content", &self.content)
            .field("domains", &self.domains)
            .field("ro_sequences", &self.ro_sequences)
            .field("rng_state", &REDACTED)
            .finish_non_exhaustive()
    }
}

impl RiStateImage {
    /// Replays one event onto the image, mirroring exactly what the live
    /// service's handler did to its own state. The caller is responsible for
    /// updating [`RiStateImage::rng_state`] from the journal record that
    /// carried the event.
    pub fn apply(&mut self, event: &RiEvent) {
        match event {
            RiEvent::ContentAdded {
                content_id,
                cek,
                dcf_hash,
                template,
            } => {
                let entry = ContentImage {
                    content_id: content_id.clone(),
                    cek: *cek,
                    dcf_hash: *dcf_hash,
                    template: template.clone(),
                };
                match self
                    .content
                    .binary_search_by(|c| c.content_id.cmp(content_id))
                {
                    Ok(i) => self.content[i] = entry,
                    Err(i) => self.content.insert(i, entry),
                }
            }
            RiEvent::SessionOpened {
                session_id,
                device_id,
                ri_nonce,
                opened_at,
            } => {
                // Mirror the service's supersession rule: of two sessions
                // for one device, the one with the larger id survives.
                if let Some(i) = self.sessions.iter().position(|s| &s.device_id == device_id) {
                    if self.sessions[i].session_id >= *session_id {
                        self.next_session = self.next_session.max(session_id + 1);
                        return;
                    }
                    self.sessions.remove(i);
                }
                let image = SessionImage {
                    session_id: *session_id,
                    device_id: device_id.clone(),
                    ri_nonce: ri_nonce.clone(),
                    opened_at: *opened_at,
                };
                match self
                    .sessions
                    .binary_search_by_key(session_id, |s| s.session_id)
                {
                    Ok(i) => self.sessions[i] = image,
                    Err(i) => self.sessions.insert(i, image),
                }
                self.next_session = self.next_session.max(session_id + 1);
            }
            RiEvent::DeviceRegistered {
                session_id,
                device_id,
                certificate,
            } => {
                self.sessions.retain(|s| s.session_id != *session_id);
                let entry = RegisteredImage {
                    device_id: device_id.clone(),
                    certificate: certificate.clone(),
                };
                match self
                    .registered
                    .binary_search_by(|r| r.device_id.cmp(device_id))
                {
                    Ok(i) => self.registered[i] = entry,
                    Err(i) => self.registered.insert(i, entry),
                }
            }
            RiEvent::RoIssued { scope, sequence } => {
                // Idempotent: a record replayed onto an image that already
                // reflects it (a snapshot captured mid-handler, before the
                // record was appended) must not advance anything twice.
                let next = sequence + 1;
                match self.ro_sequences.binary_search_by(|(s, _)| s.cmp(scope)) {
                    Ok(i) => {
                        let current = self.ro_sequences[i].1;
                        if next > current {
                            self.ro_sequences[i].1 = next;
                            self.issued_ros += next - current;
                        }
                    }
                    Err(i) => {
                        self.ro_sequences.insert(i, (scope.clone(), next));
                        self.issued_ros += next;
                    }
                }
            }
            RiEvent::DomainCreated {
                domain_id,
                key,
                max_members,
            } => {
                match self
                    .domains
                    .binary_search_by(|d| d.domain_id.cmp(domain_id))
                {
                    // Merge, don't clobber: the image may already hold this
                    // domain (a snapshot captured between the live insert
                    // and this record) or a stub installed by an
                    // out-of-order `DomainJoined`. Members acknowledged to
                    // devices must survive in either case.
                    Ok(i) => {
                        self.domains[i].key = *key;
                        self.domains[i].max_members = *max_members;
                    }
                    Err(i) => self.domains.insert(
                        i,
                        DomainImage {
                            domain_id: domain_id.clone(),
                            key: *key,
                            generation: 0,
                            max_members: *max_members,
                            members: Vec::new(),
                        },
                    ),
                }
            }
            RiEvent::DomainJoined {
                domain_id,
                device_id,
                key,
                generation,
                max_members,
            } => {
                match self
                    .domains
                    .binary_search_by(|d| d.domain_id.cmp(domain_id))
                {
                    Ok(i) => {
                        let members = &mut self.domains[i].members;
                        if let Err(j) = members.binary_search(device_id) {
                            members.insert(j, device_id.clone());
                        }
                    }
                    // A join journaled ahead of its domain's creation (the
                    // live insert precedes the create record, so a racing
                    // join can reach the log first): rebuild the domain
                    // from the key material the member was acknowledged
                    // with, so even a torn-off `DomainCreated` record never
                    // recovers a domain whose key no member holds.
                    Err(i) => self.domains.insert(
                        i,
                        DomainImage {
                            domain_id: domain_id.clone(),
                            key: *key,
                            generation: *generation,
                            max_members: *max_members,
                            members: vec![device_id.clone()],
                        },
                    ),
                }
            }
            RiEvent::DomainLeft {
                domain_id,
                device_id,
            } => {
                if let Ok(i) = self
                    .domains
                    .binary_search_by(|d| d.domain_id.cmp(domain_id))
                {
                    let members = &mut self.domains[i].members;
                    if let Ok(j) = members.binary_search(device_id) {
                        members.remove(j);
                    }
                }
            }
            RiEvent::OcspRefreshed { response } => {
                self.ocsp = response.clone();
            }
            RiEvent::SessionTtlSet { seconds } => {
                self.session_ttl = *seconds;
            }
            RiEvent::SessionsSwept { session_ids, .. } => {
                self.sessions
                    .retain(|s| session_ids.binary_search(&s.session_id).is_err());
            }
        }
    }
}

/// What the Rights Issuer service needs from a durable store. Implemented by
/// `oma_store::RiStore`; the service only ever sees this trait, so the
/// storage engine can evolve independently.
///
/// `record` is infallible by signature: a handler that has already mutated
/// state and drawn from the random stream has nothing useful to do with a
/// storage error mid-protocol. Implementations latch the first failure
/// instead and surface it from [`RiJournal::flush`] (and their own health
/// accessors), so operators see the fault at the next flush/snapshot
/// boundary rather than as a torn protocol exchange.
pub trait RiJournal: Send + Sync {
    /// Records one committed state mutation. `rng_checkpoint` yields the
    /// engine's random-stream state; the implementation MUST evaluate it
    /// inside whatever critical section orders its appends, so checkpoints
    /// are monotone in log order. (A checkpoint captured outside that
    /// section could land *behind* a concurrently appended record's — and
    /// recovery restoring the last record's checkpoint would then rewind
    /// the stream and re-draw an outstanding nonce.)
    fn record(&self, event: &RiEvent, rng_checkpoint: &dyn Fn() -> [u8; 32]);

    /// Forces every buffered record onto durable media.
    ///
    /// # Errors
    ///
    /// [`DrmError::Store`] when the log cannot be made durable (including a
    /// fault latched by an earlier `record`).
    fn flush(&self) -> Result<(), DrmError>;

    /// Persists a full state snapshot, after which the store may compact
    /// the log records the snapshot covers. `capture` produces the image;
    /// the implementation MUST evaluate it inside the critical section that
    /// orders its appends, so the snapshot's coverage watermark cannot
    /// claim records appended after the image was taken (which would
    /// silently drop those events from replay).
    ///
    /// # Errors
    ///
    /// [`DrmError::Store`] when the snapshot cannot be written durably.
    fn snapshot(&self, capture: &dyn Fn() -> RiStateImage) -> Result<(), DrmError>;

    /// Whether the journal is still persisting what it acknowledges.
    /// Returns the latched fault, if any — a server should stop
    /// acknowledging work once this errors, because nothing recorded since
    /// the fault is durable.
    ///
    /// # Errors
    ///
    /// [`DrmError::Store`] describing the latched fault.
    fn health(&self) -> Result<(), DrmError> {
        Ok(())
    }
}

impl<J: RiJournal + ?Sized> RiJournal for Arc<J> {
    fn record(&self, event: &RiEvent, rng_checkpoint: &dyn Fn() -> [u8; 32]) {
        (**self).record(event, rng_checkpoint);
    }

    fn flush(&self) -> Result<(), DrmError> {
        (**self).flush()
    }

    fn snapshot(&self, capture: &dyn Fn() -> RiStateImage) -> Result<(), DrmError> {
        (**self).snapshot(capture)
    }

    fn health(&self) -> Result<(), DrmError> {
        (**self).health()
    }
}

/// What recovery needs from a durable store: the latest snapshot with every
/// surviving journal record already applied (events in commit order,
/// [`RiStateImage::rng_state`] set from the last surviving record).
pub trait StateSource {
    /// Loads the recovered state image.
    ///
    /// # Errors
    ///
    /// [`DrmError::Store`] when no genesis snapshot exists or the snapshot
    /// itself is unreadable. A corrupt or torn log *tail* is not an error:
    /// recovery stops cleanly at the last valid record.
    fn load_state(&self) -> Result<RiStateImage, DrmError>;
}

impl<S: StateSource + ?Sized> StateSource for Arc<S> {
    fn load_state(&self) -> Result<RiStateImage, DrmError> {
        (**self).load_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::{Permission, RightsTemplate};
    use oma_crypto::rsa::RsaKeyPair;
    use oma_pki::{CertificationAuthority, EntityRole, ValidityPeriod};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn image() -> RiStateImage {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let keys = RsaKeyPair::generate(384, &mut rng);
        let certificate = ca.issue(
            "ri",
            EntityRole::RightsIssuer,
            keys.public().clone(),
            ValidityPeriod::starting_at(Timestamp::new(0), 1000),
        );
        let ocsp = ca.ocsp_respond(
            &oma_pki::ocsp::OcspRequest {
                serial: certificate.serial(),
                nonce: Vec::new(),
            },
            Timestamp::new(0),
        );
        RiStateImage {
            id: "ri".into(),
            keys,
            certificate,
            ca_root: ca.root_certificate().clone(),
            ocsp,
            next_session: 1,
            issued_ros: 0,
            session_ttl: 0,
            sessions: Vec::new(),
            registered: Vec::new(),
            content: Vec::new(),
            domains: Vec::new(),
            ro_sequences: Vec::new(),
            rng_state: [0u8; 32],
        }
    }

    fn open(image: &mut RiStateImage, session_id: u64, device: &str, at: u64) {
        image.apply(&RiEvent::SessionOpened {
            session_id,
            device_id: device.into(),
            ri_nonce: vec![1; 14],
            opened_at: Timestamp::new(at),
        });
    }

    #[test]
    fn session_supersession_keeps_the_newer_session() {
        let mut image = image();
        open(&mut image, 1, "dev-a", 0);
        open(&mut image, 2, "dev-a", 5);
        assert_eq!(image.sessions.len(), 1);
        assert_eq!(image.sessions[0].session_id, 2);
        assert_eq!(image.next_session, 3);
        // A stale (smaller-id) open replayed out of order does not clobber.
        open(&mut image, 1, "dev-a", 0);
        assert_eq!(image.sessions[0].session_id, 2);
    }

    #[test]
    fn registration_consumes_the_session() {
        let mut image = image();
        open(&mut image, 1, "dev-a", 0);
        let cert = image.certificate.clone();
        image.apply(&RiEvent::DeviceRegistered {
            session_id: 1,
            device_id: "dev-a".into(),
            certificate: cert,
        });
        assert!(image.sessions.is_empty());
        assert_eq!(image.registered.len(), 1);
        assert_eq!(image.registered[0].device_id, "dev-a");
    }

    #[test]
    fn ro_sequences_are_order_independent_per_scope() {
        let mut image = image();
        image.apply(&RiEvent::RoIssued {
            scope: "dev:a".into(),
            sequence: 1,
        });
        image.apply(&RiEvent::RoIssued {
            scope: "dev:a".into(),
            sequence: 0,
        });
        image.apply(&RiEvent::RoIssued {
            scope: "dev:b".into(),
            sequence: 0,
        });
        assert_eq!(
            image.ro_sequences,
            vec![("dev:a".to_string(), 2), ("dev:b".to_string(), 1)]
        );
        assert_eq!(image.issued_ros, 3);
    }

    #[test]
    fn domain_membership_replay() {
        let mut image = image();
        image.apply(&RiEvent::DomainCreated {
            domain_id: DomainId::new("family"),
            key: [9; 16],
            max_members: 4,
        });
        for device in ["b", "a", "a"] {
            image.apply(&RiEvent::DomainJoined {
                domain_id: DomainId::new("family"),
                device_id: device.into(),
                key: [9; 16],
                generation: 0,
                max_members: 4,
            });
        }
        assert_eq!(image.domains[0].members, vec!["a", "b"]);
        image.apply(&RiEvent::DomainLeft {
            domain_id: DomainId::new("family"),
            device_id: "a".into(),
        });
        assert_eq!(image.domains[0].members, vec!["b"]);
    }

    #[test]
    fn sweep_replay_removes_exactly_the_named_sessions() {
        let mut image = image();
        image.session_ttl = 10;
        open(&mut image, 1, "dev-old", 0);
        open(&mut image, 2, "dev-new", 95);
        // Only the ids named by the sweep are removed — a session the live
        // sweep did not see (whatever its age) is left alone.
        image.apply(&RiEvent::SessionsSwept {
            now: Timestamp::new(100),
            session_ids: vec![1],
        });
        assert_eq!(image.sessions.len(), 1);
        assert_eq!(image.sessions[0].device_id, "dev-new");
        assert!(session_expired(10, Timestamp::new(0), Timestamp::new(100)));
        assert!(!session_expired(0, Timestamp::new(0), Timestamp::new(100)));
    }

    #[test]
    fn join_before_create_replays_with_the_acknowledged_key() {
        // A DomainJoined record can precede its DomainCreated record in the
        // log; if the creation record is torn off, the domain must still
        // recover with the key the member actually holds.
        let mut image = image();
        image.apply(&RiEvent::DomainJoined {
            domain_id: DomainId::new("family"),
            device_id: "phone-001".into(),
            key: [7; 16],
            generation: 3,
            max_members: 4,
        });
        assert_eq!(image.domains[0].key, [7; 16]);
        assert_eq!(image.domains[0].generation, 3);
        assert_eq!(image.domains[0].members, vec!["phone-001"]);
        // When the creation record *did* survive, it merges without
        // clobbering the membership.
        image.apply(&RiEvent::DomainCreated {
            domain_id: DomainId::new("family"),
            key: [7; 16],
            max_members: 4,
        });
        assert_eq!(image.domains[0].members, vec!["phone-001"]);
    }

    #[test]
    fn content_added_replaces_by_id() {
        let mut image = image();
        for count in [1u32, 2] {
            image.apply(&RiEvent::ContentAdded {
                content_id: "cid:x".into(),
                cek: [0; 16],
                dcf_hash: [0; DIGEST_SIZE],
                template: RightsTemplate::counted(Permission::Play, count),
            });
        }
        assert_eq!(image.content.len(), 1);
        assert_eq!(
            image.content[0].template,
            RightsTemplate::counted(Permission::Play, 2)
        );
    }
}
