//! The Content Issuer: packages media into DCFs.
//!
//! The Content Issuer owns digital content and, in a procedure outside the
//! ROAP protocol ("any protocol" in Figure 1 of the paper), delivers
//! encrypted DCFs to devices and the corresponding content encryption keys
//! to the Rights Issuers it has negotiated licenses with.

use crate::dcf::{Dcf, DcfHeaders};
use oma_crypto::cbc;
use rand::RngCore;

/// The Content Issuer actor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentIssuer {
    id: String,
}

impl ContentIssuer {
    /// Creates a Content Issuer with the given identifier (typically a URL).
    pub fn new(id: &str) -> Self {
        ContentIssuer { id: id.to_string() }
    }

    /// The Content Issuer identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Packages `content` into a DCF under a freshly generated content
    /// encryption key, returning both. The key is subsequently shared with a
    /// Rights Issuer (see [`crate::RightsIssuer::add_content`]).
    pub fn package<R: RngCore + ?Sized>(
        &self,
        content: &[u8],
        content_id: &str,
        rng: &mut R,
    ) -> (Dcf, [u8; 16]) {
        self.package_with_headers(content, content_id, DcfHeaders::default(), rng)
    }

    /// Packages `content` with explicit descriptive headers.
    pub fn package_with_headers<R: RngCore + ?Sized>(
        &self,
        content: &[u8],
        content_id: &str,
        mut headers: DcfHeaders,
        rng: &mut R,
    ) -> (Dcf, [u8; 16]) {
        let mut cek = [0u8; 16];
        rng.fill_bytes(&mut cek);
        let mut iv = [0u8; 16];
        rng.fill_bytes(&mut iv);
        if headers.rights_issuer_url.is_empty() {
            headers.rights_issuer_url = format!("https://{}/rights", self.id);
        }
        let encrypted =
            cbc::encrypt(&cek, &iv, content).expect("fresh 16-byte key and IV are always valid");
        let dcf = Dcf::new(content_id, headers, iv, encrypted, content.len());
        (dcf, cek)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn packaged_content_is_encrypted_and_recoverable() {
        let ci = ContentIssuer::new("ci.example.com");
        let mut rng = StdRng::seed_from_u64(1);
        let content = b"a polyphonic ringtone";
        let (dcf, cek) = ci.package(content, "cid:ring-1", &mut rng);
        assert_eq!(dcf.content_id(), "cid:ring-1");
        assert_eq!(dcf.plaintext_len(), content.len());
        assert_ne!(dcf.encrypted_payload(), content.as_slice());
        let recovered = cbc::decrypt(&cek, dcf.iv(), dcf.encrypted_payload()).unwrap();
        assert_eq!(recovered, content);
        assert!(dcf.headers().rights_issuer_url.contains("ci.example.com"));
        assert_eq!(ci.id(), "ci.example.com");
    }

    #[test]
    fn distinct_packages_use_distinct_keys() {
        let ci = ContentIssuer::new("ci");
        let mut rng = StdRng::seed_from_u64(2);
        let (a, cek_a) = ci.package(b"same content", "cid:a", &mut rng);
        let (b, cek_b) = ci.package(b"same content", "cid:b", &mut rng);
        assert_ne!(cek_a, cek_b);
        assert_ne!(a.encrypted_payload(), b.encrypted_payload());
    }

    #[test]
    fn explicit_headers_preserved() {
        let ci = ContentIssuer::new("ci");
        let mut rng = StdRng::seed_from_u64(3);
        let headers = DcfHeaders {
            title: "Track".into(),
            author: "Band".into(),
            content_type: "audio/mpeg".into(),
            rights_issuer_url: "https://ri.example.com".into(),
        };
        let (dcf, _) = ci.package_with_headers(b"x", "cid:t", headers, &mut rng);
        assert_eq!(dcf.headers().title, "Track");
        assert_eq!(dcf.headers().rights_issuer_url, "https://ri.example.com");
    }
}
