//! The transport-agnostic ROAP client.
//!
//! [`RoapClient`] is the *only* way a [`DrmAgent`](crate::DrmAgent) talks to
//! a Rights Issuer: it encodes each request into a [`RoapPdu`] frame, pushes
//! the bytes through a [`RoapTransport`], and decodes the peer's answer —
//! mapping wire-level [`RoapStatus`](crate::wire::RoapStatus) errors back
//! into [`DrmError`]s. Two transports ship with the crate:
//!
//! * [`InProcTransport`] — calls [`RiService::dispatch`] directly on a
//!   borrowed service. The legacy `register`/`register_with` agent methods
//!   are thin wrappers over a client on this transport, so the direct-call
//!   API and the wire API are one code path.
//! * [`ChannelTransport`] — a byte channel between two endpoints, for tests
//!   and examples that want a real serialized boundary (typically with
//!   [`serve`] running the service end on another thread).
//!
//! Any real transport (TCP framing, HTTP body, QUIC stream) only has to
//! implement [`RoapTransport::roundtrip`]: frame bytes out, frame bytes in.

use crate::domain::DomainId;
use crate::error::DrmError;
use crate::roap::{
    DeviceHello, JoinDomainRequest, JoinDomainResponse, RegistrationRequest, RegistrationResponse,
    RiHello, RoRequest, RoResponse, RoapError,
};
use crate::service::RiService;
use crate::wire::RoapPdu;
use std::sync::mpsc;

/// A bidirectional byte pipe that carries one ROAP frame per exchange.
///
/// Implementations move opaque frames; all protocol knowledge lives in
/// [`RoapClient`] on one side and [`RiService::dispatch`] on the other.
pub trait RoapTransport {
    /// Sends one encoded request frame and returns the peer's response frame.
    ///
    /// # Errors
    ///
    /// [`DrmError::Transport`] when the frame could not be delivered or no
    /// response arrived.
    fn roundtrip(&self, frame: &[u8]) -> Result<Vec<u8>, DrmError>;
}

/// A transport that hands each frame straight to a borrowed
/// [`RiService::dispatch`] — no threads, no copies beyond the frames
/// themselves.
#[derive(Debug, Clone, Copy)]
pub struct InProcTransport<'a> {
    service: &'a RiService,
}

impl<'a> InProcTransport<'a> {
    /// Wraps a service reference.
    pub fn new(service: &'a RiService) -> Self {
        InProcTransport { service }
    }
}

impl RoapTransport for InProcTransport<'_> {
    fn roundtrip(&self, frame: &[u8]) -> Result<Vec<u8>, DrmError> {
        Ok(self.service.dispatch(frame))
    }
}

/// One endpoint of an in-memory byte channel. Frames written by one endpoint
/// are read by the other, in order.
///
/// The server side is usually a thread running [`serve`]; see the
/// `roap_wire` example and the `wire_lifecycle` test for the pattern.
#[derive(Debug)]
pub struct ChannelTransport {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
}

impl ChannelTransport {
    /// Creates a connected pair of endpoints.
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (a_tx, b_rx) = mpsc::channel();
        let (b_tx, a_rx) = mpsc::channel();
        (
            ChannelTransport { tx: a_tx, rx: a_rx },
            ChannelTransport { tx: b_tx, rx: b_rx },
        )
    }

    /// Receives the next frame from the peer, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// [`DrmError::Transport`] once the peer endpoint is dropped.
    pub fn recv(&self) -> Result<Vec<u8>, DrmError> {
        self.rx
            .recv()
            .map_err(|_| DrmError::Transport("channel closed".into()))
    }

    /// Sends one frame to the peer.
    ///
    /// # Errors
    ///
    /// [`DrmError::Transport`] once the peer endpoint is dropped.
    pub fn send(&self, frame: Vec<u8>) -> Result<(), DrmError> {
        self.tx
            .send(frame)
            .map_err(|_| DrmError::Transport("channel closed".into()))
    }
}

impl RoapTransport for ChannelTransport {
    fn roundtrip(&self, frame: &[u8]) -> Result<Vec<u8>, DrmError> {
        self.send(frame.to_vec())?;
        self.recv()
    }
}

/// Serves ROAP over one [`ChannelTransport`] endpoint: every received frame
/// is passed through [`RiService::dispatch`] and the response frame sent
/// back.
///
/// The loop runs until the peer endpoint disconnects, which is surfaced as
/// the [`DrmError::Transport`] it was detected as — a server thread
/// supervising many connections can tell *that* and *why* a connection
/// ended instead of silently falling off a loop (the TCP connection loop in
/// `oma-net` reports disconnects the same way).
///
/// # Errors
///
/// Always returns [`DrmError::Transport`] eventually: "channel closed" is
/// the clean end of a conversation whose client hung up.
pub fn serve(service: &RiService, endpoint: &ChannelTransport) -> Result<(), DrmError> {
    loop {
        let frame = endpoint.recv()?;
        endpoint.send(service.dispatch(&frame))?;
    }
}

/// The ROAP protocol client: one typed method per request/response exchange,
/// generic over the transport the frames travel on.
#[derive(Debug)]
pub struct RoapClient<T> {
    transport: T,
}

impl<'a> RoapClient<InProcTransport<'a>> {
    /// A client speaking directly to an in-process service — the transport
    /// behind the legacy `*_with(&RiService)` agent methods.
    pub fn in_proc(service: &'a RiService) -> Self {
        RoapClient::new(InProcTransport::new(service))
    }
}

impl<T: RoapTransport> RoapClient<T> {
    /// Wraps a transport.
    pub fn new(transport: T) -> Self {
        RoapClient { transport }
    }

    /// The underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// One encode → roundtrip → decode exchange. Status-PDU errors become
    /// `Err`; a `Status(Ok)` ack is returned as a PDU for the caller to
    /// interpret.
    fn call(&self, request: &RoapPdu) -> Result<RoapPdu, DrmError> {
        let response = self.transport.roundtrip(&request.encode())?;
        let pdu = RoapPdu::decode(&response).map_err(DrmError::Roap)?;
        if let RoapPdu::Status(status) = &pdu {
            status.into_result()?;
        }
        Ok(pdu)
    }

    /// Registration pass 1 → 2: sends a `DeviceHello`, expects an `RiHello`.
    ///
    /// # Errors
    ///
    /// [`DrmError::Transport`] for transport failures, [`DrmError::Roap`]
    /// when the peer rejects the hello or answers with the wrong PDU.
    pub fn hello(&self, hello: &DeviceHello) -> Result<RiHello, DrmError> {
        match self.call(&RoapPdu::DeviceHello(hello.clone()))? {
            RoapPdu::RiHello(h) => Ok(h),
            _ => Err(DrmError::Roap(RoapError::Malformed)),
        }
    }

    /// Registration pass 3 → 4: sends a signed `RegistrationRequest`,
    /// expects a `RegistrationResponse`.
    ///
    /// # Errors
    ///
    /// See [`RoapClient::hello`]; protocol rejections carry the specific
    /// [`RoapError`].
    pub fn register(
        &self,
        request: &RegistrationRequest,
    ) -> Result<RegistrationResponse, DrmError> {
        match self.call(&RoapPdu::RegistrationRequest(request.clone()))? {
            RoapPdu::RegistrationResponse(r) => Ok(r),
            _ => Err(DrmError::Roap(RoapError::Malformed)),
        }
    }

    /// RO acquisition: sends a signed `RORequest`, expects an `ROResponse`.
    ///
    /// # Errors
    ///
    /// See [`RoapClient::hello`].
    pub fn request_ro(&self, request: &RoRequest) -> Result<RoResponse, DrmError> {
        match self.call(&RoapPdu::RoRequest(request.clone()))? {
            RoapPdu::RoResponse(r) => Ok(r),
            _ => Err(DrmError::Roap(RoapError::Malformed)),
        }
    }

    /// Domain join: sends a signed `JoinDomainRequest`, expects a
    /// `JoinDomainResponse`.
    ///
    /// # Errors
    ///
    /// See [`RoapClient::hello`].
    pub fn join_domain(&self, request: &JoinDomainRequest) -> Result<JoinDomainResponse, DrmError> {
        match self.call(&RoapPdu::JoinDomainRequest(request.clone()))? {
            RoapPdu::JoinDomainResponse(r) => Ok(r),
            _ => Err(DrmError::Roap(RoapError::Malformed)),
        }
    }

    /// Domain leave: expects a `Status(Ok)` ack.
    ///
    /// # Errors
    ///
    /// [`DrmError::Roap`] with [`RoapError::UnknownDomain`] for an unknown
    /// domain, [`DrmError::NotInDomain`] when the device was not a member.
    pub fn leave_domain(&self, device_id: &str, domain_id: &DomainId) -> Result<(), DrmError> {
        match self.call(&RoapPdu::LeaveDomainRequest {
            device_id: device_id.to_string(),
            domain_id: domain_id.clone(),
        })? {
            RoapPdu::Status(status) => status.into_result(),
            _ => Err(DrmError::Roap(RoapError::Malformed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oma_pki::CertificationAuthority;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn channel_pair_moves_frames_both_ways() {
        let (a, b) = ChannelTransport::pair();
        a.send(vec![1, 2, 3]).unwrap();
        assert_eq!(b.recv().unwrap(), vec![1, 2, 3]);
        b.send(vec![4]).unwrap();
        assert_eq!(a.recv().unwrap(), vec![4]);
        drop(b);
        assert!(matches!(a.recv(), Err(DrmError::Transport(_))));
        assert!(matches!(a.send(vec![5]), Err(DrmError::Transport(_))));
    }

    #[test]
    fn in_proc_client_answers_hello() {
        let mut rng = StdRng::seed_from_u64(0xc1e7);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let service = RiService::new("ri", 384, &mut ca, &mut rng);
        let client = RoapClient::in_proc(&service);
        let hello = client.hello(&DeviceHello::new("dev")).unwrap();
        assert_eq!(hello.ri_id, "ri");
        assert_eq!(service.pending_session_count(), 1);
    }

    #[test]
    fn serve_surfaces_peer_disconnect_as_transport_error() {
        let mut rng = StdRng::seed_from_u64(0x5e4e);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let service = RiService::new("ri", 384, &mut ca, &mut rng);
        let (client_end, server_end) = ChannelTransport::pair();
        let result = std::thread::scope(|scope| {
            let service = &service;
            let server = scope.spawn(move || serve(service, &server_end));
            let client = RoapClient::new(client_end);
            client.hello(&DeviceHello::new("dev")).unwrap();
            drop(client);
            server.join().expect("server thread")
        });
        assert!(
            matches!(result, Err(DrmError::Transport(_))),
            "hang-up must end the loop with a Transport error, got {result:?}"
        );
    }

    #[test]
    fn unexpected_response_pdu_is_malformed() {
        // A transport that always answers with an RiHello frame, whatever
        // the request: typed client methods expecting other PDUs must fail.
        struct Confused;
        impl RoapTransport for Confused {
            fn roundtrip(&self, _frame: &[u8]) -> Result<Vec<u8>, DrmError> {
                Ok(RoapPdu::Status(crate::wire::RoapStatus::Ok).encode())
            }
        }
        let client = RoapClient::new(Confused);
        assert_eq!(
            client.hello(&DeviceHello::new("dev")).unwrap_err(),
            DrmError::Roap(RoapError::Malformed)
        );
        assert_eq!(
            client.leave_domain("dev", &DomainId::new("d")),
            Ok(()),
            "leave accepts the ack status"
        );
    }
}
