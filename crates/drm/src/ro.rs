//! Rights Objects: the protected license that carries the content key and
//! the usage rights.
//!
//! A Rights Object couples three things (paper §2.2 and Figure 2):
//!
//! * the usage **rights** (REL permissions and constraints),
//! * the **content encryption key** `K_CEK`, wrapped under the rights
//!   encryption key `K_REK`,
//! * the keys `K_MAC ‖ K_REK` themselves, protected either for a single
//!   device (RSA KEM, `C = C1 ‖ C2`) or for a domain (AES key wrap under the
//!   shared domain key).
//!
//! Integrity and authenticity are provided by an HMAC SHA-1 tag under
//! `K_MAC`; Domain Rights Objects additionally carry a mandatory RSA-PSS
//! signature by the Rights Issuer.

use crate::domain::DomainId;
use crate::rel::Rights;
use oma_crypto::kem::WrappedKeys;
use oma_crypto::pss::PssSignature;
use oma_crypto::sha1::DIGEST_SIZE;
use oma_pki::Timestamp;
use std::fmt;

/// Identifier of a Rights Object.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RightsObjectId(String);

impl RightsObjectId {
    /// Creates an identifier.
    pub fn new(id: &str) -> Self {
        RightsObjectId(id.to_string())
    }

    /// The identifier string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for RightsObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for RightsObjectId {
    fn from(s: &str) -> Self {
        RightsObjectId::new(s)
    }
}

/// How `K_MAC ‖ K_REK` is protected inside the Rights Object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyProtection {
    /// Device Rights Object: the RSA KEM ciphertext `C = C1 ‖ C2` addressed
    /// to one DRM Agent's public key.
    Device(WrappedKeys),
    /// Domain Rights Object: `K_MAC ‖ K_REK` wrapped under the shared domain
    /// key with AES key wrap.
    Domain {
        /// The domain the Rights Object targets.
        domain_id: DomainId,
        /// Domain-key generation the wrap was made with.
        generation: u32,
        /// `AES-WRAP(K_D, K_MAC ‖ K_REK)` — 40 bytes.
        wrapped: Vec<u8>,
    },
}

impl KeyProtection {
    /// Whether this is a Domain Rights Object.
    pub fn is_domain(&self) -> bool {
        matches!(self, KeyProtection::Domain { .. })
    }

    /// Size in bytes of the key-protection material carried in the RO.
    pub fn encoded_len(&self) -> usize {
        match self {
            KeyProtection::Device(wrapped) => wrapped.len(),
            KeyProtection::Domain {
                wrapped, domain_id, ..
            } => wrapped.len() + domain_id.as_str().len() + 4,
        }
    }
}

/// The MAC-protected body of a Rights Object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RightsObjectPayload {
    /// Identifier of this Rights Object.
    pub id: RightsObjectId,
    /// Identifier of the issuing Rights Issuer.
    pub rights_issuer: String,
    /// The content this license unlocks (`cid:` URI).
    pub content_id: String,
    /// Granted permissions and constraints.
    pub rights: Rights,
    /// SHA-1 hash of the DCF, binding license to content.
    pub dcf_hash: [u8; DIGEST_SIZE],
    /// `AES-WRAP(K_REK, K_CEK)` — 24 bytes.
    pub encrypted_cek: Vec<u8>,
    /// Issue time.
    pub issued_at: Timestamp,
}

impl RightsObjectPayload {
    /// Canonical byte encoding: the exact bytes covered by the HMAC and (for
    /// Domain Rights Objects) by the Rights Issuer signature.
    ///
    /// The encoding mirrors the XML Rights Object of the standard closely
    /// enough to give realistic message sizes (roughly 300–600 bytes plus
    /// rights), which is what the HMAC cost in the model depends on.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(512);
        out.extend_from_slice(b"<ro:payload version=\"2.0\">");
        push_element(&mut out, "id", self.id.as_str().as_bytes());
        push_element(&mut out, "riID", self.rights_issuer.as_bytes());
        push_element(&mut out, "contentID", self.content_id.as_bytes());
        push_element(&mut out, "rights", &self.rights.to_bytes());
        push_element(&mut out, "dcfHash", &self.dcf_hash);
        push_element(&mut out, "encryptedCEK", &self.encrypted_cek);
        push_element(&mut out, "issued", &self.issued_at.to_bytes());
        out.extend_from_slice(b"</ro:payload>");
        out
    }
}

fn push_element(out: &mut Vec<u8>, name: &str, value: &[u8]) {
    out.push(b'<');
    out.extend_from_slice(name.as_bytes());
    out.push(b'>');
    out.extend_from_slice(&(value.len() as u32).to_be_bytes());
    out.extend_from_slice(value);
    out.extend_from_slice(b"</");
    out.extend_from_slice(name.as_bytes());
    out.push(b'>');
}

/// A complete protected Rights Object as delivered inside a `ROResponse`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtectedRightsObject {
    /// The MAC-protected body.
    pub payload: RightsObjectPayload,
    /// Protection of `K_MAC ‖ K_REK`.
    pub key_protection: KeyProtection,
    /// `HMAC-SHA1(K_MAC, payload.to_bytes())`.
    pub mac: [u8; DIGEST_SIZE],
    /// RSA-PSS signature by the Rights Issuer over the payload. Mandatory
    /// for Domain Rights Objects, optional for Device Rights Objects.
    pub signature: Option<PssSignature>,
}

impl ProtectedRightsObject {
    /// The Rights Object identifier.
    pub fn id(&self) -> &RightsObjectId {
        &self.payload.id
    }

    /// The content identifier this license covers.
    pub fn content_id(&self) -> &str {
        &self.payload.content_id
    }

    /// Whether this is a Domain Rights Object.
    pub fn is_domain_ro(&self) -> bool {
        self.key_protection.is_domain()
    }

    /// Approximate size in bytes of the Rights Object on the wire
    /// (payload, key material, MAC and signature).
    pub fn encoded_len(&self) -> usize {
        self.payload.to_bytes().len()
            + self.key_protection.encoded_len()
            + self.mac.len()
            + self.signature.as_ref().map_or(0, PssSignature::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::{Constraint, Permission};

    fn payload() -> RightsObjectPayload {
        RightsObjectPayload {
            id: RightsObjectId::new("ro-1"),
            rights_issuer: "ri.example.com".into(),
            content_id: "cid:track-1".into(),
            rights: Rights::new().grant(Permission::Play, Constraint::Count(5)),
            dcf_hash: [9u8; 20],
            encrypted_cek: vec![1u8; 24],
            issued_at: Timestamp::new(77),
        }
    }

    #[test]
    fn id_display() {
        let id = RightsObjectId::from("ro-42");
        assert_eq!(id.as_str(), "ro-42");
        assert_eq!(id.to_string(), "ro-42");
    }

    #[test]
    fn canonical_bytes_are_sensitive_to_every_field() {
        let base = payload().to_bytes();
        let mut p = payload();
        p.content_id = "cid:track-2".into();
        assert_ne!(p.to_bytes(), base);
        let mut p = payload();
        p.dcf_hash = [8u8; 20];
        assert_ne!(p.to_bytes(), base);
        let mut p = payload();
        p.encrypted_cek = vec![2u8; 24];
        assert_ne!(p.to_bytes(), base);
        let mut p = payload();
        p.rights = Rights::new().grant(Permission::Play, Constraint::Count(6));
        assert_ne!(p.to_bytes(), base);
        assert_eq!(payload().to_bytes(), base);
    }

    #[test]
    fn payload_size_is_realistic() {
        // The paper's Java model reports ROAP message sizes in the hundreds
        // of bytes to low kilobytes; the payload encoding should land there.
        let len = payload().to_bytes().len();
        assert!(len > 200 && len < 2048, "payload length {len}");
    }

    #[test]
    fn protected_ro_accessors() {
        let ro = ProtectedRightsObject {
            payload: payload(),
            key_protection: KeyProtection::Device(oma_crypto::kem::WrappedKeys {
                c1: vec![0u8; 128],
                c2: vec![0u8; 40],
            }),
            mac: [1u8; 20],
            signature: None,
        };
        assert_eq!(ro.id().as_str(), "ro-1");
        assert_eq!(ro.content_id(), "cid:track-1");
        assert!(!ro.is_domain_ro());
        assert!(ro.encoded_len() > 128 + 40 + 20);
    }

    #[test]
    fn domain_protection_reports_domain() {
        let kp = KeyProtection::Domain {
            domain_id: DomainId::new("family"),
            generation: 0,
            wrapped: vec![0u8; 40],
        };
        assert!(kp.is_domain());
        assert!(kp.encoded_len() >= 40 + 6);
        assert!(!KeyProtection::Device(oma_crypto::kem::WrappedKeys {
            c1: vec![],
            c2: vec![]
        })
        .is_domain());
    }
}
