//! A sharded, lock-per-shard concurrent map.
//!
//! The server-side [`RiService`](crate::service::RiService) keeps all of its
//! mutable state — pending ROAP sessions, registered devices, the content
//! catalogue, domains and Rights-Object-id sequences — in these maps. The
//! design mirrors the sharded atomic trace counters inside
//! [`oma_crypto::CryptoEngine`]: state is split across a fixed number of
//! shards so that concurrent requests touching *different* keys contend on
//! different locks, while requests for the *same* key serialise on one
//! shard's `RwLock`. Reads (certificate lookups, catalogue queries) take the
//! shard read lock and clone the entry out, so no lock is held across any
//! cryptographic work.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::RwLock;

/// Number of shards. A power of two keeps the modulo cheap; 16 shards are
/// plenty for the handful of worker threads a license server realistically
/// runs per core while keeping the memory footprint trivial.
pub const SHARD_COUNT: usize = 16;

/// A concurrent hash map split across [`SHARD_COUNT`] independently locked
/// shards.
///
/// # Example
///
/// ```
/// use oma_drm::shard::ShardedMap;
///
/// let map: ShardedMap<String, u64> = ShardedMap::new();
/// map.insert("dev-1".to_string(), 7);
/// assert_eq!(map.get_cloned(&"dev-1".to_string()), Some(7));
/// assert_eq!(map.len(), 1);
/// ```
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    hasher: RandomState,
}

impl<K: Hash + Eq, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        ShardedMap {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let index = self.hasher.hash_one(key) as usize % SHARD_COUNT;
        &self.shards[index]
    }

    /// Inserts `value` under `key`, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard(&key)
            .write()
            .expect("shard lock")
            .insert(key, value)
    }

    /// Removes the entry for `key`, returning it if present.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard(key).write().expect("shard lock").remove(key)
    }

    /// Removes the entry for `key` only when `pred` holds for its current
    /// value. Check and removal run under one shard write lock, so a
    /// concurrent writer cannot slip a fresh value in between.
    pub fn remove_if(&self, key: &K, pred: impl FnOnce(&V) -> bool) -> Option<V> {
        let shard = self.shard(key);
        let mut guard = shard.write().expect("shard lock");
        if guard.get(key).is_some_and(pred) {
            guard.remove(key)
        } else {
            None
        }
    }

    /// Whether an entry for `key` exists.
    pub fn contains(&self, key: &K) -> bool {
        self.shard(key)
            .read()
            .expect("shard lock")
            .contains_key(key)
    }

    /// Total number of entries across all shards.
    ///
    /// The count is a sum of per-shard snapshots, not a single atomic
    /// snapshot; it is exact whenever the map is quiescent.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock").len())
            .sum()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `f` on a shared reference to the entry for `key` (or `None`)
    /// while holding the shard read lock.
    pub fn with<R>(&self, key: &K, f: impl FnOnce(Option<&V>) -> R) -> R {
        f(self.shard(key).read().expect("shard lock").get(key))
    }

    /// Runs `f` on a mutable reference to the entry for `key` (or `None`)
    /// while holding the shard write lock. This is the atomic
    /// read-modify-write primitive: membership checks and updates inside `f`
    /// cannot interleave with other writers of the same key.
    pub fn update<R>(&self, key: &K, f: impl FnOnce(Option<&mut V>) -> R) -> R {
        f(self.shard(key).write().expect("shard lock").get_mut(key))
    }

    /// Runs `f` on every entry, shard by shard. Each shard's read lock is
    /// held only while its own entries are visited. Iteration order is
    /// unspecified; callers needing a canonical order sort afterwards.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in &self.shards {
            for (k, v) in shard.read().expect("shard lock").iter() {
                f(k, v);
            }
        }
    }

    /// Runs `f` on the entry for `key`, inserting `default()` first when the
    /// key is absent. The whole operation holds the shard write lock, so two
    /// concurrent callers for one key serialise.
    pub fn update_or_insert_with<R>(
        &self,
        key: K,
        default: impl FnOnce() -> V,
        f: impl FnOnce(&mut V) -> R,
    ) -> R {
        let shard = self.shard(&key);
        let mut guard = shard.write().expect("shard lock");
        f(guard.entry(key).or_insert_with(default))
    }
}

impl<K: Hash + Eq + Clone, V> ShardedMap<K, V> {
    /// Removes every entry for which `keep` returns `false`, returning the
    /// removed pairs. Each shard is filtered under its own write lock, so
    /// the check-and-remove cannot interleave with other writers of the
    /// same keys.
    pub fn retain(&self, mut keep: impl FnMut(&K, &V) -> bool) -> Vec<(K, V)> {
        let mut removed = Vec::new();
        for shard in &self.shards {
            let mut guard = shard.write().expect("shard lock");
            let dead: Vec<K> = guard
                .iter()
                .filter(|(k, v)| !keep(k, v))
                .map(|(k, _)| k.clone())
                .collect();
            for key in dead {
                if let Some(value) = guard.remove(&key) {
                    removed.push((key, value));
                }
            }
        }
        removed
    }
}

impl<K: Hash + Eq, V: Clone> ShardedMap<K, V> {
    /// Clones the value stored under `key` out of its shard.
    pub fn get_cloned(&self, key: &K) -> Option<V> {
        self.shard(key)
            .read()
            .expect("shard lock")
            .get(key)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn insert_get_remove_roundtrip() {
        let map: ShardedMap<u64, String> = ShardedMap::new();
        assert!(map.is_empty());
        assert!(map.insert(1, "a".into()).is_none());
        assert_eq!(map.insert(1, "b".into()), Some("a".into()));
        assert!(map.contains(&1));
        assert_eq!(map.get_cloned(&1), Some("b".into()));
        assert_eq!(map.remove(&1), Some("b".into()));
        assert!(map.remove(&1).is_none());
        assert!(!map.contains(&1));
    }

    #[test]
    fn len_spans_shards() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        for i in 0..100 {
            map.insert(i, i);
        }
        assert_eq!(map.len(), 100);
        assert!(!map.is_empty());
    }

    #[test]
    fn update_is_a_read_modify_write() {
        let map: ShardedMap<&'static str, u32> = ShardedMap::new();
        map.insert("k", 5);
        let seen = map.update(&"k", |v| {
            let v = v.expect("present");
            *v += 1;
            *v
        });
        assert_eq!(seen, 6);
        assert_eq!(map.get_cloned(&"k"), Some(6));
        assert!(map.update(&"missing", |v| v.is_none()));
    }

    #[test]
    fn remove_if_checks_under_the_lock() {
        let map: ShardedMap<u8, u32> = ShardedMap::new();
        map.insert(1, 10);
        assert_eq!(map.remove_if(&1, |v| *v == 99), None);
        assert!(map.contains(&1));
        assert_eq!(map.remove_if(&1, |v| *v == 10), Some(10));
        assert!(!map.contains(&1));
        assert_eq!(map.remove_if(&2, |_| true), None);
    }

    #[test]
    fn update_or_insert_with_defaults_once() {
        let map: ShardedMap<u8, u64> = ShardedMap::new();
        for _ in 0..3 {
            map.update_or_insert_with(9, || 0, |v| *v += 1);
        }
        assert_eq!(map.get_cloned(&9), Some(3));
    }

    #[test]
    fn retain_returns_the_removed_pairs() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        for i in 0..20 {
            map.insert(i, i * 10);
        }
        let mut removed = map.retain(|k, _| k % 2 == 0);
        removed.sort_unstable();
        assert_eq!(removed.len(), 10);
        assert!(removed.iter().all(|(k, v)| k % 2 == 1 && *v == k * 10));
        assert_eq!(map.len(), 10);
        assert!(map.contains(&2));
        assert!(!map.contains(&3));
    }

    #[test]
    fn for_each_visits_every_entry() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        for i in 0..50 {
            map.insert(i, 1);
        }
        let mut count = 0u64;
        map.for_each(|_, v| count += v);
        assert_eq!(count, 50);
    }

    #[test]
    fn concurrent_counters_lose_no_updates() {
        let map: ShardedMap<usize, u64> = ShardedMap::new();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= 1_000 {
                        break;
                    }
                    map.update_or_insert_with(i % 32, || 0, |v| *v += 1);
                });
            }
        });
        let total: u64 = (0..32).map(|k| map.get_cloned(&k).unwrap_or(0)).sum();
        assert_eq!(total, 1_000);
    }
}
