//! The DRM Agent's protected storage.
//!
//! The standard leaves storage details to the Certification Authority's
//! robustness rules; the paper (§2.4.3) describes the scheme modelled here:
//! content stays encrypted (the DCF is never stored in clear), Rights
//! Objects keep their MAC for integrity, and `K_MAC ‖ K_REK` — originally
//! protected by the expensive PKI wrap — is re-wrapped under a
//! device-generated symmetric key `K_DEV` at installation time (`C2dev`),
//! so that every later access only needs symmetric cryptography.

use crate::domain::DomainId;
use crate::rel::{Permission, UsageState};
use crate::ro::{RightsObjectId, RightsObjectPayload};
use oma_crypto::sha1::DIGEST_SIZE;
use std::collections::HashMap;

/// A Rights Object as it rests on the device after installation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstalledRightsObject {
    /// The MAC-protected payload (kept verbatim so the MAC can be re-checked
    /// on every consumption).
    pub payload: RightsObjectPayload,
    /// The original MAC from the Rights Issuer.
    pub mac: [u8; DIGEST_SIZE],
    /// `AES-WRAP(K_DEV, K_MAC ‖ K_REK)` — the re-wrapped key material.
    pub c2dev: Vec<u8>,
    /// Whether the Rights Object arrived as a Domain Rights Object.
    pub domain_id: Option<DomainId>,
    /// Per-permission usage state (remaining counts, interval anchors).
    pub usage: HashMap<Permission, UsageState>,
}

impl InstalledRightsObject {
    /// Mutable usage state for `permission`, created on first use.
    pub fn usage_mut(&mut self, permission: Permission) -> &mut UsageState {
        let rights = &self.payload.rights;
        self.usage
            .entry(permission)
            .or_insert_with(|| UsageState::for_rights(rights, permission))
    }
}

/// The device's secure storage: the device key, installed Rights Objects and
/// domain keys.
#[derive(Debug, Default)]
pub struct DeviceStorage {
    kdev: [u8; 16],
    installed: HashMap<RightsObjectId, InstalledRightsObject>,
    domain_keys: HashMap<DomainId, (u32, [u8; 16])>,
}

impl DeviceStorage {
    /// Creates storage protected by the device key `kdev`.
    pub fn new(kdev: [u8; 16]) -> Self {
        DeviceStorage {
            kdev,
            installed: HashMap::new(),
            domain_keys: HashMap::new(),
        }
    }

    /// The device-generated storage protection key `K_DEV`.
    pub fn kdev(&self) -> &[u8; 16] {
        &self.kdev
    }

    /// Stores an installed Rights Object, replacing any previous one with the
    /// same identifier. Returns the previous entry if present.
    pub fn install(&mut self, ro: InstalledRightsObject) -> Option<InstalledRightsObject> {
        self.installed.insert(ro.payload.id.clone(), ro)
    }

    /// Looks up an installed Rights Object.
    pub fn get(&self, id: &RightsObjectId) -> Option<&InstalledRightsObject> {
        self.installed.get(id)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: &RightsObjectId) -> Option<&mut InstalledRightsObject> {
        self.installed.get_mut(id)
    }

    /// Removes an installed Rights Object.
    pub fn remove(&mut self, id: &RightsObjectId) -> Option<InstalledRightsObject> {
        self.installed.remove(id)
    }

    /// Identifiers of all installed Rights Objects.
    pub fn installed_ids(&self) -> impl Iterator<Item = &RightsObjectId> {
        self.installed.keys()
    }

    /// Number of installed Rights Objects.
    pub fn installed_count(&self) -> usize {
        self.installed.len()
    }

    /// Finds installed Rights Objects covering `content_id`.
    pub fn find_for_content<'a>(
        &'a self,
        content_id: &'a str,
    ) -> impl Iterator<Item = &'a InstalledRightsObject> {
        self.installed
            .values()
            .filter(move |ro| ro.payload.content_id == content_id)
    }

    /// Stores a domain key (replacing an older generation).
    pub fn store_domain_key(&mut self, domain_id: DomainId, generation: u32, key: [u8; 16]) {
        self.domain_keys.insert(domain_id, (generation, key));
    }

    /// Looks up a domain key and its generation.
    pub fn domain_key(&self, domain_id: &DomainId) -> Option<(u32, &[u8; 16])> {
        self.domain_keys.get(domain_id).map(|(g, k)| (*g, k))
    }

    /// Removes a domain key (leave-domain).
    pub fn remove_domain_key(&mut self, domain_id: &DomainId) -> bool {
        self.domain_keys.remove(domain_id).is_some()
    }

    /// Domains this device currently belongs to.
    pub fn domains(&self) -> impl Iterator<Item = &DomainId> {
        self.domain_keys.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::{Constraint, Rights};
    use oma_pki::Timestamp;

    fn installed(id: &str, content: &str) -> InstalledRightsObject {
        InstalledRightsObject {
            payload: RightsObjectPayload {
                id: RightsObjectId::new(id),
                rights_issuer: "ri".into(),
                content_id: content.into(),
                rights: Rights::new().grant(Permission::Play, Constraint::Count(2)),
                dcf_hash: [0u8; 20],
                encrypted_cek: vec![0u8; 24],
                issued_at: Timestamp::new(0),
            },
            mac: [0u8; 20],
            c2dev: vec![0u8; 40],
            domain_id: None,
            usage: HashMap::new(),
        }
    }

    #[test]
    fn install_lookup_remove() {
        let mut storage = DeviceStorage::new([9u8; 16]);
        assert_eq!(storage.kdev(), &[9u8; 16]);
        assert!(storage.install(installed("ro-1", "cid:a")).is_none());
        assert!(storage.install(installed("ro-2", "cid:b")).is_none());
        assert_eq!(storage.installed_count(), 2);
        assert!(storage.get(&RightsObjectId::new("ro-1")).is_some());
        assert!(storage.get(&RightsObjectId::new("ro-3")).is_none());
        assert_eq!(storage.find_for_content("cid:a").count(), 1);
        assert_eq!(storage.installed_ids().count(), 2);
        assert!(storage.remove(&RightsObjectId::new("ro-1")).is_some());
        assert_eq!(storage.installed_count(), 1);
    }

    #[test]
    fn reinstall_replaces() {
        let mut storage = DeviceStorage::new([0u8; 16]);
        storage.install(installed("ro-1", "cid:a"));
        let replaced = storage.install(installed("ro-1", "cid:b"));
        assert!(replaced.is_some());
        assert_eq!(storage.installed_count(), 1);
        assert_eq!(
            storage
                .get(&RightsObjectId::new("ro-1"))
                .unwrap()
                .payload
                .content_id,
            "cid:b"
        );
    }

    #[test]
    fn usage_state_initialised_from_rights() {
        let mut storage = DeviceStorage::new([0u8; 16]);
        storage.install(installed("ro-1", "cid:a"));
        let ro = storage.get_mut(&RightsObjectId::new("ro-1")).unwrap();
        let state = ro.usage_mut(Permission::Play);
        assert_eq!(state.remaining_count(), Some(2));
        // A verb the RO does not constrain starts unconstrained.
        let ro = storage.get_mut(&RightsObjectId::new("ro-1")).unwrap();
        assert_eq!(ro.usage_mut(Permission::Display).remaining_count(), None);
    }

    #[test]
    fn domain_key_lifecycle() {
        let mut storage = DeviceStorage::new([0u8; 16]);
        let id = DomainId::new("family");
        assert!(storage.domain_key(&id).is_none());
        storage.store_domain_key(id.clone(), 0, [1u8; 16]);
        assert_eq!(storage.domain_key(&id), Some((0, &[1u8; 16])));
        storage.store_domain_key(id.clone(), 1, [2u8; 16]);
        assert_eq!(storage.domain_key(&id), Some((1, &[2u8; 16])));
        assert_eq!(storage.domains().count(), 1);
        assert!(storage.remove_domain_key(&id));
        assert!(!storage.remove_domain_key(&id));
    }
}
