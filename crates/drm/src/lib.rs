//! A functional model of OMA DRM 2 (Open Mobile Alliance Digital Rights
//! Management, version 2), the system analysed by Thull & Sannino,
//! *"Performance Considerations for an Embedded Implementation of OMA DRM 2"*
//! (DATE 2005).
//!
//! The crate models the four actors of the standard and the four phases of
//! the content-consumption life-cycle:
//!
//! | Actor | Type | Phases it participates in |
//! |---|---|---|
//! | Content Issuer | [`ContentIssuer`] | packages DCFs |
//! | Rights Issuer | [`RightsIssuer`] | Registration, Acquisition, domain management |
//! | DRM Agent | [`DrmAgent`] | Registration, Acquisition, Installation, Consumption |
//! | Certification Authority | [`oma_pki::CertificationAuthority`] | issues certificates, answers OCSP |
//!
//! Every cryptographic operation a [`DrmAgent`] performs goes through an
//! instrumented [`oma_crypto::CryptoEngine`], so a protocol run doubles as a
//! measurement: the per-phase operation traces drive the performance model in
//! `oma-perf` exactly the way the authors' Java model drove their spreadsheet
//! analysis.
//!
//! # Quickstart
//!
//! ```
//! use oma_drm::{ContentIssuer, DrmAgent, Permission, RightsIssuer, RightsTemplate};
//! use oma_pki::{CertificationAuthority, Timestamp};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), oma_drm::DrmError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! // Small RSA keys keep the example fast; the real system uses 1024 bits.
//! let mut ca = CertificationAuthority::new("cmla", 512, &mut rng);
//! let mut ri = RightsIssuer::new("ri.example.com", 512, &mut ca, &mut rng);
//! let ci = ContentIssuer::new("ci.example.com");
//! let mut agent = DrmAgent::new("phone-001", 512, &mut ca, &mut rng);
//!
//! // Content Issuer packages a track and hands the CEK to the Rights Issuer.
//! let now = Timestamp::new(1_000);
//! let (dcf, cek) = ci.package(b"music bytes", "cid:track-1", &mut rng);
//! ri.add_content("cid:track-1", cek, &dcf, RightsTemplate::unlimited(Permission::Play));
//!
//! // Registration -> Acquisition -> Installation -> Consumption. Every
//! // ROAP message travels as an encoded PDU frame through a `RoapClient`
//! // (here over the in-process transport; see the `wire` module for the
//! // frame format and `ChannelTransport` for a serialized byte channel).
//! agent.register_with(ri.service(), now)?;
//! let response = agent.acquire_rights_with(ri.service(), "cid:track-1", now)?;
//! let ro_id = agent.install_rights(&response, now)?;
//! let plaintext = agent.consume(&ro_id, &dcf, Permission::Play, now)?;
//! assert_eq!(plaintext, b"music bytes");
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod ci;
pub mod client;
pub mod dcf;
pub mod domain;
mod error;
pub mod journal;
pub mod rel;
pub mod ri;
pub mod ro;
pub mod roap;
pub mod service;
pub mod session;
pub mod shard;
pub mod storage;
pub mod wire;

/// Validity requested for certificates issued to DRM actors (10 years) —
/// one policy constant shared by the DRM Agent, the Rights Issuer service
/// and external provisioning code such as the `oma-load` fleet harness.
pub const CERT_VALIDITY_SECONDS: u64 = 10 * 365 * 24 * 3600;

pub use agent::{DrmAgent, RiContext};
pub use ci::ContentIssuer;
pub use client::{ChannelTransport, InProcTransport, RoapClient, RoapTransport};
pub use dcf::Dcf;
pub use domain::{Domain, DomainId};
pub use error::DrmError;
pub use journal::{RiEvent, RiJournal, RiStateImage, StateSource};
pub use rel::{Constraint, Permission, Rights, RightsTemplate};
pub use ri::RightsIssuer;
pub use ro::{ProtectedRightsObject, RightsObjectId};
pub use roap::RoapError;
pub use service::RiService;
pub use session::{AgentEvent, AgentSessionState, PduKind, RiSessionState};
pub use shard::ShardedMap;
pub use wire::{RoapPdu, RoapStatus};
