//! Domains: groups of devices that share licenses.
//!
//! A user may register several devices (including "unconnected devices" like
//! portable music players) into a domain. The Rights Issuer hands every
//! member a shared symmetric domain key using a PKI exchange; Domain Rights
//! Objects protect `K_MAC ‖ K_REK` under that domain key instead of a single
//! device's public key, so any member can install and consume them.

use std::collections::HashSet;
use std::fmt;

/// Identifier of a domain, unique per Rights Issuer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(String);

impl DomainId {
    /// Creates a domain identifier.
    pub fn new(id: &str) -> Self {
        DomainId(id.to_string())
    }

    /// The identifier string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for DomainId {
    fn from(s: &str) -> Self {
        DomainId::new(s)
    }
}

/// Rights Issuer side state of a domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    id: DomainId,
    key: [u8; 16],
    generation: u32,
    members: HashSet<String>,
    max_members: usize,
}

impl Domain {
    /// Creates a new domain with the given shared key.
    pub fn new(id: DomainId, key: [u8; 16], max_members: usize) -> Self {
        Domain {
            id,
            key,
            generation: 0,
            members: HashSet::new(),
            max_members,
        }
    }

    /// The domain identifier.
    pub fn id(&self) -> &DomainId {
        &self.id
    }

    /// The current domain key.
    pub fn key(&self) -> &[u8; 16] {
        &self.key
    }

    /// Domain-key generation, bumped on every upgrade (member eviction).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Registered member device identifiers.
    pub fn members(&self) -> impl Iterator<Item = &str> {
        self.members.iter().map(String::as_str)
    }

    /// Number of registered members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Member capacity.
    pub fn max_members(&self) -> usize {
        self.max_members
    }

    /// Whether `device_id` is a member.
    pub fn is_member(&self, device_id: &str) -> bool {
        self.members.contains(device_id)
    }

    /// Adds a member if the domain still has capacity.
    ///
    /// Returns `false` (and leaves the domain unchanged) when the domain is
    /// full or the device is already a member.
    pub fn add_member(&mut self, device_id: &str) -> bool {
        if self.members.len() >= self.max_members || self.members.contains(device_id) {
            return false;
        }
        self.members.insert(device_id.to_string());
        true
    }

    /// Removes a member. Returns whether it was present.
    pub fn remove_member(&mut self, device_id: &str) -> bool {
        self.members.remove(device_id)
    }

    /// Rebuilds a domain from persisted state — key, generation and member
    /// set exactly as a snapshot recorded them. This is the recovery path;
    /// use [`Domain::new`] for fresh domains.
    pub fn restore(
        id: DomainId,
        key: [u8; 16],
        generation: u32,
        members: impl IntoIterator<Item = String>,
        max_members: usize,
    ) -> Self {
        Domain {
            id,
            key,
            generation,
            members: members.into_iter().collect(),
            max_members,
        }
    }

    /// Rotates the domain key (a "domain upgrade"): installs `new_key` and
    /// bumps the generation. Existing members must re-join to learn the new
    /// key.
    pub fn upgrade(&mut self, new_key: [u8; 16]) {
        self.key = new_key;
        self.generation += 1;
        self.members.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_id_display_and_from() {
        let id = DomainId::from("family");
        assert_eq!(id.as_str(), "family");
        assert_eq!(id.to_string(), "family");
        assert_eq!(id, DomainId::new("family"));
    }

    #[test]
    fn membership_lifecycle() {
        let mut d = Domain::new(DomainId::new("d1"), [1u8; 16], 2);
        assert_eq!(d.member_count(), 0);
        assert!(d.add_member("phone"));
        assert!(!d.add_member("phone"), "duplicate join refused");
        assert!(d.add_member("player"));
        assert!(!d.add_member("tablet"), "domain full");
        assert!(d.is_member("phone"));
        assert_eq!(d.member_count(), 2);
        assert!(d.remove_member("phone"));
        assert!(!d.remove_member("phone"));
        assert_eq!(d.members().count(), 1);
    }

    #[test]
    fn upgrade_rotates_key_and_clears_members() {
        let mut d = Domain::new(DomainId::new("d1"), [1u8; 16], 4);
        d.add_member("phone");
        let old_generation = d.generation();
        d.upgrade([2u8; 16]);
        assert_eq!(d.key(), &[2u8; 16]);
        assert_eq!(d.generation(), old_generation + 1);
        assert_eq!(d.member_count(), 0);
        assert_eq!(d.id().as_str(), "d1");
    }
}
