//! The concurrent Rights Issuer service.
//!
//! [`RiService`] is the server-side heart of the license service: the same
//! ROAP state machine as the single-terminal [`RightsIssuer`](crate::ri::RightsIssuer)
//! wrapper, but with every handler taking `&self` so one service instance can
//! serve many devices from many threads at once. The paper prices OMA DRM 2
//! from the terminal's point of view; serving *millions* of terminals needs a
//! Rights Issuer that scales, and this module makes that side executable.
//!
//! Concurrency design:
//!
//! * pending ROAP sessions, registered devices, the content catalogue,
//!   domains and RO-id sequences live in [`ShardedMap`]s — one `RwLock` per
//!   shard, so requests for different keys do not contend (the same
//!   sharded-state pattern as the lock-free trace counters in
//!   [`oma_crypto::CryptoEngine`]),
//! * session ids come from an atomic counter,
//! * handlers clone entries out of their shard before doing any
//!   cryptography, so no lock is ever held across an RSA operation,
//! * registration *claims* its session atomically (`remove`), which doubles
//!   as replay protection: a replayed `RegistrationRequest` finds its
//!   session gone and is rejected with [`RoapError::UnknownSession`].
//!
//! Rights-Object ids are allocated per scope (per registered device, or per
//! domain for out-of-band issuing) from a sharded sequence map. Ids are
//! therefore *deterministic per device* regardless of how requests from
//! different devices interleave — the property the `oma-load` fleet harness
//! asserts when it compares a multi-threaded run against a sequential
//! reference run.

use crate::dcf::Dcf;
use crate::domain::{Domain, DomainId};
use crate::error::DrmError;
use crate::journal::{
    session_expired, ContentImage, DomainImage, RegisteredImage, RiEvent, RiJournal, RiStateImage,
    SessionImage, StateSource,
};
use crate::rel::RightsTemplate;
use crate::ro::{KeyProtection, ProtectedRightsObject, RightsObjectId, RightsObjectPayload};
use crate::roap::{
    DeviceHello, JoinDomainRequest, JoinDomainResponse, RegistrationRequest, RegistrationResponse,
    RiHello, RoRequest, RoResponse, RoapError, NONCE_LEN,
};
use crate::session::{PduKind, RiSessionState};
use crate::shard::ShardedMap;
use crate::wire::{RoapPdu, RoapStatus};
use oma_crypto::backend::{CryptoBackend, SoftwareBackend};
use oma_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use oma_crypto::sha1::{Sha1, DIGEST_SIZE};
use oma_crypto::CryptoEngine;
use oma_pki::ocsp::{OcspRequest, OcspResponse};
use oma_pki::{
    verify::{check_anchor_and_issuer, check_validity},
    Certificate, CertificationAuthority, EntityRole, Timestamp, ValidityPeriod,
};
use rand::RngCore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::CERT_VALIDITY_SECONDS;

/// A device the Rights Issuer has established a trusted relationship with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RegisteredDevice {
    pub(crate) device_id: String,
    pub(crate) certificate: Certificate,
}

/// A license the Rights Issuer can sell for one piece of content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ContentEntry {
    pub(crate) cek: [u8; 16],
    pub(crate) dcf_hash: [u8; DIGEST_SIZE],
    pub(crate) template: RightsTemplate,
}

/// A pending ROAP registration session created by a `DeviceHello`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PendingSession {
    pub(crate) device_id: String,
    pub(crate) ri_nonce: Vec<u8>,
    /// Server clock when the hello arrived ([`Timestamp::new(0)`] when the
    /// entry point had no clock); drives the TTL sweep.
    pub(crate) opened_at: Timestamp,
}

/// How many dispatches with a server-pinned clock pass between two TTL
/// sweeps of the pending-session table. Sweeping is O(sessions), so it is
/// amortised instead of running per request; the interval only bounds how
/// promptly expired sessions are reclaimed, never correctness.
const SESSION_SWEEP_INTERVAL: u64 = 256;

/// The thread-safe Rights Issuer service: every ROAP handler takes `&self`,
/// so one instance (typically behind an [`Arc`]) serves any number of
/// concurrent device connections.
///
/// # Example
///
/// ```
/// use oma_drm::service::RiService;
/// use oma_drm::roap::DeviceHello;
/// use oma_pki::CertificationAuthority;
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
/// let service = Arc::new(RiService::new("ri.example.com", 384, &mut ca, &mut rng));
///
/// // `hello` needs only `&self`: many threads can open sessions at once.
/// let handles: Vec<_> = (0..4)
///     .map(|i| {
///         let service = Arc::clone(&service);
///         std::thread::spawn(move || service.hello(&DeviceHello::new(&format!("dev-{i}"))))
///     })
///     .collect();
/// let mut sessions: Vec<u64> = handles
///     .into_iter()
///     .map(|h| h.join().unwrap().session_id)
///     .collect();
/// sessions.sort_unstable();
/// sessions.dedup();
/// assert_eq!(sessions.len(), 4, "session ids are never reused");
/// ```
pub struct RiService {
    id: String,
    keys: RsaKeyPair,
    certificate: Certificate,
    ca_root: Certificate,
    ocsp: RwLock<OcspResponse>,
    engine: CryptoEngine,
    next_session: AtomicU64,
    issued_ros: AtomicU64,
    sessions: ShardedMap<u64, PendingSession>,
    pending_by_device: ShardedMap<String, u64>,
    registered: ShardedMap<String, RegisteredDevice>,
    content: ShardedMap<String, ContentEntry>,
    domains: ShardedMap<DomainId, Domain>,
    ro_sequences: ShardedMap<String, u64>,
    /// Attached write-ahead journal; `None` runs the service in-memory only.
    journal: RwLock<Option<Arc<dyn RiJournal>>>,
    /// Pending-session TTL in seconds; 0 disables the sweep.
    session_ttl: AtomicU64,
    /// Clocked dispatches since start, for amortising the TTL sweep.
    dispatch_count: AtomicU64,
    /// Fingerprints (SHA-1 of TBS bytes ‖ signature bytes) of device
    /// certificates whose issuer signature has already verified. Only the
    /// time-independent signature check is memoized; issuer, role and
    /// validity-window checks still run on every request. Purely a cache —
    /// deliberately absent from [`RiStateImage`], a recovered service
    /// re-verifies on first sight.
    verified_certs: ShardedMap<[u8; DIGEST_SIZE], ()>,
}

impl std::fmt::Debug for RiService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RiService")
            .field("id", &self.id)
            .field("registered", &self.registered.len())
            .field("pending_sessions", &self.sessions.len())
            .field("issued_ros", &self.issued_ro_count())
            .field("journaled", &self.journal().is_some())
            .finish_non_exhaustive()
    }
}

impl RiService {
    /// Creates a service, obtaining its certificate and an initial OCSP
    /// response from `ca`. Server-side cryptography runs on the software
    /// backend; use [`RiService::with_backend`] for an accelerated server.
    pub fn new<R: RngCore + ?Sized>(
        id: &str,
        modulus_bits: usize,
        ca: &mut CertificationAuthority,
        rng: &mut R,
    ) -> Self {
        Self::with_backend(id, modulus_bits, ca, Arc::new(SoftwareBackend::new()), rng)
    }

    /// Creates a service whose cryptography executes on `backend`. The
    /// service trace stays outside the terminal cost model, but a backend can
    /// be supplied so server-side capacity studies use the same pluggable
    /// layer as the DRM Agent.
    pub fn with_backend<R: RngCore + ?Sized>(
        id: &str,
        modulus_bits: usize,
        ca: &mut CertificationAuthority,
        backend: Arc<dyn CryptoBackend>,
        rng: &mut R,
    ) -> Self {
        let keys = RsaKeyPair::generate(modulus_bits, rng);
        let certificate = ca.issue(
            id,
            EntityRole::RightsIssuer,
            keys.public().clone(),
            ValidityPeriod::starting_at(Timestamp::new(0), CERT_VALIDITY_SECONDS),
        );
        let ocsp = ca.ocsp_respond(
            &OcspRequest {
                serial: certificate.serial(),
                nonce: Vec::new(),
            },
            Timestamp::new(0),
        );
        let service = RiService {
            id: id.to_string(),
            keys,
            certificate,
            ca_root: ca.root_certificate().clone(),
            ocsp: RwLock::new(ocsp),
            engine: CryptoEngine::with_backend(backend, rng.next_u64()),
            next_session: AtomicU64::new(1),
            issued_ros: AtomicU64::new(0),
            sessions: ShardedMap::new(),
            pending_by_device: ShardedMap::new(),
            registered: ShardedMap::new(),
            content: ShardedMap::new(),
            domains: ShardedMap::new(),
            ro_sequences: ShardedMap::new(),
            journal: RwLock::new(None),
            session_ttl: AtomicU64::new(0),
            dispatch_count: AtomicU64::new(0),
            verified_certs: ShardedMap::new(),
        };
        service.warm_signing_contexts();
        service
    }

    /// Precomputes the Montgomery contexts for the service's long-lived
    /// signing identity: its own RSA key pair (CRT legs + public modulus),
    /// its certificate key and the CA root key. Every registration wave then
    /// reuses these warm contexts instead of rebuilding R² per operation.
    fn warm_signing_contexts(&self) {
        self.keys.private().precompute();
        self.keys.public().precompute();
        self.certificate.public_key().precompute();
        self.ca_root.public_key().precompute();
    }

    // ----- durability -----------------------------------------------------------

    /// Attaches a write-ahead journal: from now on every state mutation is
    /// recorded through it *before* the mutating handler returns its
    /// response. Replaces any previously attached journal. The caller is
    /// responsible for persisting a genesis snapshot
    /// ([`RiJournal::snapshot`] of [`RiService::state_image`]) — events
    /// alone cannot rebuild the service identity.
    pub fn set_journal(&self, journal: Arc<dyn RiJournal>) {
        *self.journal.write().expect("journal lock") = Some(journal);
    }

    /// The currently attached journal, if any.
    pub fn journal(&self) -> Option<Arc<dyn RiJournal>> {
        self.journal.read().expect("journal lock").clone()
    }

    /// Records `event` (with the engine's post-event RNG checkpoint) on the
    /// attached journal, if any. The journal lock is released before the
    /// store runs, so slow media never serialises unrelated handlers. The
    /// checkpoint is handed over as a closure so the store can read it
    /// inside its own append ordering — see [`RiJournal::record`].
    fn record(&self, event: RiEvent) {
        if let Some(journal) = self.journal() {
            journal.record(&event, &|| self.engine.rng_state());
        }
    }

    /// Captures a complete, canonical snapshot of the service's mutable
    /// state — identity, tables, counters and the RNG checkpoint. Intended
    /// for quiescent moments (startup genesis, graceful shutdown, explicit
    /// checkpoints); entries mutated concurrently with the capture land in
    /// the image per-shard atomically, like any other reader.
    pub fn state_image(&self) -> RiStateImage {
        let mut sessions = Vec::new();
        self.sessions.for_each(|id, s| {
            sessions.push(SessionImage {
                session_id: *id,
                device_id: s.device_id.clone(),
                ri_nonce: s.ri_nonce.clone(),
                opened_at: s.opened_at,
            });
        });
        sessions.sort_by_key(|s| s.session_id);
        let mut registered = Vec::new();
        self.registered.for_each(|id, d| {
            registered.push(RegisteredImage {
                device_id: id.clone(),
                certificate: d.certificate.clone(),
            });
        });
        registered.sort_by(|a, b| a.device_id.cmp(&b.device_id));
        let mut content = Vec::new();
        self.content.for_each(|id, c| {
            content.push(ContentImage {
                content_id: id.clone(),
                cek: c.cek,
                dcf_hash: c.dcf_hash,
                template: c.template.clone(),
            });
        });
        content.sort_by(|a, b| a.content_id.cmp(&b.content_id));
        let mut domains = Vec::new();
        self.domains.for_each(|id, d| {
            let mut members: Vec<String> = d.members().map(str::to_string).collect();
            members.sort_unstable();
            domains.push(DomainImage {
                domain_id: id.clone(),
                key: *d.key(),
                generation: d.generation(),
                max_members: d.max_members() as u64,
                members,
            });
        });
        domains.sort_by(|a, b| a.domain_id.cmp(&b.domain_id));
        let mut ro_sequences = Vec::new();
        self.ro_sequences
            .for_each(|scope, next| ro_sequences.push((scope.clone(), *next)));
        ro_sequences.sort();
        RiStateImage {
            id: self.id.clone(),
            keys: self.keys.clone(),
            certificate: self.certificate.clone(),
            ca_root: self.ca_root.clone(),
            ocsp: self.ocsp_response(),
            next_session: self.next_session.load(Ordering::SeqCst),
            issued_ros: self.issued_ros.load(Ordering::SeqCst),
            session_ttl: self.session_ttl.load(Ordering::SeqCst),
            sessions,
            registered,
            content,
            domains,
            ro_sequences,
            rng_state: self.engine.rng_state(),
        }
    }

    /// Rebuilds a service from a state image, byte-identically: the tables,
    /// counters, identity *and* the random stream resume exactly where the
    /// image captured them, so the next signature the service produces
    /// matches what the original instance would have produced. The rebuilt
    /// service runs on a fresh software backend and has no journal attached
    /// — call [`RiService::set_journal`] to resume journaling.
    pub fn from_image(image: RiStateImage) -> Self {
        let engine = CryptoEngine::with_backend(Arc::new(SoftwareBackend::new()), 0);
        engine.restore_rng_state(image.rng_state);
        let service = RiService {
            id: image.id,
            keys: image.keys,
            certificate: image.certificate,
            ca_root: image.ca_root,
            ocsp: RwLock::new(image.ocsp),
            engine,
            next_session: AtomicU64::new(image.next_session),
            issued_ros: AtomicU64::new(image.issued_ros),
            sessions: ShardedMap::new(),
            pending_by_device: ShardedMap::new(),
            registered: ShardedMap::new(),
            content: ShardedMap::new(),
            domains: ShardedMap::new(),
            ro_sequences: ShardedMap::new(),
            journal: RwLock::new(None),
            session_ttl: AtomicU64::new(image.session_ttl),
            dispatch_count: AtomicU64::new(0),
            verified_certs: ShardedMap::new(),
        };
        service.warm_signing_contexts();
        for session in image.sessions {
            service.sessions.insert(
                session.session_id,
                PendingSession {
                    device_id: session.device_id.clone(),
                    ri_nonce: session.ri_nonce,
                    opened_at: session.opened_at,
                },
            );
            // Keep the largest pending session per device, mirroring the
            // supersession rule (a canonical image has one per device).
            service.pending_by_device.update_or_insert_with(
                session.device_id,
                || session.session_id,
                |current| *current = (*current).max(session.session_id),
            );
        }
        for device in image.registered {
            service.registered.insert(
                device.device_id.clone(),
                RegisteredDevice {
                    device_id: device.device_id,
                    certificate: device.certificate,
                },
            );
        }
        for content in image.content {
            service.content.insert(
                content.content_id,
                ContentEntry {
                    cek: content.cek,
                    dcf_hash: content.dcf_hash,
                    template: content.template,
                },
            );
        }
        for domain in image.domains {
            service.domains.insert(
                domain.domain_id.clone(),
                Domain::restore(
                    domain.domain_id,
                    domain.key,
                    domain.generation,
                    domain.members,
                    domain.max_members as usize,
                ),
            );
        }
        for (scope, next) in image.ro_sequences {
            service.ro_sequences.insert(scope, next);
        }
        service
    }

    /// Recovers a service from a durable store: the latest snapshot plus
    /// every surviving journal record, rebuilt into a serving instance.
    /// Subsequent responses — signatures, Rights Object ids, session ids —
    /// are byte-identical to what an uninterrupted instance would have
    /// produced after the last surviving record.
    ///
    /// # Errors
    ///
    /// Propagates [`DrmError::Store`] from the source (no genesis snapshot,
    /// unreadable snapshot). A torn or truncated log tail is *not* an
    /// error; recovery stops at the last valid record.
    pub fn recover<S: StateSource + ?Sized>(source: &S) -> Result<Self, DrmError> {
        source.load_state().map(Self::from_image)
    }

    /// The TTL applied to pending registration sessions by the sweep, in
    /// seconds (0 = sweeping disabled).
    pub fn session_ttl(&self) -> u64 {
        self.session_ttl.load(Ordering::Relaxed)
    }

    /// Sets the pending-session TTL. Sessions whose `DeviceHello` arrived
    /// more than `seconds` ago (by the server-pinned clock) are reclaimed
    /// by [`RiService::sweep_sessions`], which [`RiService::dispatch_at`]
    /// runs automatically every `SESSION_SWEEP_INTERVAL` (256) clocked
    /// dispatches. 0 disables sweeping.
    ///
    /// The change is journaled ([`RiEvent::SessionTtlSet`]) so that sweeps
    /// recorded later replay with the TTL that was actually in force.
    pub fn set_session_ttl(&self, seconds: u64) {
        self.session_ttl.store(seconds, Ordering::Relaxed);
        self.record(RiEvent::SessionTtlSet { seconds });
    }

    /// Removes every pending session older than the configured TTL,
    /// returning how many were reclaimed. A no-op when the TTL is 0. The
    /// sweep is journaled as a single [`RiEvent::SessionsSwept`] naming the
    /// swept session ids, so replay removes exactly what the live sweep
    /// removed — no more, no less, regardless of how racing hellos
    /// interleaved with the sweep in the log.
    pub fn sweep_sessions(&self, now: Timestamp) -> usize {
        let ttl = self.session_ttl();
        if ttl == 0 {
            return 0;
        }
        let removed = self
            .sessions
            .retain(|_, session| !session_expired(ttl, session.opened_at, now));
        let mut session_ids = Vec::with_capacity(removed.len());
        for (session_id, session) in &removed {
            self.pending_by_device
                .remove_if(&session.device_id, |pending| pending == session_id);
            session_ids.push(*session_id);
        }
        if !session_ids.is_empty() {
            session_ids.sort_unstable();
            self.record(RiEvent::SessionsSwept { now, session_ids });
        }
        removed.len()
    }

    /// The Rights Issuer identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The Rights Issuer certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.certificate
    }

    /// The Rights Issuer public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        self.keys.public()
    }

    /// The current OCSP response presented during registration.
    pub fn ocsp_response(&self) -> OcspResponse {
        self.ocsp.read().expect("ocsp lock").clone()
    }

    /// Re-fetches the cached OCSP response for this service's certificate (a
    /// fresh response is required for registration to succeed once the cached
    /// one has become stale).
    pub fn refresh_ocsp(&self, ca: &CertificationAuthority, now: Timestamp) {
        let fresh = ca.ocsp_respond(
            &OcspRequest {
                serial: self.certificate.serial(),
                nonce: Vec::new(),
            },
            now,
        );
        *self.ocsp.write().expect("ocsp lock") = fresh.clone();
        self.record(RiEvent::OcspRefreshed { response: fresh });
    }

    /// Registers a piece of content: the content encryption key received
    /// from the Content Issuer, the DCF it encrypts (for the hash binding)
    /// and the license template on sale.
    pub fn add_content(
        &self,
        content_id: &str,
        cek: [u8; 16],
        dcf: &Dcf,
        template: RightsTemplate,
    ) {
        let dcf_hash = dcf.hash();
        self.content.insert(
            content_id.to_string(),
            ContentEntry {
                cek,
                dcf_hash,
                template: template.clone(),
            },
        );
        self.record(RiEvent::ContentAdded {
            content_id: content_id.to_string(),
            cek,
            dcf_hash,
            template,
        });
    }

    /// Whether the service offers rights for `content_id`.
    pub fn has_content(&self, content_id: &str) -> bool {
        self.content.contains(&content_id.to_string())
    }

    /// Whether `device_id` holds a trusted relationship with this service.
    pub fn is_registered(&self, device_id: &str) -> bool {
        self.registered.contains(&device_id.to_string())
    }

    /// The typed session-machine state of `device_id`, derived from the
    /// pending-session and registered-device tables. The sharded maps are
    /// the authoritative (concurrent) representation; this view is what the
    /// handlers step through [`RiSessionState::step`] for state legality,
    /// and what the `oma-explore` model checker compares against its
    /// reference model after every delivery.
    pub fn session_state(&self, device_id: &str) -> RiSessionState {
        let key = device_id.to_string();
        RiSessionState::derive(
            self.registered.contains(&key),
            self.pending_by_device.contains(&key),
        )
    }

    /// Number of registered devices.
    pub fn registered_count(&self) -> usize {
        self.registered.len()
    }

    /// Total number of Rights Objects issued by this service.
    pub fn issued_ro_count(&self) -> u64 {
        self.issued_ros.load(Ordering::Relaxed)
    }

    /// Number of ROAP registration sessions currently pending (opened by a
    /// `DeviceHello`, not yet consumed by a successful registration).
    pub fn pending_session_count(&self) -> usize {
        self.sessions.len()
    }

    // ----- ROAP: registration -------------------------------------------------

    /// Pass 1 → 2 of registration: answers a `DeviceHello` with an `RiHello`.
    ///
    /// At most one pending session exists per device id: a new hello
    /// supersedes (and frees) any earlier incomplete attempt, so
    /// unauthenticated hello traffic cannot grow the session table beyond
    /// the number of distinct device ids seen. (Even that bound still grows
    /// with hostile hello-only traffic — the TTL sweep, see
    /// [`RiService::set_session_ttl`], reclaims sessions that never
    /// complete.)
    ///
    /// Sessions opened through this clockless entry point carry
    /// `opened_at = 0`; a server that owns a clock should route hellos
    /// through [`RiService::dispatch_at`] (or call
    /// [`RiService::hello_at`]) so the TTL sweep measures real age.
    pub fn hello(&self, hello: &DeviceHello) -> RiHello {
        self.hello_at(hello, Timestamp::new(0))
    }

    /// [`RiService::hello`] with the server clock threaded through: the
    /// pending session is stamped `opened_at = now` for the TTL sweep.
    pub fn hello_at(&self, hello: &DeviceHello, now: Timestamp) -> RiHello {
        let session_id = self.next_session.fetch_add(1, Ordering::Relaxed);
        let ri_nonce = self.engine.random_nonce(NONCE_LEN);
        self.sessions.insert(
            session_id,
            PendingSession {
                device_id: hello.device_id.clone(),
                ri_nonce: ri_nonce.clone(),
                opened_at: now,
            },
        );
        // Supersession is decided by session id, not by insert order: of two
        // racing hellos for one device, the *older* session is always the
        // one evicted — even when the older thread reaches this map last.
        let evicted = self.pending_by_device.update_or_insert_with(
            hello.device_id.clone(),
            || session_id,
            |current| {
                if *current >= session_id {
                    // A newer hello already holds the slot; this session is
                    // the stale one (None when we just inserted ourselves).
                    Some(session_id).filter(|stale| stale != current)
                } else {
                    let superseded = *current;
                    *current = session_id;
                    Some(superseded)
                }
            },
        );
        if let Some(stale) = evicted {
            self.sessions.remove(&stale);
        }
        self.record(RiEvent::SessionOpened {
            session_id,
            device_id: hello.device_id.clone(),
            ri_nonce: ri_nonce.clone(),
            opened_at: now,
        });
        RiHello {
            ri_id: self.id.clone(),
            session_id,
            ri_nonce,
            selected_algorithms: hello.supported_algorithms.clone(),
            trusted_authorities: vec![self.ca_root.subject().to_string()],
        }
    }

    /// Validates a device certificate as `oma_pki::verify`'s
    /// `verify_certificate_role` would for [`EntityRole::DrmAgent`], but with
    /// the issuer-signature check memoized by certificate fingerprint.
    ///
    /// Check order matches the un-memoized path: anchor/issuer policy, then
    /// the RSA-PSS signature (skipped on a fingerprint hit), then the
    /// validity window, then the role. Only the signature verdict is cached —
    /// it is a pure function of the certificate bytes and the CA key —
    /// whereas the validity check depends on `now` and runs every time. Under
    /// fleet load this turns re-registration and replayed-certificate waves
    /// into hash lookups instead of RSA public-key operations; the service
    /// engine trace reflects the ops actually performed, and that trace
    /// stays outside the terminal cost model.
    fn verify_device_certificate(
        &self,
        certificate: &Certificate,
        now: Timestamp,
    ) -> Result<(), RoapError> {
        check_anchor_and_issuer(certificate, &self.ca_root)
            .map_err(|_| RoapError::CertificateInvalid)?;
        let fingerprint = {
            let mut hasher = Sha1::new();
            hasher.update(&certificate.tbs().to_bytes());
            hasher.update(certificate.signature().as_bytes());
            hasher.finalize()
        };
        if !self.verified_certs.contains(&fingerprint) {
            if !self.engine.pss_verify(
                self.ca_root.public_key(),
                &certificate.tbs().to_bytes(),
                certificate.signature(),
            ) {
                return Err(RoapError::CertificateInvalid);
            }
            self.verified_certs.insert(fingerprint, ());
        }
        check_validity(certificate, now).map_err(|_| RoapError::CertificateInvalid)?;
        if certificate.role() != EntityRole::DrmAgent {
            return Err(RoapError::CertificateInvalid);
        }
        Ok(())
    }

    /// Pass 3 → 4 of registration: verifies a `RegistrationRequest` and, if
    /// the device checks out, answers with a signed `RegistrationResponse`.
    ///
    /// A session is consumed atomically by the first successful
    /// registration; replaying the same request (same session id and nonce)
    /// is rejected.
    ///
    /// # Errors
    ///
    /// * [`RoapError::UnknownSession`] — the session id was never issued, was
    ///   already consumed, or the request is a replay (the machine rejects
    ///   pass 3 from any state without a challenge outstanding),
    /// * [`RoapError::Malformed`] — the device id differs from the hello,
    /// * [`RoapError::CertificateInvalid`] — the device certificate fails
    ///   validation against the CA root, or its subject is not the claimed
    ///   device id (cross-device certificate swap),
    /// * [`RoapError::SignatureInvalid`] — the request signature is wrong.
    pub fn process_registration(
        &self,
        request: &RegistrationRequest,
        now: Timestamp,
    ) -> Result<RegistrationResponse, RoapError> {
        // Machine step: pass 3 is only legal while a challenge is
        // outstanding ([`RiSessionState::ChallengeIssued`] /
        // [`RiSessionState::Reregistering`]). The pending-session entry is
        // the witness of that state — a miss is the machine's
        // `UnknownSession` rejection.
        let session = self
            .sessions
            .get_cloned(&request.session_id)
            .ok_or(RoapError::UnknownSession)?;
        if session.device_id != request.device_id {
            return Err(RoapError::Malformed);
        }
        self.verify_device_certificate(&request.certificate, now)?;
        // Pin the certificate to the claimed device identity. The hello is
        // unauthenticated, so without this pin a peer holding *any* valid
        // DRM-agent certificate could complete registration for an
        // arbitrary device id with its own certificate — and then sign ROAP
        // requests for that id ever after.
        if request.certificate.subject() != request.device_id {
            return Err(RoapError::CertificateInvalid);
        }
        let signed = RegistrationRequest::signed_bytes(
            request.session_id,
            &request.device_id,
            &request.device_nonce,
            request.request_time,
            &request.certificate,
        );
        if !self.engine.pss_verify(
            request.certificate.public_key(),
            &signed,
            &request.signature,
        ) {
            return Err(RoapError::SignatureInvalid);
        }

        // Claim the session. Exactly one request wins; a concurrent or
        // replayed duplicate sees the session gone.
        if self.sessions.remove(&request.session_id).is_none() {
            return Err(RoapError::UnknownSession);
        }
        self.pending_by_device
            .remove_if(&request.device_id, |pending| *pending == request.session_id);
        self.registered.insert(
            request.device_id.clone(),
            RegisteredDevice {
                device_id: request.device_id.clone(),
                certificate: request.certificate.clone(),
            },
        );

        let ocsp = self.ocsp_response();
        let signed = RegistrationResponse::signed_bytes(
            request.session_id,
            &self.id,
            &request.device_nonce,
            &self.certificate,
            &ocsp,
        );
        let signature = self
            .engine
            .pss_sign(self.keys.private(), &signed)
            .expect("RI key large enough for PSS");
        // Journal after the response is fully built (all random draws done)
        // and before it leaves the service: the registration is durable by
        // the time the device can observe it.
        self.record(RiEvent::DeviceRegistered {
            session_id: request.session_id,
            device_id: request.device_id.clone(),
            certificate: request.certificate.clone(),
        });
        Ok(RegistrationResponse {
            session_id: request.session_id,
            ri_id: self.id.clone(),
            device_nonce: request.device_nonce.clone(),
            ri_certificate: self.certificate.clone(),
            ocsp_response: ocsp,
            signature,
        })
    }

    // ----- ROAP: rights object acquisition -------------------------------------

    /// Handles an `RORequest`, returning a signed `ROResponse` with the
    /// protected Rights Object.
    ///
    /// # Errors
    ///
    /// * [`RoapError::DeviceNotRegistered`] — no trusted relationship,
    /// * [`RoapError::SignatureInvalid`] — bad request signature,
    /// * [`RoapError::UnknownRightsObject`] — no rights on sale for the
    ///   content,
    /// * [`RoapError::UnknownDomain`] / [`RoapError::DomainFull`] — domain
    ///   request problems.
    pub fn process_ro_request(
        &self,
        request: &RoRequest,
        now: Timestamp,
    ) -> Result<RoResponse, RoapError> {
        // Machine step: acquisition is a registered-state self-loop. The
        // registered-device entry is both the state witness and the pinned
        // certificate the signature check needs — a miss is the machine's
        // `DeviceNotRegistered` rejection.
        let device = self
            .registered
            .get_cloned(&request.device_id)
            .ok_or(RoapError::DeviceNotRegistered)?;
        let signed = RoRequest::signed_bytes(
            &request.device_id,
            &request.ri_id,
            &request.content_id,
            request.domain_id.as_ref(),
            &request.device_nonce,
            request.request_time,
        );
        if !self
            .engine
            .pss_verify(device.certificate.public_key(), &signed, &request.signature)
        {
            return Err(RoapError::SignatureInvalid);
        }
        let entry = self
            .content
            .get_cloned(&request.content_id)
            .ok_or(RoapError::UnknownRightsObject)?;

        // Validate the domain *before* allocating the RO id: a rejected
        // request must not advance the device's id sequence or the
        // issued-RO counter.
        let domain = match &request.domain_id {
            None => None,
            Some(domain_id) => {
                let domain = self
                    .domains
                    .get_cloned(domain_id)
                    .ok_or(RoapError::UnknownDomain)?;
                if !domain.is_member(&request.device_id) {
                    return Err(RoapError::UnknownDomain);
                }
                Some(domain)
            }
        };

        let scope = format!("dev:{}", request.device_id);
        let (ro_id, sequence) = self.next_ro_id(&scope);
        let rights_object = match &domain {
            None => self.build_device_ro(
                ro_id,
                &request.content_id,
                &entry,
                device.certificate.public_key(),
                now,
            ),
            Some(domain) => self.build_domain_ro(ro_id, &request.content_id, &entry, domain, now),
        };

        let signed = RoResponse::signed_bytes(
            &request.device_id,
            &self.id,
            &request.device_nonce,
            &rights_object,
        );
        let signature = self
            .engine
            .pss_sign(self.keys.private(), &signed)
            .expect("RI key large enough for PSS");
        self.record(RiEvent::RoIssued { scope, sequence });
        Ok(RoResponse {
            device_id: request.device_id.clone(),
            ri_id: self.id.clone(),
            device_nonce: request.device_nonce.clone(),
            rights_object,
            signature,
        })
    }

    /// Issues a Domain Rights Object directly (out-of-band distribution to
    /// domain members, e.g. via removable media to an unconnected device).
    ///
    /// # Errors
    ///
    /// * [`RoapError::UnknownRightsObject`] — no rights for the content,
    /// * [`RoapError::UnknownDomain`] — the domain does not exist.
    pub fn issue_domain_ro(
        &self,
        content_id: &str,
        domain_id: &DomainId,
        now: Timestamp,
    ) -> Result<ProtectedRightsObject, RoapError> {
        let entry = self
            .content
            .get_cloned(&content_id.to_string())
            .ok_or(RoapError::UnknownRightsObject)?;
        let domain = self
            .domains
            .get_cloned(domain_id)
            .ok_or(RoapError::UnknownDomain)?;
        let scope = format!("dom:{domain_id}");
        let (ro_id, sequence) = self.next_ro_id(&scope);
        let ro = self.build_domain_ro(ro_id, content_id, &entry, &domain, now);
        self.record(RiEvent::RoIssued { scope, sequence });
        Ok(ro)
    }

    /// Allocates the next Rights Object id for `scope` (a registered device
    /// or a domain), returning the id and the sequence number it consumed.
    /// Each scope owns its own sequence in a sharded map, so the id a
    /// device receives depends only on how many ROs *that device* already
    /// obtained — never on how requests from different devices interleave.
    fn next_ro_id(&self, scope: &str) -> (RightsObjectId, u64) {
        let seq = self.ro_sequences.update_or_insert_with(
            scope.to_string(),
            || 0,
            |n| {
                let current = *n;
                *n += 1;
                current
            },
        );
        self.issued_ros.fetch_add(1, Ordering::Relaxed);
        (
            RightsObjectId::new(&format!("ro:{}:{}:{}", self.id, scope, seq)),
            seq,
        )
    }

    fn build_payload(
        &self,
        id: RightsObjectId,
        content_id: &str,
        entry: &ContentEntry,
        krek: &[u8; 16],
        now: Timestamp,
    ) -> RightsObjectPayload {
        let encrypted_cek = self
            .engine
            .aes_wrap(krek, &entry.cek)
            .expect("CEK wrapping with a 16-byte KREK cannot fail");
        RightsObjectPayload {
            id,
            rights_issuer: self.id.clone(),
            content_id: content_id.to_string(),
            rights: entry.template.rights().clone(),
            dcf_hash: entry.dcf_hash,
            encrypted_cek,
            issued_at: now,
        }
    }

    fn build_device_ro(
        &self,
        id: RightsObjectId,
        content_id: &str,
        entry: &ContentEntry,
        device_key: &RsaPublicKey,
        now: Timestamp,
    ) -> ProtectedRightsObject {
        let kmac = self.engine.random_key();
        let krek = self.engine.random_key();
        let payload = self.build_payload(id, content_id, entry, &krek, now);
        let mac = self.engine.hmac_sha1(&kmac, &payload.to_bytes());
        let wrapped = self
            .engine
            .kem_wrap(device_key, &kmac, &krek)
            .expect("KEM wrap with an honest device key cannot fail");
        ProtectedRightsObject {
            payload,
            key_protection: KeyProtection::Device(wrapped),
            mac,
            signature: None,
        }
    }

    fn build_domain_ro(
        &self,
        id: RightsObjectId,
        content_id: &str,
        entry: &ContentEntry,
        domain: &Domain,
        now: Timestamp,
    ) -> ProtectedRightsObject {
        let kmac = self.engine.random_key();
        let krek = self.engine.random_key();
        let payload = self.build_payload(id, content_id, entry, &krek, now);
        let mac = self.engine.hmac_sha1(&kmac, &payload.to_bytes());
        let mut key_material = [0u8; 32];
        key_material[..16].copy_from_slice(&kmac);
        key_material[16..].copy_from_slice(&krek);
        let wrapped = self
            .engine
            .aes_wrap(domain.key(), &key_material)
            .expect("domain key wrap cannot fail");
        // The signature over the payload is mandatory for Domain ROs.
        let signature = self
            .engine
            .pss_sign(self.keys.private(), &payload.to_bytes())
            .expect("RI key large enough for PSS");
        ProtectedRightsObject {
            payload,
            key_protection: KeyProtection::Domain {
                domain_id: domain.id().clone(),
                generation: domain.generation(),
                wrapped,
            },
            mac,
            signature: Some(signature),
        }
    }

    // ----- domains --------------------------------------------------------------

    /// Creates a domain with a fresh shared key. Creation is first-wins: if
    /// the domain already exists it is left untouched (members, key and
    /// all) — wholesale re-creation would silently evict members and rotate
    /// the key without a domain upgrade, and would make journal replay
    /// ambiguous about whether an existing member set survives.
    pub fn create_domain(&self, domain_id: &str, max_members: usize) -> DomainId {
        let id = DomainId::new(domain_id);
        let key = self.engine.random_key();
        let mut created = false;
        self.domains.update_or_insert_with(
            id.clone(),
            || {
                created = true;
                Domain::new(id.clone(), key, max_members)
            },
            |_| {},
        );
        if created {
            self.record(RiEvent::DomainCreated {
                domain_id: id.clone(),
                key,
                max_members: max_members as u64,
            });
        }
        id
    }

    /// Whether a domain exists.
    pub fn has_domain(&self, domain_id: &DomainId) -> bool {
        self.domains.contains(domain_id)
    }

    /// Number of members currently registered in `domain_id`.
    pub fn domain_member_count(&self, domain_id: &DomainId) -> Option<usize> {
        self.domains
            .with(domain_id, |d| d.map(Domain::member_count))
    }

    /// Handles a `JoinDomainRequest`: adds the device to the domain and
    /// returns the domain key encrypted under the device public key. The
    /// membership check-and-add runs under the domain's shard write lock, so
    /// a full domain never over-admits under concurrency.
    ///
    /// # Errors
    ///
    /// * [`RoapError::DeviceNotRegistered`] — no trusted relationship,
    /// * [`RoapError::SignatureInvalid`] — bad request signature,
    /// * [`RoapError::UnknownDomain`] — the domain does not exist,
    /// * [`RoapError::DomainFull`] — the domain reached its member limit.
    pub fn process_join_domain(
        &self,
        request: &JoinDomainRequest,
        _now: Timestamp,
    ) -> Result<JoinDomainResponse, RoapError> {
        // Machine step: domain join is a registered-state self-loop (see
        // `process_ro_request` — same witness, same rejection).
        let device = self
            .registered
            .get_cloned(&request.device_id)
            .ok_or(RoapError::DeviceNotRegistered)?;
        let signed = JoinDomainRequest::signed_bytes(
            &request.device_id,
            &request.ri_id,
            &request.domain_id,
            &request.device_nonce,
            request.request_time,
        );
        if !self
            .engine
            .pss_verify(device.certificate.public_key(), &signed, &request.signature)
        {
            return Err(RoapError::SignatureInvalid);
        }
        let (key, generation, max_members) = self.domains.update(&request.domain_id, |domain| {
            let domain = domain.ok_or(RoapError::UnknownDomain)?;
            if !domain.is_member(&request.device_id) && !domain.add_member(&request.device_id) {
                return Err(RoapError::DomainFull);
            }
            Ok((*domain.key(), domain.generation(), domain.max_members()))
        })?;
        let encrypted_domain_key = self
            .engine
            .rsa_encrypt(device.certificate.public_key(), &key)
            .expect("16-byte key is always below the modulus");
        let signed = JoinDomainResponse::signed_bytes(
            &request.device_id,
            &self.id,
            &request.domain_id,
            generation,
            &encrypted_domain_key,
            &request.device_nonce,
        );
        let signature = self
            .engine
            .pss_sign(self.keys.private(), &signed)
            .expect("RI key large enough for PSS");
        self.record(RiEvent::DomainJoined {
            domain_id: request.domain_id.clone(),
            device_id: request.device_id.clone(),
            key,
            generation,
            max_members: max_members as u64,
        });
        Ok(JoinDomainResponse {
            device_id: request.device_id.clone(),
            ri_id: self.id.clone(),
            domain_id: request.domain_id.clone(),
            generation,
            encrypted_domain_key,
            device_nonce: request.device_nonce.clone(),
            signature,
        })
    }

    /// Removes a device from a domain (leave-domain).
    ///
    /// Leave-domain requests are unsigned, so the session machine is the
    /// only trust boundary they have: the request is rejected unless
    /// `device_id` is in a registered state. Without this step any wire
    /// peer could evict arbitrary device ids from their domains (the old
    /// behaviour, previously only documented on [`RiService::dispatch`]).
    ///
    /// # Errors
    ///
    /// * [`DrmError::Roap`] with [`RoapError::DeviceNotRegistered`] — the
    ///   device holds no trusted relationship (wrong-state transition),
    /// * [`DrmError::Roap`] with [`RoapError::UnknownDomain`] — the domain
    ///   does not exist,
    /// * [`DrmError::NotInDomain`] — the device was not a member.
    pub fn process_leave_domain(
        &self,
        device_id: &str,
        domain_id: &DomainId,
    ) -> Result<(), DrmError> {
        // Machine step: leave-domain is a registered-state self-loop, and —
        // the request being unsigned — this state check is its entire
        // authentication story.
        self.session_state(device_id)
            .step(PduKind::LeaveDomainRequest)
            .map_err(DrmError::Roap)?;
        self.domains.update(domain_id, |domain| {
            let domain = domain.ok_or(DrmError::Roap(RoapError::UnknownDomain))?;
            if domain.remove_member(device_id) {
                Ok(())
            } else {
                Err(DrmError::NotInDomain)
            }
        })?;
        self.record(RiEvent::DomainLeft {
            domain_id: domain_id.clone(),
            device_id: device_id.to_string(),
        });
        Ok(())
    }

    // ----- wire dispatch ---------------------------------------------------------

    /// The single wire entry point: decodes one [`RoapPdu`] frame, routes it
    /// to the matching handler, and encodes the response frame. Every
    /// failure — a frame that does not decode, a request the handlers
    /// reject — comes back as an encoded [`RoapStatus`] PDU, so a wire peer
    /// always receives a well-formed answer and never a Rust error.
    ///
    /// Request timestamps are taken from the PDUs themselves (`request_time`
    /// fields), mirroring the in-process API where caller and service share
    /// one `now` — which is what makes the in-process and wire paths
    /// byte-identical. **Trust boundary:** on a real wire this lets the peer
    /// pick the clock its certificate is validated against; a deployment
    /// with its own clock should use [`RiService::dispatch_at`], which pins
    /// `now` on the server side. Note also that `LeaveDomainRequest`, like
    /// the in-process `process_leave_domain` it routes to, is unsigned: the
    /// session machine rejects it for unregistered device ids
    /// ([`RoapError::DeviceNotRegistered`]), but an untrusted peer can
    /// still issue leave requests for any *registered* device id.
    ///
    /// Like every other handler, `dispatch` takes `&self`: any number of
    /// threads can push frames into one service instance.
    pub fn dispatch(&self, frame: &[u8]) -> Vec<u8> {
        self.dispatch_with_clock(frame, None)
    }

    /// Total crypto cycles this service's backend has charged so far —
    /// the server-side [`CycleMeter`](oma_crypto::backend::CycleMeter)
    /// reading. Observability layers difference it around a dispatch to
    /// attribute cycles to a request span; under concurrent dispatch the
    /// delta is best effort (it may include a neighbour's work).
    pub fn charged_cycles(&self) -> u64 {
        self.engine.charged_cycles()
    }

    /// [`RiService::dispatch`] with a server-chosen timestamp: `now` is used
    /// for certificate-validity and freshness decisions instead of the
    /// request's own `request_time`, so a wire peer cannot back-date itself
    /// into an expired certificate's validity window.
    pub fn dispatch_at(&self, frame: &[u8], now: Timestamp) -> Vec<u8> {
        self.dispatch_with_clock(frame, Some(now))
    }

    fn dispatch_with_clock(&self, frame: &[u8], now: Option<Timestamp>) -> Vec<u8> {
        if let Some(now) = now {
            // Amortised TTL sweep: a clock-owning server reclaims expired
            // pending sessions as a side effect of serving traffic.
            let tick = self.dispatch_count.fetch_add(1, Ordering::Relaxed);
            if (tick + 1).is_multiple_of(SESSION_SWEEP_INTERVAL) {
                self.sweep_sessions(now);
            }
        }
        let response = match RoapPdu::decode(frame) {
            Ok(pdu) => self.dispatch_pdu(pdu, now),
            Err(e) => RoapPdu::Status(RoapStatus::from(e)),
        };
        response.encode()
    }

    /// Dispatches a stream of concatenated request frames, returning the
    /// concatenated response frames in request order. One call amortizes the
    /// envelope handling over a whole batch — the bulk entry point the
    /// `oma-load` fleet harness drives. If the stream turns undecodable
    /// partway, the frames handled so far are answered and a final error
    /// status closes the response stream.
    ///
    /// Registration waves are amortized beyond the envelope: every device
    /// certificate in the batch is checked against the *same* warm CA-root
    /// Montgomery context, every response is signed with the service's warm
    /// CRT contexts (see `warm_signing_contexts`), and repeated certificates
    /// hit the signature memo instead of redoing the RSA public-key op — so
    /// per-frame crypto setup cost is paid once per service, not once per
    /// frame.
    ///
    /// Timestamps follow [`RiService::dispatch`] semantics (peer-supplied
    /// `request_time`).
    pub fn dispatch_batch(&self, stream: &[u8]) -> Vec<u8> {
        let mut rest = stream;
        // Responses are mostly larger than requests (certificates, ROs).
        let mut out = Vec::with_capacity(stream.len() * 2);
        while !rest.is_empty() {
            match RoapPdu::decode_prefix(rest) {
                Ok((pdu, consumed)) => {
                    out.extend_from_slice(&self.dispatch_pdu(pdu, None).encode());
                    rest = &rest[consumed..];
                }
                Err(e) => {
                    out.extend_from_slice(&RoapPdu::Status(RoapStatus::from(e)).encode());
                    break;
                }
            }
        }
        out
    }

    /// Routes one decoded request PDU to its handler. `clock` overrides the
    /// request-embedded timestamp when the server owns a clock. Response
    /// PDUs arriving where a request belongs are rejected as malformed.
    fn dispatch_pdu(&self, pdu: RoapPdu, clock: Option<Timestamp>) -> RoapPdu {
        match pdu {
            RoapPdu::DeviceHello(hello) => {
                RoapPdu::RiHello(self.hello_at(&hello, clock.unwrap_or(Timestamp::new(0))))
            }
            RoapPdu::RegistrationRequest(request) => {
                let now = clock.unwrap_or(request.request_time);
                match self.process_registration(&request, now) {
                    Ok(response) => RoapPdu::RegistrationResponse(response),
                    Err(e) => RoapPdu::Status(RoapStatus::from(e)),
                }
            }
            RoapPdu::RoRequest(request) => {
                let now = clock.unwrap_or(request.request_time);
                match self.process_ro_request(&request, now) {
                    Ok(response) => RoapPdu::RoResponse(response),
                    Err(e) => RoapPdu::Status(RoapStatus::from(e)),
                }
            }
            RoapPdu::JoinDomainRequest(request) => {
                let now = clock.unwrap_or(request.request_time);
                match self.process_join_domain(&request, now) {
                    Ok(response) => RoapPdu::JoinDomainResponse(response),
                    Err(e) => RoapPdu::Status(RoapStatus::from(e)),
                }
            }
            RoapPdu::LeaveDomainRequest {
                device_id,
                domain_id,
            } => match self.process_leave_domain(&device_id, &domain_id) {
                Ok(()) => RoapPdu::Status(RoapStatus::Ok),
                Err(e) => RoapPdu::Status(RoapStatus::from(&e)),
            },
            // Response PDUs are never valid requests.
            RoapPdu::RiHello(_)
            | RoapPdu::RegistrationResponse(_)
            | RoapPdu::RoResponse(_)
            | RoapPdu::JoinDomainResponse(_)
            | RoapPdu::Status(_) => RoapPdu::Status(RoapStatus::Roap(RoapError::Malformed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::Permission;
    use crate::ContentIssuer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn service() -> (CertificationAuthority, RiService, StdRng) {
        let mut rng = StdRng::seed_from_u64(0x5e41);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let service = RiService::new("ri", 384, &mut ca, &mut rng);
        (ca, service, rng)
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RiService>();
    }

    #[test]
    fn hello_from_many_threads_yields_unique_sessions() {
        let (_ca, service, _rng) = service();
        let service = Arc::new(service);
        let mut ids: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let service = Arc::clone(&service);
                    scope.spawn(move || {
                        service
                            .hello(&DeviceHello::new(&format!("dev-{i}")))
                            .session_id
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn ro_ids_are_scoped_per_device() {
        let (_ca, service, _rng) = service();
        let (a0, s0) = service.next_ro_id("dev:a");
        let (b0, _) = service.next_ro_id("dev:b");
        let (a1, s1) = service.next_ro_id("dev:a");
        assert_eq!(a0.as_str(), "ro:ri:dev:a:0");
        assert_eq!(b0.as_str(), "ro:ri:dev:b:0");
        assert_eq!(a1.as_str(), "ro:ri:dev:a:1");
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(service.issued_ro_count(), 3);
    }

    #[test]
    fn repeated_device_certificate_hits_the_signature_memo() {
        use oma_crypto::Algorithm;
        let (mut ca, service, mut rng) = service();
        let mut agent = crate::DrmAgent::new("dev-a", 384, &mut ca, &mut rng);
        agent.register_with(&service, Timestamp::new(0)).unwrap();
        let first = service
            .engine
            .trace()
            .count(Algorithm::RsaPublic)
            .invocations;
        assert_eq!(first, 2, "cert verify + request signature on first sight");

        // Same device, same certificate: the issuer-signature check is a
        // memo hit, so only the request signature costs an RSA public op.
        agent.register_with(&service, Timestamp::new(1)).unwrap();
        let trace = service.engine.trace();
        assert_eq!(trace.count(Algorithm::RsaPublic).invocations - first, 1);

        // A never-seen certificate still pays the full verification.
        let mut other = crate::DrmAgent::new("dev-b", 384, &mut ca, &mut rng);
        other.register_with(&service, Timestamp::new(2)).unwrap();
        let total = service
            .engine
            .trace()
            .count(Algorithm::RsaPublic)
            .invocations;
        assert_eq!(total - first - 1, 2);
    }

    #[test]
    fn memoized_certificate_still_fails_outside_validity_window() {
        let (mut ca, service, mut rng) = service();
        let mut agent = crate::DrmAgent::new("dev-a", 384, &mut ca, &mut rng);
        agent.register_with(&service, Timestamp::new(0)).unwrap();
        // The signature memo must not bypass the time-dependent check: the
        // same certificate presented outside its validity window is refused.
        let hello = service.hello(&DeviceHello::new("dev-a"));
        let request = agent
            .registration_request(&hello, Timestamp::new(u64::MAX - 1))
            .expect("agent builds request");
        assert_eq!(
            service.process_registration(&request, Timestamp::new(u64::MAX - 1)),
            Err(RoapError::CertificateInvalid)
        );
    }

    #[test]
    fn repeated_hellos_keep_one_pending_session_per_device() {
        let (_ca, service, _rng) = service();
        for _ in 0..50 {
            service.hello(&DeviceHello::new("chatty-device"));
        }
        service.hello(&DeviceHello::new("other-device"));
        assert_eq!(
            service.pending_session_count(),
            2,
            "a new hello supersedes the device's earlier pending session"
        );
    }

    #[test]
    fn rejected_ro_request_does_not_advance_id_sequence() {
        use crate::roap::RoRequest;
        let (mut ca, service, mut rng) = service();
        let ci = ContentIssuer::new("ci");
        let (dcf, cek) = ci.package(b"bytes", "cid:x", &mut rng);
        service.add_content(
            "cid:x",
            cek,
            &dcf,
            RightsTemplate::unlimited(Permission::Play),
        );
        let mut agent = crate::DrmAgent::new("dev-a", 384, &mut ca, &mut rng);
        agent.register_with(&service, Timestamp::new(0)).unwrap();

        // A signed request for a domain the device never joined is rejected
        // and must not burn an RO id.
        let nope = DomainId::new("nope");
        assert_eq!(
            agent.acquire_domain_rights_with(&service, "cid:x", &nope, Timestamp::new(0)),
            Err(DrmError::NotInDomain)
        );
        // Same at the service layer (agent-side membership check bypassed).
        let request = RoRequest {
            device_id: "dev-a".into(),
            ri_id: "ri".into(),
            content_id: "cid:x".into(),
            domain_id: Some(nope),
            device_nonce: vec![0; NONCE_LEN],
            request_time: Timestamp::new(0),
            signature: oma_crypto::pss::PssSignature::from_bytes(vec![0; 48]),
        };
        assert!(service
            .process_ro_request(&request, Timestamp::new(0))
            .is_err());
        assert_eq!(service.issued_ro_count(), 0);

        // The first successful RO still gets sequence number 0.
        let response = agent
            .acquire_rights_with(&service, "cid:x", Timestamp::new(0))
            .unwrap();
        assert_eq!(response.ro_id().as_str(), "ro:ri:dev:dev-a:0");
        assert_eq!(service.issued_ro_count(), 1);
    }

    #[test]
    fn leave_domain_reports_both_failure_reasons() {
        let (mut ca, service, mut rng) = service();
        let id = service.create_domain("family", 2);
        // Unregistered device ids are stopped at the session machine before
        // any domain lookup happens — leave-domain is unsigned, so the
        // machine state is its only trust boundary.
        assert_eq!(
            service.process_leave_domain("ghost", &DomainId::new("nope")),
            Err(DrmError::Roap(RoapError::DeviceNotRegistered))
        );
        // A registered device sees the domain-level failure reasons.
        let mut agent = crate::DrmAgent::new("dev-1", 384, &mut ca, &mut rng);
        agent.register_with(&service, Timestamp::new(10)).unwrap();
        assert_eq!(
            service.process_leave_domain("dev-1", &DomainId::new("nope")),
            Err(DrmError::Roap(RoapError::UnknownDomain))
        );
        assert_eq!(
            service.process_leave_domain("dev-1", &id),
            Err(DrmError::NotInDomain)
        );
    }

    #[test]
    fn ttl_sweep_reclaims_sessions_that_never_complete() {
        let (_ca, service, _rng) = service();
        service.set_session_ttl(60);
        // 40 devices say hello and vanish without completing registration.
        for i in 0..40 {
            service.hello_at(
                &DeviceHello::new(&format!("ghost-{i}")),
                Timestamp::new(100),
            );
        }
        // A late arrival is still inside its TTL at sweep time.
        service.hello_at(&DeviceHello::new("alive"), Timestamp::new(150));
        assert_eq!(service.pending_session_count(), 41);

        assert_eq!(
            service.sweep_sessions(Timestamp::new(155)),
            0,
            "none aged out yet"
        );
        let swept = service.sweep_sessions(Timestamp::new(161));
        assert_eq!(swept, 40, "abandoned sessions reclaimed");
        assert_eq!(service.pending_session_count(), 1);

        // The surviving session still completes: its pending_by_device
        // entry was not clobbered by the sweep.
        let hello = service.hello_at(&DeviceHello::new("alive"), Timestamp::new(162));
        assert_eq!(service.pending_session_count(), 1, "supersession intact");
        assert!(hello.session_id > 41);
    }

    #[test]
    fn clocked_dispatch_drives_the_sweep() {
        let (_ca, service, _rng) = service();
        service.set_session_ttl(10);
        // Open sessions at t=0 through the wire path, then keep dispatching
        // past the sweep interval with an advanced clock: the abandoned
        // sessions must disappear without anyone calling sweep_sessions.
        for i in 0..8 {
            let frame = RoapPdu::DeviceHello(DeviceHello::new(&format!("dev-{i}"))).encode();
            service.dispatch_at(&frame, Timestamp::new(0));
        }
        assert_eq!(service.pending_session_count(), 8);
        let mut swept_at = None;
        for tick in 0..2 * SESSION_SWEEP_INTERVAL {
            let frame = RoapPdu::DeviceHello(DeviceHello::new("prober")).encode();
            service.dispatch_at(&frame, Timestamp::new(1_000));
            // The prober's own (fresh) session is always pending.
            if service.pending_session_count() == 1 {
                swept_at = Some(tick);
                break;
            }
        }
        assert!(
            swept_at.is_some(),
            "dispatch_at never triggered the TTL sweep"
        );
    }

    #[test]
    fn unclocked_hello_and_disabled_ttl_never_sweep() {
        let (_ca, service, _rng) = service();
        for i in 0..5 {
            service.hello(&DeviceHello::new(&format!("dev-{i}")));
        }
        // TTL disabled: sweep is a no-op no matter the clock.
        assert_eq!(service.sweep_sessions(Timestamp::new(u64::MAX)), 0);
        assert_eq!(service.pending_session_count(), 5);
    }

    #[test]
    fn state_image_roundtrip_restores_byte_identical_behaviour() {
        use crate::rel::Permission;
        use crate::ContentIssuer;
        let (mut ca, service, mut rng) = service();
        let ci = ContentIssuer::new("ci");
        let (dcf, cek) = ci.package(b"track bytes", "cid:x", &mut rng);
        service.add_content(
            "cid:x",
            cek,
            &dcf,
            RightsTemplate::unlimited(Permission::Play),
        );
        service.create_domain("family", 4);
        let mut agent = crate::DrmAgent::new("dev-a", 384, &mut ca, &mut rng);
        agent.register_with(&service, Timestamp::new(0)).unwrap();
        agent
            .acquire_rights_with(&service, "cid:x", Timestamp::new(0))
            .unwrap();
        // Leave a pending session dangling so the image carries one.
        service.hello_at(&DeviceHello::new("dev-b"), Timestamp::new(5));

        let image = service.state_image();
        let restored = RiService::from_image(image.clone());
        assert_eq!(restored.state_image(), image, "image roundtrip is exact");
        assert_eq!(restored.id(), service.id());
        assert!(restored.is_registered("dev-a"));
        assert!(restored.has_content("cid:x"));
        assert_eq!(restored.pending_session_count(), 1);

        // The decisive property: both instances now produce byte-identical
        // protocol output — same RO id, same key material, same signature.
        let request = agent
            .ro_request(service.id(), "cid:x", None, Timestamp::new(0))
            .unwrap();
        let a = service
            .process_ro_request(&request, Timestamp::new(0))
            .unwrap();
        let b = restored
            .process_ro_request(&request, Timestamp::new(0))
            .unwrap();
        assert_eq!(a, b, "continuation diverged after from_image");
        assert_eq!(a.ro_id().as_str(), "ro:ri:dev:dev-a:1");
    }

    #[test]
    fn refresh_ocsp_updates_shared_response() {
        let (ca, service, _rng) = service();
        let before = service.ocsp_response();
        service.refresh_ocsp(&ca, Timestamp::new(9_999));
        let after = service.ocsp_response();
        assert_ne!(before, after);
        assert_eq!(after.tbs().produced_at, Timestamp::new(9_999));
    }

    #[test]
    fn catalogue_and_domain_queries_take_shared_self() {
        let (_ca, service, mut rng) = service();
        let ci = ContentIssuer::new("ci");
        let (dcf, cek) = ci.package(b"bytes", "cid:x", &mut rng);
        service.add_content(
            "cid:x",
            cek,
            &dcf,
            RightsTemplate::unlimited(Permission::Play),
        );
        assert!(service.has_content("cid:x"));
        assert!(!service.has_content("cid:y"));
        let domain = service.create_domain("family", 4);
        assert!(service.has_domain(&domain));
        assert_eq!(service.domain_member_count(&domain), Some(0));
        assert_eq!(service.registered_count(), 0);
        assert!(!service.is_registered("anyone"));
        let ro = service
            .issue_domain_ro("cid:x", &domain, Timestamp::new(0))
            .unwrap();
        assert!(ro.is_domain_ro());
        assert_eq!(ro.id().as_str(), "ro:ri:dom:family:0");
    }
}
