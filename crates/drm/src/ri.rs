//! The Rights Issuer: registers devices, sells licenses and manages domains.
//!
//! The Rights Issuer's cryptographic work happens on the server side, so its
//! [`CryptoEngine`] trace is not part of the terminal cost model — it exists
//! only so the protocol runs with real cryptography end to end.

use crate::dcf::Dcf;
use crate::domain::{Domain, DomainId};
use crate::rel::RightsTemplate;
use crate::ro::{KeyProtection, ProtectedRightsObject, RightsObjectId, RightsObjectPayload};
use crate::roap::{
    DeviceHello, JoinDomainRequest, JoinDomainResponse, RegistrationRequest, RegistrationResponse,
    RiHello, RoRequest, RoResponse, RoapError, NONCE_LEN, ROAP_VERSION,
};
use oma_crypto::backend::{CryptoBackend, SoftwareBackend};
use oma_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use oma_crypto::sha1::DIGEST_SIZE;
use oma_crypto::CryptoEngine;
use oma_pki::ocsp::{OcspRequest, OcspResponse};
use oma_pki::{
    verify::verify_certificate_role, Certificate, CertificationAuthority, EntityRole, Timestamp,
    ValidityPeriod,
};
use rand::RngCore;
use std::collections::HashMap;
use std::sync::Arc;

/// Validity of issued Rights Issuer and device certificates (10 years).
const CERT_VALIDITY_SECONDS: u64 = 10 * 365 * 24 * 3600;

/// A device the Rights Issuer has established a trusted relationship with.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RegisteredDevice {
    device_id: String,
    certificate: Certificate,
}

/// A license the Rights Issuer can sell for one piece of content.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ContentEntry {
    cek: [u8; 16],
    dcf_hash: [u8; DIGEST_SIZE],
    template: RightsTemplate,
}

/// A pending ROAP registration session created by a `DeviceHello`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PendingSession {
    device_id: String,
    ri_nonce: Vec<u8>,
}

/// The Rights Issuer actor.
#[derive(Debug)]
pub struct RightsIssuer {
    id: String,
    keys: RsaKeyPair,
    certificate: Certificate,
    ca_root: Certificate,
    ocsp: OcspResponse,
    engine: CryptoEngine,
    next_session: u64,
    next_ro: u64,
    sessions: HashMap<u64, PendingSession>,
    registered: HashMap<String, RegisteredDevice>,
    content: HashMap<String, ContentEntry>,
    domains: HashMap<DomainId, Domain>,
}

impl RightsIssuer {
    /// Creates a Rights Issuer, obtaining its certificate and an initial OCSP
    /// response from `ca`. Server-side cryptography runs on the software
    /// backend; use [`RightsIssuer::with_backend`] to model an accelerated
    /// license server.
    pub fn new<R: RngCore + ?Sized>(
        id: &str,
        modulus_bits: usize,
        ca: &mut CertificationAuthority,
        rng: &mut R,
    ) -> Self {
        Self::with_backend(id, modulus_bits, ca, Arc::new(SoftwareBackend::new()), rng)
    }

    /// Creates a Rights Issuer whose cryptography executes on `backend`.
    /// The Rights Issuer's trace stays outside the terminal cost model, but
    /// a backend can still be supplied so server-side capacity studies use
    /// the same pluggable layer as the DRM Agent.
    pub fn with_backend<R: RngCore + ?Sized>(
        id: &str,
        modulus_bits: usize,
        ca: &mut CertificationAuthority,
        backend: Arc<dyn CryptoBackend>,
        rng: &mut R,
    ) -> Self {
        let keys = RsaKeyPair::generate(modulus_bits, rng);
        let certificate = ca.issue(
            id,
            EntityRole::RightsIssuer,
            keys.public().clone(),
            ValidityPeriod::starting_at(Timestamp::new(0), CERT_VALIDITY_SECONDS),
        );
        let ocsp = ca.ocsp_respond(
            &OcspRequest {
                serial: certificate.serial(),
                nonce: Vec::new(),
            },
            Timestamp::new(0),
        );
        RightsIssuer {
            id: id.to_string(),
            keys,
            certificate,
            ca_root: ca.root_certificate().clone(),
            ocsp,
            engine: CryptoEngine::with_backend(backend, rng.next_u64()),
            next_session: 1,
            next_ro: 1,
            sessions: HashMap::new(),
            registered: HashMap::new(),
            content: HashMap::new(),
            domains: HashMap::new(),
        }
    }

    /// The Rights Issuer identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The Rights Issuer certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.certificate
    }

    /// The Rights Issuer public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        self.keys.public()
    }

    /// Re-fetches the cached OCSP response for this Rights Issuer's
    /// certificate (a fresh response is required for registration to succeed
    /// if the cached one has become stale).
    pub fn refresh_ocsp(&mut self, ca: &CertificationAuthority, now: Timestamp) {
        self.ocsp = ca.ocsp_respond(
            &OcspRequest {
                serial: self.certificate.serial(),
                nonce: Vec::new(),
            },
            now,
        );
    }

    /// Registers a piece of content: the content encryption key received
    /// from the Content Issuer, the DCF it encrypts (for the hash binding)
    /// and the license template on sale.
    pub fn add_content(
        &mut self,
        content_id: &str,
        cek: [u8; 16],
        dcf: &Dcf,
        template: RightsTemplate,
    ) {
        self.content.insert(
            content_id.to_string(),
            ContentEntry {
                cek,
                dcf_hash: dcf.hash(),
                template,
            },
        );
    }

    /// Whether the Rights Issuer offers rights for `content_id`.
    pub fn has_content(&self, content_id: &str) -> bool {
        self.content.contains_key(content_id)
    }

    /// Whether `device_id` holds a trusted relationship with this RI.
    pub fn is_registered(&self, device_id: &str) -> bool {
        self.registered.contains_key(device_id)
    }

    /// Number of registered devices.
    pub fn registered_count(&self) -> usize {
        self.registered.len()
    }

    // ----- ROAP: registration -------------------------------------------------

    /// Pass 1 → 2 of registration: answers a `DeviceHello` with an `RiHello`.
    pub fn hello(&mut self, hello: &DeviceHello) -> RiHello {
        let session_id = self.next_session;
        self.next_session += 1;
        let ri_nonce = self.engine.random_nonce(NONCE_LEN);
        self.sessions.insert(
            session_id,
            PendingSession {
                device_id: hello.device_id.clone(),
                ri_nonce: ri_nonce.clone(),
            },
        );
        RiHello {
            ri_id: self.id.clone(),
            session_id,
            ri_nonce,
            selected_algorithms: hello.supported_algorithms.clone(),
            trusted_authorities: vec![self.ca_root.subject().to_string()],
        }
    }

    /// Pass 3 → 4 of registration: verifies a `RegistrationRequest` and, if
    /// the device checks out, answers with a signed `RegistrationResponse`.
    ///
    /// # Errors
    ///
    /// * [`RoapError::UnknownSession`] — the session id was never issued,
    /// * [`RoapError::Malformed`] — the device id differs from the hello,
    /// * [`RoapError::CertificateInvalid`] — the device certificate fails
    ///   validation against the CA root,
    /// * [`RoapError::SignatureInvalid`] — the request signature is wrong.
    pub fn process_registration(
        &mut self,
        request: &RegistrationRequest,
        now: Timestamp,
    ) -> Result<RegistrationResponse, RoapError> {
        let session = self
            .sessions
            .get(&request.session_id)
            .ok_or(RoapError::UnknownSession)?;
        if session.device_id != request.device_id {
            return Err(RoapError::Malformed);
        }
        verify_certificate_role(
            &self.engine,
            &request.certificate,
            &self.ca_root,
            EntityRole::DrmAgent,
            now,
        )
        .map_err(|_| RoapError::CertificateInvalid)?;
        let signed = RegistrationRequest::signed_bytes(
            request.session_id,
            &request.device_id,
            &request.device_nonce,
            request.request_time,
            &request.certificate,
        );
        if !self.engine.pss_verify(
            request.certificate.public_key(),
            &signed,
            &request.signature,
        ) {
            return Err(RoapError::SignatureInvalid);
        }

        self.registered.insert(
            request.device_id.clone(),
            RegisteredDevice {
                device_id: request.device_id.clone(),
                certificate: request.certificate.clone(),
            },
        );
        self.sessions.remove(&request.session_id);

        let signed = RegistrationResponse::signed_bytes(
            request.session_id,
            &self.id,
            &request.device_nonce,
            &self.certificate,
            &self.ocsp,
        );
        let signature = self
            .engine
            .pss_sign(self.keys.private(), &signed)
            .expect("RI key large enough for PSS");
        Ok(RegistrationResponse {
            session_id: request.session_id,
            ri_id: self.id.clone(),
            device_nonce: request.device_nonce.clone(),
            ri_certificate: self.certificate.clone(),
            ocsp_response: self.ocsp.clone(),
            signature,
        })
    }

    // ----- ROAP: rights object acquisition -------------------------------------

    /// Handles an `RORequest`, returning a signed `ROResponse` with the
    /// protected Rights Object.
    ///
    /// # Errors
    ///
    /// * [`RoapError::DeviceNotRegistered`] — no trusted relationship,
    /// * [`RoapError::SignatureInvalid`] — bad request signature,
    /// * [`RoapError::UnknownRightsObject`] — no rights on sale for the
    ///   content,
    /// * [`RoapError::UnknownDomain`] / [`RoapError::DomainFull`] — domain
    ///   request problems.
    pub fn process_ro_request(
        &mut self,
        request: &RoRequest,
        now: Timestamp,
    ) -> Result<RoResponse, RoapError> {
        let device = self
            .registered
            .get(&request.device_id)
            .cloned()
            .ok_or(RoapError::DeviceNotRegistered)?;
        let signed = RoRequest::signed_bytes(
            &request.device_id,
            &request.ri_id,
            &request.content_id,
            request.domain_id.as_ref(),
            &request.device_nonce,
            request.request_time,
        );
        if !self
            .engine
            .pss_verify(device.certificate.public_key(), &signed, &request.signature)
        {
            return Err(RoapError::SignatureInvalid);
        }
        let entry = self
            .content
            .get(&request.content_id)
            .cloned()
            .ok_or(RoapError::UnknownRightsObject)?;

        let rights_object = match &request.domain_id {
            None => self.build_device_ro(
                &request.content_id,
                &entry,
                device.certificate.public_key(),
                now,
            ),
            Some(domain_id) => {
                let domain = self
                    .domains
                    .get(domain_id)
                    .ok_or(RoapError::UnknownDomain)?;
                if !domain.is_member(&request.device_id) {
                    return Err(RoapError::UnknownDomain);
                }
                let domain = domain.clone();
                self.build_domain_ro(&request.content_id, &entry, &domain, now)
            }
        };

        let signed = RoResponse::signed_bytes(
            &request.device_id,
            &self.id,
            &request.device_nonce,
            &rights_object,
        );
        let signature = self
            .engine
            .pss_sign(self.keys.private(), &signed)
            .expect("RI key large enough for PSS");
        Ok(RoResponse {
            device_id: request.device_id.clone(),
            ri_id: self.id.clone(),
            device_nonce: request.device_nonce.clone(),
            rights_object,
            signature,
        })
    }

    /// Issues a Domain Rights Object directly (out-of-band distribution to
    /// domain members, e.g. via removable media to an unconnected device).
    ///
    /// # Errors
    ///
    /// * [`RoapError::UnknownRightsObject`] — no rights for the content,
    /// * [`RoapError::UnknownDomain`] — the domain does not exist.
    pub fn issue_domain_ro(
        &mut self,
        content_id: &str,
        domain_id: &DomainId,
        now: Timestamp,
    ) -> Result<ProtectedRightsObject, RoapError> {
        let entry = self
            .content
            .get(content_id)
            .cloned()
            .ok_or(RoapError::UnknownRightsObject)?;
        let domain = self
            .domains
            .get(domain_id)
            .cloned()
            .ok_or(RoapError::UnknownDomain)?;
        Ok(self.build_domain_ro(content_id, &entry, &domain, now))
    }

    fn next_ro_id(&mut self) -> RightsObjectId {
        let id = RightsObjectId::new(&format!("ro:{}:{}", self.id, self.next_ro));
        self.next_ro += 1;
        id
    }

    fn build_payload(
        &mut self,
        content_id: &str,
        entry: &ContentEntry,
        krek: &[u8; 16],
        now: Timestamp,
    ) -> RightsObjectPayload {
        let encrypted_cek = self
            .engine
            .aes_wrap(krek, &entry.cek)
            .expect("CEK wrapping with a 16-byte KREK cannot fail");
        RightsObjectPayload {
            id: self.next_ro_id(),
            rights_issuer: self.id.clone(),
            content_id: content_id.to_string(),
            rights: entry.template.rights().clone(),
            dcf_hash: entry.dcf_hash,
            encrypted_cek,
            issued_at: now,
        }
    }

    fn build_device_ro(
        &mut self,
        content_id: &str,
        entry: &ContentEntry,
        device_key: &RsaPublicKey,
        now: Timestamp,
    ) -> ProtectedRightsObject {
        let kmac = self.engine.random_key();
        let krek = self.engine.random_key();
        let payload = self.build_payload(content_id, entry, &krek, now);
        let mac = self.engine.hmac_sha1(&kmac, &payload.to_bytes());
        let wrapped = self
            .engine
            .kem_wrap(device_key, &kmac, &krek)
            .expect("KEM wrap with an honest device key cannot fail");
        ProtectedRightsObject {
            payload,
            key_protection: KeyProtection::Device(wrapped),
            mac,
            signature: None,
        }
    }

    fn build_domain_ro(
        &mut self,
        content_id: &str,
        entry: &ContentEntry,
        domain: &Domain,
        now: Timestamp,
    ) -> ProtectedRightsObject {
        let kmac = self.engine.random_key();
        let krek = self.engine.random_key();
        let payload = self.build_payload(content_id, entry, &krek, now);
        let mac = self.engine.hmac_sha1(&kmac, &payload.to_bytes());
        let mut key_material = [0u8; 32];
        key_material[..16].copy_from_slice(&kmac);
        key_material[16..].copy_from_slice(&krek);
        let wrapped = self
            .engine
            .aes_wrap(domain.key(), &key_material)
            .expect("domain key wrap cannot fail");
        // The signature over the payload is mandatory for Domain ROs.
        let signature = self
            .engine
            .pss_sign(self.keys.private(), &payload.to_bytes())
            .expect("RI key large enough for PSS");
        ProtectedRightsObject {
            payload,
            key_protection: KeyProtection::Domain {
                domain_id: domain.id().clone(),
                generation: domain.generation(),
                wrapped,
            },
            mac,
            signature: Some(signature),
        }
    }

    // ----- domains --------------------------------------------------------------

    /// Creates a domain with a fresh shared key.
    pub fn create_domain(&mut self, domain_id: &str, max_members: usize) -> DomainId {
        let id = DomainId::new(domain_id);
        let key = self.engine.random_key();
        self.domains
            .insert(id.clone(), Domain::new(id.clone(), key, max_members));
        id
    }

    /// Whether a domain exists.
    pub fn has_domain(&self, domain_id: &DomainId) -> bool {
        self.domains.contains_key(domain_id)
    }

    /// Number of members currently registered in `domain_id`.
    pub fn domain_member_count(&self, domain_id: &DomainId) -> Option<usize> {
        self.domains.get(domain_id).map(Domain::member_count)
    }

    /// Handles a `JoinDomainRequest`: adds the device to the domain and
    /// returns the domain key encrypted under the device public key.
    ///
    /// # Errors
    ///
    /// * [`RoapError::DeviceNotRegistered`] — no trusted relationship,
    /// * [`RoapError::SignatureInvalid`] — bad request signature,
    /// * [`RoapError::UnknownDomain`] — the domain does not exist,
    /// * [`RoapError::DomainFull`] — the domain reached its member limit.
    pub fn process_join_domain(
        &mut self,
        request: &JoinDomainRequest,
        _now: Timestamp,
    ) -> Result<JoinDomainResponse, RoapError> {
        let device = self
            .registered
            .get(&request.device_id)
            .cloned()
            .ok_or(RoapError::DeviceNotRegistered)?;
        let signed = JoinDomainRequest::signed_bytes(
            &request.device_id,
            &request.ri_id,
            &request.domain_id,
            &request.device_nonce,
            request.request_time,
        );
        if !self
            .engine
            .pss_verify(device.certificate.public_key(), &signed, &request.signature)
        {
            return Err(RoapError::SignatureInvalid);
        }
        let domain = self
            .domains
            .get_mut(&request.domain_id)
            .ok_or(RoapError::UnknownDomain)?;
        if !domain.is_member(&request.device_id) && !domain.add_member(&request.device_id) {
            return Err(RoapError::DomainFull);
        }
        let key = *domain.key();
        let generation = domain.generation();
        let encrypted_domain_key = self
            .engine
            .rsa_encrypt(device.certificate.public_key(), &key)
            .expect("16-byte key is always below the modulus");
        let signed = JoinDomainResponse::signed_bytes(
            &request.device_id,
            &self.id,
            &request.domain_id,
            generation,
            &encrypted_domain_key,
            &request.device_nonce,
        );
        let signature = self
            .engine
            .pss_sign(self.keys.private(), &signed)
            .expect("RI key large enough for PSS");
        Ok(JoinDomainResponse {
            device_id: request.device_id.clone(),
            ri_id: self.id.clone(),
            domain_id: request.domain_id.clone(),
            generation,
            encrypted_domain_key,
            device_nonce: request.device_nonce.clone(),
            signature,
        })
    }

    /// Removes a device from a domain (leave-domain). Returns whether the
    /// device was a member.
    pub fn process_leave_domain(&mut self, device_id: &str, domain_id: &DomainId) -> bool {
        self.domains
            .get_mut(domain_id)
            .map(|d| d.remove_member(device_id))
            .unwrap_or(false)
    }

    /// Protocol version spoken by this implementation.
    pub fn version(&self) -> &'static str {
        ROAP_VERSION
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::Permission;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_ri_has_certificate_and_ocsp() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let ri = RightsIssuer::new("ri.example.com", 384, &mut ca, &mut rng);
        assert_eq!(ri.id(), "ri.example.com");
        assert_eq!(ri.certificate().role(), EntityRole::RightsIssuer);
        assert_eq!(ri.certificate().subject(), "ri.example.com");
        assert_eq!(ri.registered_count(), 0);
        assert_eq!(ri.version(), "2.0");
        assert_eq!(ri.public_key(), ri.certificate().public_key());
    }

    #[test]
    fn hello_creates_distinct_sessions() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let mut ri = RightsIssuer::new("ri", 384, &mut ca, &mut rng);
        let h1 = ri.hello(&DeviceHello::new("d1"));
        let h2 = ri.hello(&DeviceHello::new("d2"));
        assert_ne!(h1.session_id, h2.session_id);
        assert_eq!(h1.ri_id, "ri");
        assert!(!h1.ri_nonce.is_empty());
        assert_eq!(h1.trusted_authorities, vec!["cmla".to_string()]);
    }

    #[test]
    fn content_catalogue() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let mut ri = RightsIssuer::new("ri", 384, &mut ca, &mut rng);
        let ci = crate::ContentIssuer::new("ci");
        let (dcf, cek) = ci.package(b"bytes", "cid:x", &mut rng);
        assert!(!ri.has_content("cid:x"));
        ri.add_content(
            "cid:x",
            cek,
            &dcf,
            RightsTemplate::unlimited(Permission::Play),
        );
        assert!(ri.has_content("cid:x"));
    }

    #[test]
    fn domains_can_be_created_and_queried() {
        let mut rng = StdRng::seed_from_u64(44);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let mut ri = RightsIssuer::new("ri", 384, &mut ca, &mut rng);
        let id = ri.create_domain("family", 4);
        assert!(ri.has_domain(&id));
        assert_eq!(ri.domain_member_count(&id), Some(0));
        assert!(!ri.has_domain(&DomainId::new("other")));
        assert!(!ri.process_leave_domain("nobody", &id));
    }

    #[test]
    fn registration_requires_known_session() {
        let mut rng = StdRng::seed_from_u64(45);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let mut ri = RightsIssuer::new("ri", 384, &mut ca, &mut rng);
        // Forge a request against a session that was never opened.
        let device_keys = RsaKeyPair::generate(384, &mut rng);
        let cert = ca.issue(
            "dev",
            EntityRole::DrmAgent,
            device_keys.public().clone(),
            ValidityPeriod::starting_at(Timestamp::new(0), 1000),
        );
        let request = RegistrationRequest {
            session_id: 999,
            device_id: "dev".into(),
            device_nonce: vec![1; NONCE_LEN],
            request_time: Timestamp::new(5),
            certificate: cert,
            signature: oma_crypto::pss::PssSignature::from_bytes(vec![0; 48]),
        };
        assert_eq!(
            ri.process_registration(&request, Timestamp::new(5)),
            Err(RoapError::UnknownSession)
        );
    }

    #[test]
    fn ro_request_from_unregistered_device_rejected() {
        let mut rng = StdRng::seed_from_u64(46);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let mut ri = RightsIssuer::new("ri", 384, &mut ca, &mut rng);
        let request = RoRequest {
            device_id: "ghost".into(),
            ri_id: "ri".into(),
            content_id: "cid:x".into(),
            domain_id: None,
            device_nonce: vec![0; NONCE_LEN],
            request_time: Timestamp::new(1),
            signature: oma_crypto::pss::PssSignature::from_bytes(vec![0; 48]),
        };
        assert_eq!(
            ri.process_ro_request(&request, Timestamp::new(1)),
            Err(RoapError::DeviceNotRegistered)
        );
    }

    #[test]
    fn issue_domain_ro_requires_known_content_and_domain() {
        let mut rng = StdRng::seed_from_u64(47);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let mut ri = RightsIssuer::new("ri", 384, &mut ca, &mut rng);
        let domain = ri.create_domain("family", 4);
        assert_eq!(
            ri.issue_domain_ro("cid:missing", &domain, Timestamp::new(0)),
            Err(RoapError::UnknownRightsObject)
        );
        let ci = crate::ContentIssuer::new("ci");
        let (dcf, cek) = ci.package(b"bytes", "cid:x", &mut rng);
        ri.add_content(
            "cid:x",
            cek,
            &dcf,
            RightsTemplate::unlimited(Permission::Play),
        );
        assert_eq!(
            ri.issue_domain_ro("cid:x", &DomainId::new("nope"), Timestamp::new(0)),
            Err(RoapError::UnknownDomain)
        );
        let ro = ri
            .issue_domain_ro("cid:x", &domain, Timestamp::new(0))
            .unwrap();
        assert!(ro.is_domain_ro());
        assert!(ro.signature.is_some(), "domain RO signature is mandatory");
    }
}
