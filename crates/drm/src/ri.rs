//! The Rights Issuer: registers devices, sells licenses and manages domains.
//!
//! Since the concurrent-service refactor, all protocol logic lives in the
//! thread-safe [`RiService`]; [`RightsIssuer`] is a thin single-threaded
//! wrapper kept so existing callers (tests, examples, the measured runner in
//! `oma-perf`) keep compiling unchanged. New server-side code — in
//! particular the `oma-load` device-fleet harness — should hold an
//! `Arc<RiService>` directly and call its `&self` handlers from any number
//! of threads.
//!
//! The Rights Issuer's cryptographic work happens on the server side, so its
//! [`CryptoEngine`](oma_crypto::CryptoEngine) trace is not part of the
//! terminal cost model — it exists only so the protocol runs with real
//! cryptography end to end.

use crate::dcf::Dcf;
use crate::domain::DomainId;
use crate::error::DrmError;
use crate::rel::RightsTemplate;
use crate::ro::ProtectedRightsObject;
use crate::roap::{
    DeviceHello, JoinDomainRequest, JoinDomainResponse, RegistrationRequest, RegistrationResponse,
    RiHello, RoRequest, RoResponse, RoapError, ROAP_VERSION,
};
use crate::service::RiService;
use oma_crypto::backend::CryptoBackend;
use oma_crypto::rsa::RsaPublicKey;
use oma_pki::{Certificate, CertificationAuthority, Timestamp};
use rand::RngCore;
use std::sync::Arc;

/// The Rights Issuer actor: a single-threaded facade over [`RiService`].
#[derive(Debug)]
pub struct RightsIssuer {
    service: RiService,
}

impl RightsIssuer {
    /// Creates a Rights Issuer, obtaining its certificate and an initial OCSP
    /// response from `ca`. Server-side cryptography runs on the software
    /// backend; use [`RightsIssuer::with_backend`] to model an accelerated
    /// license server.
    pub fn new<R: RngCore + ?Sized>(
        id: &str,
        modulus_bits: usize,
        ca: &mut CertificationAuthority,
        rng: &mut R,
    ) -> Self {
        RightsIssuer {
            service: RiService::new(id, modulus_bits, ca, rng),
        }
    }

    /// Creates a Rights Issuer whose cryptography executes on `backend`.
    pub fn with_backend<R: RngCore + ?Sized>(
        id: &str,
        modulus_bits: usize,
        ca: &mut CertificationAuthority,
        backend: Arc<dyn CryptoBackend>,
        rng: &mut R,
    ) -> Self {
        RightsIssuer {
            service: RiService::with_backend(id, modulus_bits, ca, backend, rng),
        }
    }

    /// The underlying thread-safe service. Use this (behind an
    /// [`Arc`]) to serve concurrent device traffic.
    pub fn service(&self) -> &RiService {
        &self.service
    }

    /// Consumes the wrapper and returns the thread-safe service, ready to be
    /// shared across worker threads.
    pub fn into_service(self) -> RiService {
        self.service
    }

    /// The Rights Issuer identifier.
    pub fn id(&self) -> &str {
        self.service.id()
    }

    /// The Rights Issuer certificate.
    pub fn certificate(&self) -> &Certificate {
        self.service.certificate()
    }

    /// The Rights Issuer public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        self.service.public_key()
    }

    /// Re-fetches the cached OCSP response for this Rights Issuer's
    /// certificate (a fresh response is required for registration to succeed
    /// if the cached one has become stale).
    pub fn refresh_ocsp(&mut self, ca: &CertificationAuthority, now: Timestamp) {
        self.service.refresh_ocsp(ca, now);
    }

    /// Registers a piece of content: the content encryption key received
    /// from the Content Issuer, the DCF it encrypts (for the hash binding)
    /// and the license template on sale.
    pub fn add_content(
        &mut self,
        content_id: &str,
        cek: [u8; 16],
        dcf: &Dcf,
        template: RightsTemplate,
    ) {
        self.service.add_content(content_id, cek, dcf, template);
    }

    /// Whether the Rights Issuer offers rights for `content_id`.
    pub fn has_content(&self, content_id: &str) -> bool {
        self.service.has_content(content_id)
    }

    /// Whether `device_id` holds a trusted relationship with this RI.
    pub fn is_registered(&self, device_id: &str) -> bool {
        self.service.is_registered(device_id)
    }

    /// Number of registered devices.
    pub fn registered_count(&self) -> usize {
        self.service.registered_count()
    }

    // ----- ROAP: registration -------------------------------------------------

    /// Pass 1 → 2 of registration: answers a `DeviceHello` with an `RiHello`.
    pub fn hello(&mut self, hello: &DeviceHello) -> RiHello {
        self.service.hello(hello)
    }

    /// Pass 3 → 4 of registration: verifies a `RegistrationRequest` and, if
    /// the device checks out, answers with a signed `RegistrationResponse`.
    ///
    /// # Errors
    ///
    /// See [`RiService::process_registration`].
    pub fn process_registration(
        &mut self,
        request: &RegistrationRequest,
        now: Timestamp,
    ) -> Result<RegistrationResponse, RoapError> {
        self.service.process_registration(request, now)
    }

    // ----- ROAP: rights object acquisition -------------------------------------

    /// Handles an `RORequest`, returning a signed `ROResponse` with the
    /// protected Rights Object.
    ///
    /// # Errors
    ///
    /// See [`RiService::process_ro_request`].
    pub fn process_ro_request(
        &mut self,
        request: &RoRequest,
        now: Timestamp,
    ) -> Result<RoResponse, RoapError> {
        self.service.process_ro_request(request, now)
    }

    /// Issues a Domain Rights Object directly (out-of-band distribution to
    /// domain members, e.g. via removable media to an unconnected device).
    ///
    /// # Errors
    ///
    /// See [`RiService::issue_domain_ro`].
    pub fn issue_domain_ro(
        &mut self,
        content_id: &str,
        domain_id: &DomainId,
        now: Timestamp,
    ) -> Result<ProtectedRightsObject, RoapError> {
        self.service.issue_domain_ro(content_id, domain_id, now)
    }

    // ----- domains --------------------------------------------------------------

    /// Creates a domain with a fresh shared key.
    pub fn create_domain(&mut self, domain_id: &str, max_members: usize) -> DomainId {
        self.service.create_domain(domain_id, max_members)
    }

    /// Whether a domain exists.
    pub fn has_domain(&self, domain_id: &DomainId) -> bool {
        self.service.has_domain(domain_id)
    }

    /// Number of members currently registered in `domain_id`.
    pub fn domain_member_count(&self, domain_id: &DomainId) -> Option<usize> {
        self.service.domain_member_count(domain_id)
    }

    /// Handles a `JoinDomainRequest`: adds the device to the domain and
    /// returns the domain key encrypted under the device public key.
    ///
    /// # Errors
    ///
    /// See [`RiService::process_join_domain`].
    pub fn process_join_domain(
        &mut self,
        request: &JoinDomainRequest,
        now: Timestamp,
    ) -> Result<JoinDomainResponse, RoapError> {
        self.service.process_join_domain(request, now)
    }

    /// Removes a device from a domain (leave-domain).
    ///
    /// # Errors
    ///
    /// * [`DrmError::Roap`] with [`RoapError::DeviceNotRegistered`] — the
    ///   device holds no trusted relationship,
    /// * [`DrmError::Roap`] with [`RoapError::UnknownDomain`] — the domain
    ///   does not exist,
    /// * [`DrmError::NotInDomain`] — the device was not a member.
    pub fn process_leave_domain(
        &mut self,
        device_id: &str,
        domain_id: &DomainId,
    ) -> Result<(), DrmError> {
        self.service.process_leave_domain(device_id, domain_id)
    }

    /// Protocol version spoken by this implementation.
    pub fn version(&self) -> &'static str {
        ROAP_VERSION
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::Permission;
    use crate::roap::NONCE_LEN;
    use oma_crypto::rsa::RsaKeyPair;
    use oma_pki::{EntityRole, ValidityPeriod};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_ri_has_certificate_and_ocsp() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let ri = RightsIssuer::new("ri.example.com", 384, &mut ca, &mut rng);
        assert_eq!(ri.id(), "ri.example.com");
        assert_eq!(ri.certificate().role(), EntityRole::RightsIssuer);
        assert_eq!(ri.certificate().subject(), "ri.example.com");
        assert_eq!(ri.registered_count(), 0);
        assert_eq!(ri.version(), "2.0");
        assert_eq!(ri.public_key(), ri.certificate().public_key());
        assert_eq!(ri.service().id(), "ri.example.com");
    }

    #[test]
    fn hello_creates_distinct_sessions() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let mut ri = RightsIssuer::new("ri", 384, &mut ca, &mut rng);
        let h1 = ri.hello(&DeviceHello::new("d1"));
        let h2 = ri.hello(&DeviceHello::new("d2"));
        assert_ne!(h1.session_id, h2.session_id);
        assert_eq!(h1.ri_id, "ri");
        assert!(!h1.ri_nonce.is_empty());
        assert_eq!(h1.trusted_authorities, vec!["cmla".to_string()]);
    }

    #[test]
    fn content_catalogue() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let mut ri = RightsIssuer::new("ri", 384, &mut ca, &mut rng);
        let ci = crate::ContentIssuer::new("ci");
        let (dcf, cek) = ci.package(b"bytes", "cid:x", &mut rng);
        assert!(!ri.has_content("cid:x"));
        ri.add_content(
            "cid:x",
            cek,
            &dcf,
            RightsTemplate::unlimited(Permission::Play),
        );
        assert!(ri.has_content("cid:x"));
    }

    #[test]
    fn domains_can_be_created_and_queried() {
        let mut rng = StdRng::seed_from_u64(44);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let mut ri = RightsIssuer::new("ri", 384, &mut ca, &mut rng);
        let id = ri.create_domain("family", 4);
        assert!(ri.has_domain(&id));
        assert_eq!(ri.domain_member_count(&id), Some(0));
        assert!(!ri.has_domain(&DomainId::new("other")));
        // Unregistered device ids are rejected by the session machine
        // before any domain state is consulted.
        assert_eq!(
            ri.process_leave_domain("nobody", &id),
            Err(DrmError::Roap(RoapError::DeviceNotRegistered))
        );
        let mut agent = crate::DrmAgent::new("dev-1", 384, &mut ca, &mut rng);
        agent
            .register_with(ri.service(), Timestamp::new(10))
            .unwrap();
        assert_eq!(
            ri.process_leave_domain("dev-1", &id),
            Err(DrmError::NotInDomain)
        );
        assert_eq!(
            ri.process_leave_domain("dev-1", &DomainId::new("other")),
            Err(DrmError::Roap(RoapError::UnknownDomain))
        );
    }

    #[test]
    fn registration_requires_known_session() {
        let mut rng = StdRng::seed_from_u64(45);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let mut ri = RightsIssuer::new("ri", 384, &mut ca, &mut rng);
        // Forge a request against a session that was never opened.
        let device_keys = RsaKeyPair::generate(384, &mut rng);
        let cert = ca.issue(
            "dev",
            EntityRole::DrmAgent,
            device_keys.public().clone(),
            ValidityPeriod::starting_at(Timestamp::new(0), 1000),
        );
        let request = RegistrationRequest {
            session_id: 999,
            device_id: "dev".into(),
            device_nonce: vec![1; NONCE_LEN],
            request_time: Timestamp::new(5),
            certificate: cert,
            signature: oma_crypto::pss::PssSignature::from_bytes(vec![0; 48]),
        };
        assert_eq!(
            ri.process_registration(&request, Timestamp::new(5)),
            Err(RoapError::UnknownSession)
        );
    }

    #[test]
    fn ro_request_from_unregistered_device_rejected() {
        let mut rng = StdRng::seed_from_u64(46);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let mut ri = RightsIssuer::new("ri", 384, &mut ca, &mut rng);
        let request = RoRequest {
            device_id: "ghost".into(),
            ri_id: "ri".into(),
            content_id: "cid:x".into(),
            domain_id: None,
            device_nonce: vec![0; NONCE_LEN],
            request_time: Timestamp::new(1),
            signature: oma_crypto::pss::PssSignature::from_bytes(vec![0; 48]),
        };
        assert_eq!(
            ri.process_ro_request(&request, Timestamp::new(1)),
            Err(RoapError::DeviceNotRegistered)
        );
    }

    #[test]
    fn issue_domain_ro_requires_known_content_and_domain() {
        let mut rng = StdRng::seed_from_u64(47);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let mut ri = RightsIssuer::new("ri", 384, &mut ca, &mut rng);
        let domain = ri.create_domain("family", 4);
        assert_eq!(
            ri.issue_domain_ro("cid:missing", &domain, Timestamp::new(0)),
            Err(RoapError::UnknownRightsObject)
        );
        let ci = crate::ContentIssuer::new("ci");
        let (dcf, cek) = ci.package(b"bytes", "cid:x", &mut rng);
        ri.add_content(
            "cid:x",
            cek,
            &dcf,
            RightsTemplate::unlimited(Permission::Play),
        );
        assert_eq!(
            ri.issue_domain_ro("cid:x", &DomainId::new("nope"), Timestamp::new(0)),
            Err(RoapError::UnknownDomain)
        );
        let ro = ri
            .issue_domain_ro("cid:x", &domain, Timestamp::new(0))
            .unwrap();
        assert!(ro.is_domain_ro());
        assert!(ro.signature.is_some(), "domain RO signature is mandatory");
    }
}
