//! The Rights Expression Language (REL): permissions and constraints that
//! govern how protected content may be used.
//!
//! OMA DRM 2 defines the REL in its own specification document; the subset
//! modelled here covers the permission verbs and the constraint types that
//! matter for the paper's use cases (unlimited play for the music track,
//! per-access counting for the ringtone if desired, datetime and interval
//! constraints for expiry scenarios).

use oma_pki::{Timestamp, ValidityPeriod};

/// A usage permission verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Permission {
    /// Render the content as audio/video.
    Play,
    /// Render the content visually (images).
    Display,
    /// Execute the content (applications, e.g. Java games).
    Execute,
    /// Print the content.
    Print,
    /// Export to another DRM system.
    Export,
}

impl Permission {
    /// All permission verbs.
    pub const ALL: [Permission; 5] = [
        Permission::Play,
        Permission::Display,
        Permission::Execute,
        Permission::Print,
        Permission::Export,
    ];

    /// Stable single-byte encoding used in the canonical Rights Object form.
    pub fn code(&self) -> u8 {
        match self {
            Permission::Play => 1,
            Permission::Display => 2,
            Permission::Execute => 3,
            Permission::Print => 4,
            Permission::Export => 5,
        }
    }

    /// REL element name.
    pub fn name(&self) -> &'static str {
        match self {
            Permission::Play => "play",
            Permission::Display => "display",
            Permission::Execute => "execute",
            Permission::Print => "print",
            Permission::Export => "export",
        }
    }
}

impl std::fmt::Display for Permission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A constraint attached to a permission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// No constraint: unlimited use within the RO lifetime.
    Unconstrained,
    /// At most `count` uses.
    Count(u32),
    /// Usable only inside the given absolute time window.
    Datetime(ValidityPeriod),
    /// Usable for `seconds` after the first use.
    Interval(u64),
}

impl Constraint {
    /// Stable byte encoding used in the canonical Rights Object form.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Constraint::Unconstrained => vec![0],
            Constraint::Count(n) => {
                let mut v = vec![1];
                v.extend_from_slice(&n.to_be_bytes());
                v
            }
            Constraint::Datetime(period) => {
                let mut v = vec![2];
                v.extend_from_slice(&period.to_bytes());
                v
            }
            Constraint::Interval(secs) => {
                let mut v = vec![3];
                v.extend_from_slice(&secs.to_be_bytes());
                v
            }
        }
    }
}

/// One `<permission>` element: a verb plus its constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PermissionGrant {
    /// The granted verb.
    pub permission: Permission,
    /// The attached constraint.
    pub constraint: Constraint,
}

/// The full set of grants carried by a Rights Object.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Rights {
    grants: Vec<PermissionGrant>,
}

impl Rights {
    /// An empty agreement (grants nothing).
    pub fn new() -> Self {
        Rights { grants: Vec::new() }
    }

    /// Adds a grant.
    pub fn grant(mut self, permission: Permission, constraint: Constraint) -> Self {
        self.grants.push(PermissionGrant {
            permission,
            constraint,
        });
        self
    }

    /// All grants.
    pub fn grants(&self) -> &[PermissionGrant] {
        &self.grants
    }

    /// Looks up the constraint for `permission`, if granted.
    pub fn constraint_for(&self, permission: Permission) -> Option<Constraint> {
        self.grants
            .iter()
            .find(|g| g.permission == permission)
            .map(|g| g.constraint)
    }

    /// Whether `permission` is granted at all.
    pub fn permits(&self, permission: Permission) -> bool {
        self.constraint_for(permission).is_some()
    }

    /// Canonical byte encoding included in the MAC-protected Rights Object.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.grants.len() * 24);
        out.extend_from_slice(b"<rights>");
        for grant in &self.grants {
            out.push(grant.permission.code());
            out.extend_from_slice(&grant.constraint.to_bytes());
        }
        out.extend_from_slice(b"</rights>");
        out
    }
}

/// A reusable rights template held by the Rights Issuer for a piece of
/// content ("the license on sale").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RightsTemplate {
    rights: Rights,
}

impl RightsTemplate {
    /// A template granting `permission` without constraint.
    pub fn unlimited(permission: Permission) -> Self {
        RightsTemplate {
            rights: Rights::new().grant(permission, Constraint::Unconstrained),
        }
    }

    /// A template granting `permission` at most `count` times.
    pub fn counted(permission: Permission, count: u32) -> Self {
        RightsTemplate {
            rights: Rights::new().grant(permission, Constraint::Count(count)),
        }
    }

    /// A template granting `permission` inside a time window.
    pub fn timed(permission: Permission, window: ValidityPeriod) -> Self {
        RightsTemplate {
            rights: Rights::new().grant(permission, Constraint::Datetime(window)),
        }
    }

    /// A template built from an explicit [`Rights`] value.
    pub fn from_rights(rights: Rights) -> Self {
        RightsTemplate { rights }
    }

    /// The rights this template instantiates.
    pub fn rights(&self) -> &Rights {
        &self.rights
    }
}

/// The mutable usage state the DRM Agent keeps per installed Rights Object
/// (remaining counts, interval anchors). OMA DRM calls this "state
/// information" and requires it to live in integrity-protected storage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UsageState {
    remaining_count: Option<u32>,
    first_use: Option<Timestamp>,
}

impl UsageState {
    /// Initialises state for `rights` (copies initial counts).
    pub fn for_rights(rights: &Rights, permission: Permission) -> Self {
        match rights.constraint_for(permission) {
            Some(Constraint::Count(n)) => UsageState {
                remaining_count: Some(n),
                first_use: None,
            },
            _ => UsageState::default(),
        }
    }

    /// Remaining uses, if count-constrained.
    pub fn remaining_count(&self) -> Option<u32> {
        self.remaining_count
    }

    /// Time of first use, if any.
    pub fn first_use(&self) -> Option<Timestamp> {
        self.first_use
    }

    /// Checks the constraint at `now` and, if permitted, consumes one use.
    ///
    /// # Errors
    ///
    /// Returns `Err(())` when the constraint forbids the access; the state is
    /// left unchanged in that case.
    #[allow(clippy::result_unit_err)]
    pub fn check_and_consume(&mut self, constraint: Constraint, now: Timestamp) -> Result<(), ()> {
        match constraint {
            Constraint::Unconstrained => Ok(()),
            Constraint::Count(_) => {
                let remaining = self.remaining_count.unwrap_or(0);
                if remaining == 0 {
                    return Err(());
                }
                self.remaining_count = Some(remaining - 1);
                Ok(())
            }
            Constraint::Datetime(window) => {
                if window.contains(now) {
                    Ok(())
                } else {
                    Err(())
                }
            }
            Constraint::Interval(seconds) => {
                let anchor = *self.first_use.get_or_insert(now);
                if now.seconds().saturating_sub(anchor.seconds()) <= seconds {
                    Ok(())
                } else {
                    Err(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permission_codes_unique() {
        let mut codes: Vec<u8> = Permission::ALL.iter().map(|p| p.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), Permission::ALL.len());
        assert_eq!(Permission::Play.to_string(), "play");
    }

    #[test]
    fn rights_lookup() {
        let rights = Rights::new()
            .grant(Permission::Play, Constraint::Count(5))
            .grant(Permission::Display, Constraint::Unconstrained);
        assert!(rights.permits(Permission::Play));
        assert!(rights.permits(Permission::Display));
        assert!(!rights.permits(Permission::Print));
        assert_eq!(
            rights.constraint_for(Permission::Play),
            Some(Constraint::Count(5))
        );
        assert_eq!(rights.grants().len(), 2);
    }

    #[test]
    fn canonical_encoding_distinguishes_rights() {
        let a = Rights::new().grant(Permission::Play, Constraint::Count(5));
        let b = Rights::new().grant(Permission::Play, Constraint::Count(6));
        let c = Rights::new().grant(Permission::Display, Constraint::Count(5));
        assert_ne!(a.to_bytes(), b.to_bytes());
        assert_ne!(a.to_bytes(), c.to_bytes());
        assert_eq!(a.to_bytes(), a.to_bytes());
        assert!(Rights::new().to_bytes().len() >= 17);
    }

    #[test]
    fn templates() {
        assert!(RightsTemplate::unlimited(Permission::Play)
            .rights()
            .permits(Permission::Play));
        assert_eq!(
            RightsTemplate::counted(Permission::Play, 3)
                .rights()
                .constraint_for(Permission::Play),
            Some(Constraint::Count(3))
        );
        let window = ValidityPeriod::new(Timestamp::new(0), Timestamp::new(10));
        assert_eq!(
            RightsTemplate::timed(Permission::Display, window)
                .rights()
                .constraint_for(Permission::Display),
            Some(Constraint::Datetime(window))
        );
        let custom = RightsTemplate::from_rights(
            Rights::new().grant(Permission::Print, Constraint::Unconstrained),
        );
        assert!(custom.rights().permits(Permission::Print));
    }

    #[test]
    fn count_constraint_decrements_and_exhausts() {
        let rights = Rights::new().grant(Permission::Play, Constraint::Count(2));
        let mut state = UsageState::for_rights(&rights, Permission::Play);
        let c = rights.constraint_for(Permission::Play).unwrap();
        assert_eq!(state.remaining_count(), Some(2));
        assert!(state.check_and_consume(c, Timestamp::new(0)).is_ok());
        assert!(state.check_and_consume(c, Timestamp::new(1)).is_ok());
        assert_eq!(state.remaining_count(), Some(0));
        assert!(state.check_and_consume(c, Timestamp::new(2)).is_err());
    }

    #[test]
    fn datetime_constraint_enforced() {
        let window = ValidityPeriod::new(Timestamp::new(100), Timestamp::new(200));
        let mut state = UsageState::default();
        let c = Constraint::Datetime(window);
        assert!(state.check_and_consume(c, Timestamp::new(99)).is_err());
        assert!(state.check_and_consume(c, Timestamp::new(150)).is_ok());
        assert!(state.check_and_consume(c, Timestamp::new(201)).is_err());
    }

    #[test]
    fn interval_constraint_anchors_on_first_use() {
        let mut state = UsageState::default();
        let c = Constraint::Interval(50);
        assert!(state.check_and_consume(c, Timestamp::new(1000)).is_ok());
        assert_eq!(state.first_use(), Some(Timestamp::new(1000)));
        assert!(state.check_and_consume(c, Timestamp::new(1050)).is_ok());
        assert!(state.check_and_consume(c, Timestamp::new(1051)).is_err());
    }

    #[test]
    fn unconstrained_never_fails() {
        let mut state = UsageState::default();
        for t in 0..100 {
            assert!(state
                .check_and_consume(Constraint::Unconstrained, Timestamp::new(t))
                .is_ok());
        }
    }
}
