//! The ROAP wire protocol: a canonical, self-describing binary encoding for
//! every ROAP PDU.
//!
//! The paper treats ROAP as a message-passing protocol between a DRM Agent
//! and a Rights Issuer; this module puts those messages on an actual wire.
//! Every PDU is carried in a [`RoapPdu`] envelope with the layout
//!
//! ```text
//! offset  size  field
//! ------  ----  --------------------------------------------------------
//!      0     4  magic "ROAP"
//!      4     1  wire version (currently 1)
//!      5     1  PDU type tag (see the table below)
//!      6     8  session id, big-endian (0 for PDUs outside a session)
//!     14     4  body length, big-endian
//!     18     n  body: the PDU fields, length-prefixed field by field
//! ```
//!
//! | tag | PDU |
//! |----:|-----|
//! | 1 | `DeviceHello` |
//! | 2 | `RiHello` |
//! | 3 | `RegistrationRequest` |
//! | 4 | `RegistrationResponse` |
//! | 5 | `RORequest` |
//! | 6 | `ROResponse` |
//! | 7 | `JoinDomainRequest` |
//! | 8 | `JoinDomainResponse` |
//! | 9 | `LeaveDomainRequest` |
//! | 10 | `Status` (ack / protocol error report) |
//!
//! Versioning rules: a decoder rejects any envelope whose version byte it
//! does not implement with [`RoapError::UnsupportedVersion`] and any type tag
//! it does not know with [`RoapError::UnknownPdu`]; unknown trailing bytes
//! inside a known body are rejected as [`RoapError::Malformed`]. New fields
//! therefore require a version bump — there is no silent skipping.
//!
//! The codec is strictly layered *around* the existing signing encoders
//! (`signed_bytes`, `TbsCertificate::to_bytes`, …): signatures cover the
//! same canonical bytes whether a PDU travelled through [`RoapPdu::encode`]
//! or was passed as an in-process struct, so signature bytes — and the
//! measured crypto cycle counts of the paper's Figures 6/7 — are identical
//! on both paths.
//!
//! Decoding is total: `decode` returns `Err(RoapError)` on every malformed
//! input (truncation, bit flips, oversized length fields, trailing garbage)
//! and never panics; the `wire_codec` test suite fuzzes this property.

use crate::domain::DomainId;
use crate::error::DrmError;
use crate::rel::{Constraint, Permission, Rights};
use crate::ro::{KeyProtection, ProtectedRightsObject, RightsObjectId, RightsObjectPayload};
use crate::roap::{
    DeviceHello, JoinDomainRequest, JoinDomainResponse, RegistrationRequest, RegistrationResponse,
    RiHello, RoRequest, RoResponse, RoapError,
};
use oma_bignum::BigUint;
use oma_crypto::kem::WrappedKeys;
use oma_crypto::pss::PssSignature;
use oma_crypto::rsa::RsaPublicKey;
use oma_crypto::sha1::DIGEST_SIZE;
use oma_pki::ocsp::{CertificateStatus, OcspResponse, TbsOcspResponse};
use oma_pki::{Certificate, EntityRole, TbsCertificate, Timestamp, ValidityPeriod};

/// Envelope magic, the first four bytes of every frame.
pub const WIRE_MAGIC: [u8; 4] = *b"ROAP";

/// Wire format version emitted by this implementation.
pub const WIRE_VERSION: u8 = 1;

/// Fixed size of the envelope header preceding the body.
pub const HEADER_LEN: usize = 18;

/// Upper bound on the body length a decoder accepts. A length field above
/// this is rejected before any allocation happens, so a hostile 4 GiB length
/// prefix costs the server nothing.
pub const MAX_BODY_LEN: usize = 1 << 20;

/// Upper bound on the element count of any encoded list.
const MAX_LIST_LEN: usize = 1 << 12;

const TAG_DEVICE_HELLO: u8 = 1;
const TAG_RI_HELLO: u8 = 2;
const TAG_REGISTRATION_REQUEST: u8 = 3;
const TAG_REGISTRATION_RESPONSE: u8 = 4;
const TAG_RO_REQUEST: u8 = 5;
const TAG_RO_RESPONSE: u8 = 6;
const TAG_JOIN_DOMAIN_REQUEST: u8 = 7;
const TAG_JOIN_DOMAIN_RESPONSE: u8 = 8;
const TAG_LEAVE_DOMAIN_REQUEST: u8 = 9;
const TAG_STATUS: u8 = 10;

/// Wire-level outcome report: the PDU a peer receives when a request was
/// handled without a response payload (`Ok`) or rejected (`Roap`,
/// `NotInDomain`). Wire peers see these stable codes, never Rust enums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoapStatus {
    /// The request was processed successfully (used as the leave-domain ack).
    Ok,
    /// A ROAP protocol failure.
    Roap(RoapError),
    /// The device is not a member of the referenced domain.
    NotInDomain,
    /// The server is overloaded and shed the connection before reading a
    /// request. Nothing about the request was wrong — the peer should back
    /// off and retry. This is the reply an over-capacity server writes
    /// instead of silently accumulating sockets it cannot serve.
    Busy,
    /// The node addressed is not the current primary for the device's
    /// shard — it was demoted (fenced by a newer epoch) or never owned the
    /// shard. The payload is a redirect hint: the shard index whose current
    /// primary the client should re-resolve before retrying. Like
    /// [`RoapStatus::Busy`] this is retryable — nothing about the request
    /// itself was wrong.
    NotPrimary(u32),
}

impl RoapStatus {
    /// Stable single-byte wire code.
    pub fn code(&self) -> u8 {
        match self {
            RoapStatus::Ok => 0,
            RoapStatus::Roap(RoapError::UnknownSession) => 1,
            RoapStatus::Roap(RoapError::SignatureInvalid) => 2,
            RoapStatus::Roap(RoapError::CertificateInvalid) => 3,
            RoapStatus::Roap(RoapError::DeviceNotRegistered) => 4,
            RoapStatus::Roap(RoapError::UnknownRightsObject) => 5,
            RoapStatus::Roap(RoapError::UnknownDomain) => 6,
            RoapStatus::Roap(RoapError::DomainFull) => 7,
            RoapStatus::Roap(RoapError::Malformed) => 8,
            RoapStatus::Roap(RoapError::UnsupportedVersion) => 9,
            RoapStatus::Roap(RoapError::UnknownPdu) => 10,
            RoapStatus::NotInDomain => 11,
            RoapStatus::Busy => 12,
            RoapStatus::NotPrimary(_) => 13,
        }
    }

    /// Decodes a wire code. [`RoapStatus::NotPrimary`] decodes with a zero
    /// redirect hint — the hint travels in extra `Status` body bytes that
    /// only [`RoapPdu::decode`] sees (see [`RoapPdu::encode`]).
    pub fn from_code(code: u8) -> Result<Self, RoapError> {
        Ok(match code {
            0 => RoapStatus::Ok,
            1 => RoapStatus::Roap(RoapError::UnknownSession),
            2 => RoapStatus::Roap(RoapError::SignatureInvalid),
            3 => RoapStatus::Roap(RoapError::CertificateInvalid),
            4 => RoapStatus::Roap(RoapError::DeviceNotRegistered),
            5 => RoapStatus::Roap(RoapError::UnknownRightsObject),
            6 => RoapStatus::Roap(RoapError::UnknownDomain),
            7 => RoapStatus::Roap(RoapError::DomainFull),
            8 => RoapStatus::Roap(RoapError::Malformed),
            9 => RoapStatus::Roap(RoapError::UnsupportedVersion),
            10 => RoapStatus::Roap(RoapError::UnknownPdu),
            11 => RoapStatus::NotInDomain,
            12 => RoapStatus::Busy,
            13 => RoapStatus::NotPrimary(0),
            _ => return Err(RoapError::Malformed),
        })
    }

    /// Converts the status into the client-side result of the request it
    /// answered.
    ///
    /// # Errors
    ///
    /// [`DrmError::Roap`], [`DrmError::NotInDomain`], [`DrmError::Busy`] or
    /// [`DrmError::NotPrimary`] for error statuses.
    pub fn into_result(self) -> Result<(), DrmError> {
        match self {
            RoapStatus::Ok => Ok(()),
            RoapStatus::Roap(e) => Err(DrmError::Roap(e)),
            RoapStatus::NotInDomain => Err(DrmError::NotInDomain),
            RoapStatus::Busy => Err(DrmError::Busy),
            RoapStatus::NotPrimary(shard) => Err(DrmError::NotPrimary(shard)),
        }
    }
}

impl From<&DrmError> for RoapStatus {
    /// Maps a server-side failure onto its wire code. DRM-layer failures
    /// with no wire representation collapse to [`RoapError::Malformed`] —
    /// the server never leaks internal error structure a peer cannot parse.
    fn from(e: &DrmError) -> Self {
        match e {
            DrmError::Roap(e) => RoapStatus::Roap(*e),
            DrmError::NotInDomain => RoapStatus::NotInDomain,
            DrmError::Busy => RoapStatus::Busy,
            DrmError::NotPrimary(shard) => RoapStatus::NotPrimary(*shard),
            _ => RoapStatus::Roap(RoapError::Malformed),
        }
    }
}

impl From<RoapError> for RoapStatus {
    fn from(e: RoapError) -> Self {
        RoapStatus::Roap(e)
    }
}

/// The ROAP PDU envelope: every message of the protocol, tagged and
/// self-describing. [`encode`](RoapPdu::encode) and
/// [`decode`](RoapPdu::decode) are exact inverses for every variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoapPdu {
    /// Registration pass 1.
    DeviceHello(DeviceHello),
    /// Registration pass 2.
    RiHello(RiHello),
    /// Registration pass 3.
    RegistrationRequest(RegistrationRequest),
    /// Registration pass 4.
    RegistrationResponse(RegistrationResponse),
    /// RO acquisition pass 1.
    RoRequest(RoRequest),
    /// RO acquisition pass 2.
    RoResponse(RoResponse),
    /// Domain join pass 1.
    JoinDomainRequest(JoinDomainRequest),
    /// Domain join pass 2.
    JoinDomainResponse(JoinDomainResponse),
    /// Leave-domain request (unsigned, like the in-process API).
    LeaveDomainRequest {
        /// Device leaving the domain.
        device_id: String,
        /// Domain being left.
        domain_id: DomainId,
    },
    /// Ack / error report.
    Status(RoapStatus),
}

impl RoapPdu {
    /// The envelope type tag of this PDU.
    pub fn tag(&self) -> u8 {
        match self {
            RoapPdu::DeviceHello(_) => TAG_DEVICE_HELLO,
            RoapPdu::RiHello(_) => TAG_RI_HELLO,
            RoapPdu::RegistrationRequest(_) => TAG_REGISTRATION_REQUEST,
            RoapPdu::RegistrationResponse(_) => TAG_REGISTRATION_RESPONSE,
            RoapPdu::RoRequest(_) => TAG_RO_REQUEST,
            RoapPdu::RoResponse(_) => TAG_RO_RESPONSE,
            RoapPdu::JoinDomainRequest(_) => TAG_JOIN_DOMAIN_REQUEST,
            RoapPdu::JoinDomainResponse(_) => TAG_JOIN_DOMAIN_RESPONSE,
            RoapPdu::LeaveDomainRequest { .. } => TAG_LEAVE_DOMAIN_REQUEST,
            RoapPdu::Status(_) => TAG_STATUS,
        }
    }

    /// Human-readable PDU name, for logs and error reports.
    pub fn name(&self) -> &'static str {
        match self {
            RoapPdu::DeviceHello(_) => "DeviceHello",
            RoapPdu::RiHello(_) => "RiHello",
            RoapPdu::RegistrationRequest(_) => "RegistrationRequest",
            RoapPdu::RegistrationResponse(_) => "RegistrationResponse",
            RoapPdu::RoRequest(_) => "RORequest",
            RoapPdu::RoResponse(_) => "ROResponse",
            RoapPdu::JoinDomainRequest(_) => "JoinDomainRequest",
            RoapPdu::JoinDomainResponse(_) => "JoinDomainResponse",
            RoapPdu::LeaveDomainRequest { .. } => "LeaveDomainRequest",
            RoapPdu::Status(_) => "Status",
        }
    }

    /// The ROAP session id carried in the envelope header: the registration
    /// session for registration PDUs, 0 for PDUs outside a session.
    pub fn session_id(&self) -> u64 {
        match self {
            RoapPdu::RiHello(h) => h.session_id,
            RoapPdu::RegistrationRequest(r) => r.session_id,
            RoapPdu::RegistrationResponse(r) => r.session_id,
            _ => 0,
        }
    }

    /// The device identity a request PDU names, when it names one.
    /// `None` for responses, triggers and status PDUs — the routing and
    /// tracing layers (cluster sharding, request spans) treat those as
    /// identity-less.
    pub fn device_id(&self) -> Option<&str> {
        match self {
            RoapPdu::DeviceHello(hello) => Some(&hello.device_id),
            RoapPdu::RegistrationRequest(req) => Some(&req.device_id),
            RoapPdu::RoRequest(req) => Some(&req.device_id),
            RoapPdu::JoinDomainRequest(req) => Some(&req.device_id),
            RoapPdu::LeaveDomainRequest { device_id, .. } => Some(device_id),
            _ => None,
        }
    }

    /// Encodes the PDU into one framed envelope.
    ///
    /// Realistic ROAP PDUs are hundreds of bytes to a few KiB; a body that
    /// exceeds [`MAX_BODY_LEN`] would be rejected by every decoder, so
    /// producing one is a bug on the sender side and debug builds assert
    /// against it.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.encode_body();
        debug_assert!(
            body.len() <= MAX_BODY_LEN,
            "{} body of {} bytes exceeds MAX_BODY_LEN; no decoder will accept this frame",
            self.name(),
            body.len()
        );
        let mut out = Vec::with_capacity(HEADER_LEN + body.len());
        out.extend_from_slice(&WIRE_MAGIC);
        out.push(WIRE_VERSION);
        out.push(self.tag());
        out.extend_from_slice(&self.session_id().to_be_bytes());
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes one envelope that must span the whole input.
    ///
    /// # Errors
    ///
    /// [`RoapError::Malformed`] for any structural problem (truncation,
    /// trailing bytes, bad lengths, invalid UTF-8, unknown inner tags),
    /// [`RoapError::UnsupportedVersion`] for a version byte other than
    /// [`WIRE_VERSION`], and [`RoapError::UnknownPdu`] for an unknown type
    /// tag. Never panics.
    pub fn decode(frame: &[u8]) -> Result<Self, RoapError> {
        let (pdu, consumed) = Self::decode_prefix(frame)?;
        if consumed != frame.len() {
            return Err(RoapError::Malformed);
        }
        Ok(pdu)
    }

    /// Decodes one envelope from the front of `stream`, returning the PDU
    /// and the number of bytes it occupied. This is the streaming form used
    /// to split concatenated frames (see [`decode_stream`]).
    ///
    /// # Errors
    ///
    /// See [`RoapPdu::decode`].
    pub fn decode_prefix(stream: &[u8]) -> Result<(Self, usize), RoapError> {
        // One source of truth for the header rules: `frame_len` validates
        // magic, version and the body-length cap. A frame that has not
        // fully arrived is a truncation here, not a wait-for-more.
        let frame_len = match Self::frame_len(stream)? {
            Some(frame_len) if stream.len() >= frame_len => frame_len,
            _ => return Err(RoapError::Malformed),
        };
        let tag = stream[5];
        let session_id = u64::from_be_bytes(stream[6..14].try_into().expect("8 bytes"));
        let mut r = Reader::new(&stream[HEADER_LEN..frame_len]);
        let pdu = Self::decode_body(tag, session_id, &mut r)?;
        r.finish()?;
        // Canonical form: the header session id must be exactly what this
        // PDU re-encodes (0 for sessionless PDUs) — no smuggled bytes.
        if pdu.session_id() != session_id {
            return Err(RoapError::Malformed);
        }
        Ok((pdu, frame_len))
    }

    /// Inspects the first bytes of an incoming byte stream and reports how
    /// long the frame they begin is — the primitive a streaming transport
    /// needs to reassemble frames split across TCP segments (or to find the
    /// boundary between frames coalesced into one segment) *before* the
    /// whole frame has arrived.
    ///
    /// Returns `Ok(None)` while fewer than [`HEADER_LEN`] bytes are
    /// available (read more and retry), and `Ok(Some(total))` once the
    /// header is complete, where `total` is the full frame length including
    /// the header. The caller buffers until `total` bytes are available and
    /// hands them to [`RoapPdu::decode`] / [`RiService::dispatch`].
    ///
    /// [`RiService::dispatch`]: crate::service::RiService::dispatch
    ///
    /// # Errors
    ///
    /// The same header rejections as [`RoapPdu::decode_prefix`]:
    /// [`RoapError::Malformed`] for a bad magic or an oversized length
    /// field, [`RoapError::UnsupportedVersion`] for an unknown version
    /// byte. A streaming peer cannot resynchronise after any of these — the
    /// connection should answer with a `Status` PDU and close.
    pub fn frame_len(prefix: &[u8]) -> Result<Option<usize>, RoapError> {
        if prefix.len() < HEADER_LEN {
            if let Some(checkable) = prefix.get(..4) {
                if checkable != WIRE_MAGIC {
                    return Err(RoapError::Malformed);
                }
            }
            return Ok(None);
        }
        if prefix[..4] != WIRE_MAGIC {
            return Err(RoapError::Malformed);
        }
        if prefix[4] != WIRE_VERSION {
            return Err(RoapError::UnsupportedVersion);
        }
        let body_len = u32::from_be_bytes(prefix[14..18].try_into().expect("4 bytes")) as usize;
        if body_len > MAX_BODY_LEN {
            return Err(RoapError::Malformed);
        }
        Ok(Some(HEADER_LEN + body_len))
    }

    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        match self {
            RoapPdu::DeviceHello(h) => {
                put_str(&mut out, &h.device_id);
                put_str(&mut out, &h.version);
                put_str_list(&mut out, &h.supported_algorithms);
            }
            RoapPdu::RiHello(h) => {
                put_str(&mut out, &h.ri_id);
                put_bytes(&mut out, &h.ri_nonce);
                put_str_list(&mut out, &h.selected_algorithms);
                put_str_list(&mut out, &h.trusted_authorities);
            }
            RoapPdu::RegistrationRequest(r) => {
                put_str(&mut out, &r.device_id);
                put_bytes(&mut out, &r.device_nonce);
                put_timestamp(&mut out, r.request_time);
                put_certificate(&mut out, &r.certificate);
                put_signature(&mut out, &r.signature);
            }
            RoapPdu::RegistrationResponse(r) => {
                put_str(&mut out, &r.ri_id);
                put_bytes(&mut out, &r.device_nonce);
                put_certificate(&mut out, &r.ri_certificate);
                put_ocsp(&mut out, &r.ocsp_response);
                put_signature(&mut out, &r.signature);
            }
            RoapPdu::RoRequest(r) => {
                put_str(&mut out, &r.device_id);
                put_str(&mut out, &r.ri_id);
                put_str(&mut out, &r.content_id);
                match &r.domain_id {
                    None => out.push(0),
                    Some(d) => {
                        out.push(1);
                        put_str(&mut out, d.as_str());
                    }
                }
                put_bytes(&mut out, &r.device_nonce);
                put_timestamp(&mut out, r.request_time);
                put_signature(&mut out, &r.signature);
            }
            RoapPdu::RoResponse(r) => {
                put_str(&mut out, &r.device_id);
                put_str(&mut out, &r.ri_id);
                put_bytes(&mut out, &r.device_nonce);
                put_protected_ro(&mut out, &r.rights_object);
                put_signature(&mut out, &r.signature);
            }
            RoapPdu::JoinDomainRequest(r) => {
                put_str(&mut out, &r.device_id);
                put_str(&mut out, &r.ri_id);
                put_str(&mut out, r.domain_id.as_str());
                put_bytes(&mut out, &r.device_nonce);
                put_timestamp(&mut out, r.request_time);
                put_signature(&mut out, &r.signature);
            }
            RoapPdu::JoinDomainResponse(r) => {
                put_str(&mut out, &r.device_id);
                put_str(&mut out, &r.ri_id);
                put_str(&mut out, r.domain_id.as_str());
                out.extend_from_slice(&r.generation.to_be_bytes());
                put_bytes(&mut out, &r.encrypted_domain_key);
                put_bytes(&mut out, &r.device_nonce);
                put_signature(&mut out, &r.signature);
            }
            RoapPdu::LeaveDomainRequest {
                device_id,
                domain_id,
            } => {
                put_str(&mut out, device_id);
                put_str(&mut out, domain_id.as_str());
            }
            RoapPdu::Status(status) => {
                out.push(status.code());
                // NotPrimary carries its redirect hint after the code byte;
                // every other status body is exactly the code.
                if let RoapStatus::NotPrimary(redirect) = status {
                    out.extend_from_slice(&redirect.to_be_bytes());
                }
            }
        }
        out
    }

    fn decode_body(tag: u8, session_id: u64, r: &mut Reader<'_>) -> Result<Self, RoapError> {
        Ok(match tag {
            TAG_DEVICE_HELLO => RoapPdu::DeviceHello(DeviceHello {
                device_id: r.str()?,
                version: r.str()?,
                supported_algorithms: r.str_list()?,
            }),
            TAG_RI_HELLO => RoapPdu::RiHello(RiHello {
                ri_id: r.str()?,
                session_id,
                ri_nonce: r.bytes()?,
                selected_algorithms: r.str_list()?,
                trusted_authorities: r.str_list()?,
            }),
            TAG_REGISTRATION_REQUEST => RoapPdu::RegistrationRequest(RegistrationRequest {
                session_id,
                device_id: r.str()?,
                device_nonce: r.bytes()?,
                request_time: r.timestamp()?,
                certificate: r.certificate()?,
                signature: r.signature()?,
            }),
            TAG_REGISTRATION_RESPONSE => RoapPdu::RegistrationResponse(RegistrationResponse {
                session_id,
                ri_id: r.str()?,
                device_nonce: r.bytes()?,
                ri_certificate: r.certificate()?,
                ocsp_response: r.ocsp()?,
                signature: r.signature()?,
            }),
            TAG_RO_REQUEST => RoapPdu::RoRequest(RoRequest {
                device_id: r.str()?,
                ri_id: r.str()?,
                content_id: r.str()?,
                domain_id: match r.u8()? {
                    0 => None,
                    1 => Some(DomainId::new(&r.str()?)),
                    _ => return Err(RoapError::Malformed),
                },
                device_nonce: r.bytes()?,
                request_time: r.timestamp()?,
                signature: r.signature()?,
            }),
            TAG_RO_RESPONSE => RoapPdu::RoResponse(RoResponse {
                device_id: r.str()?,
                ri_id: r.str()?,
                device_nonce: r.bytes()?,
                rights_object: r.protected_ro()?,
                signature: r.signature()?,
            }),
            TAG_JOIN_DOMAIN_REQUEST => RoapPdu::JoinDomainRequest(JoinDomainRequest {
                device_id: r.str()?,
                ri_id: r.str()?,
                domain_id: DomainId::new(&r.str()?),
                device_nonce: r.bytes()?,
                request_time: r.timestamp()?,
                signature: r.signature()?,
            }),
            TAG_JOIN_DOMAIN_RESPONSE => RoapPdu::JoinDomainResponse(JoinDomainResponse {
                device_id: r.str()?,
                ri_id: r.str()?,
                domain_id: DomainId::new(&r.str()?),
                generation: r.u32()?,
                encrypted_domain_key: r.bytes()?,
                device_nonce: r.bytes()?,
                signature: r.signature()?,
            }),
            TAG_LEAVE_DOMAIN_REQUEST => RoapPdu::LeaveDomainRequest {
                device_id: r.str()?,
                domain_id: DomainId::new(&r.str()?),
            },
            TAG_STATUS => RoapPdu::Status(match RoapStatus::from_code(r.u8()?)? {
                RoapStatus::NotPrimary(_) => RoapStatus::NotPrimary(r.u32()?),
                status => status,
            }),
            _ => return Err(RoapError::UnknownPdu),
        })
    }
}

/// Splits a stream of concatenated envelopes into PDUs — the inverse of
/// concatenating [`RoapPdu::encode`] outputs, as produced by
/// [`RiService::dispatch_batch`](crate::service::RiService::dispatch_batch).
///
/// # Errors
///
/// See [`RoapPdu::decode`]; the error refers to the first undecodable frame.
pub fn decode_stream(mut stream: &[u8]) -> Result<Vec<RoapPdu>, RoapError> {
    let mut pdus = Vec::new();
    while !stream.is_empty() {
        let (pdu, consumed) = RoapPdu::decode_prefix(stream)?;
        pdus.push(pdu);
        stream = &stream[consumed..];
    }
    Ok(pdus)
}

// ----- field encoders --------------------------------------------------------

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn put_str_list(out: &mut Vec<u8>, list: &[String]) {
    out.extend_from_slice(&(list.len() as u32).to_be_bytes());
    for s in list {
        put_str(out, s);
    }
}

fn put_timestamp(out: &mut Vec<u8>, t: Timestamp) {
    out.extend_from_slice(&t.seconds().to_be_bytes());
}

fn put_signature(out: &mut Vec<u8>, s: &PssSignature) {
    put_bytes(out, s.as_bytes());
}

fn put_public_key(out: &mut Vec<u8>, key: &RsaPublicKey) {
    put_bytes(out, &key.modulus().to_bytes_be());
    put_bytes(out, &key.exponent().to_bytes_be());
}

fn put_certificate(out: &mut Vec<u8>, cert: &Certificate) {
    let tbs = cert.tbs();
    out.extend_from_slice(&tbs.serial.to_be_bytes());
    put_str(out, &tbs.issuer);
    put_str(out, &tbs.subject);
    out.push(tbs.role.code());
    put_public_key(out, &tbs.public_key);
    out.extend_from_slice(&tbs.validity.not_before().seconds().to_be_bytes());
    out.extend_from_slice(&tbs.validity.not_after().seconds().to_be_bytes());
    put_signature(out, cert.signature());
}

fn put_ocsp(out: &mut Vec<u8>, ocsp: &OcspResponse) {
    let tbs = ocsp.tbs();
    put_str(out, &tbs.responder);
    out.extend_from_slice(&tbs.serial.to_be_bytes());
    out.push(tbs.status.code());
    put_timestamp(out, tbs.produced_at);
    put_bytes(out, &tbs.nonce);
    put_signature(out, ocsp.signature());
}

fn put_rights(out: &mut Vec<u8>, rights: &Rights) {
    let grants = rights.grants();
    out.extend_from_slice(&(grants.len() as u32).to_be_bytes());
    for grant in grants {
        out.push(grant.permission.code());
        match grant.constraint {
            Constraint::Unconstrained => out.push(0),
            Constraint::Count(n) => {
                out.push(1);
                out.extend_from_slice(&n.to_be_bytes());
            }
            Constraint::Datetime(window) => {
                out.push(2);
                out.extend_from_slice(&window.not_before().seconds().to_be_bytes());
                out.extend_from_slice(&window.not_after().seconds().to_be_bytes());
            }
            Constraint::Interval(secs) => {
                out.push(3);
                out.extend_from_slice(&secs.to_be_bytes());
            }
        }
    }
}

fn put_protected_ro(out: &mut Vec<u8>, ro: &ProtectedRightsObject) {
    put_str(out, ro.payload.id.as_str());
    put_str(out, &ro.payload.rights_issuer);
    put_str(out, &ro.payload.content_id);
    put_rights(out, &ro.payload.rights);
    out.extend_from_slice(&ro.payload.dcf_hash);
    put_bytes(out, &ro.payload.encrypted_cek);
    put_timestamp(out, ro.payload.issued_at);
    match &ro.key_protection {
        KeyProtection::Device(wrapped) => {
            out.push(0);
            put_bytes(out, &wrapped.c1);
            put_bytes(out, &wrapped.c2);
        }
        KeyProtection::Domain {
            domain_id,
            generation,
            wrapped,
        } => {
            out.push(1);
            put_str(out, domain_id.as_str());
            out.extend_from_slice(&generation.to_be_bytes());
            put_bytes(out, wrapped);
        }
    }
    out.extend_from_slice(&ro.mac);
    match &ro.signature {
        None => out.push(0),
        Some(signature) => {
            out.push(1);
            put_signature(out, signature);
        }
    }
}

// ----- bounded reader --------------------------------------------------------

/// A bounds-checked cursor over one PDU body. Every read validates lengths
/// before touching (or allocating for) the payload, so arbitrary input can
/// never cause a panic or an oversized allocation.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RoapError> {
        if self.buf.len() - self.pos < n {
            return Err(RoapError::Malformed);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn finish(&self) -> Result<(), RoapError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(RoapError::Malformed)
        }
    }

    fn u8(&mut self) -> Result<u8, RoapError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, RoapError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, RoapError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, RoapError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn str(&mut self) -> Result<String, RoapError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| RoapError::Malformed)
    }

    fn str_list(&mut self) -> Result<Vec<String>, RoapError> {
        let count = self.u32()? as usize;
        if count > MAX_LIST_LEN {
            return Err(RoapError::Malformed);
        }
        let mut list = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            list.push(self.str()?);
        }
        Ok(list)
    }

    fn timestamp(&mut self) -> Result<Timestamp, RoapError> {
        Ok(Timestamp::new(self.u64()?))
    }

    fn validity(&mut self) -> Result<ValidityPeriod, RoapError> {
        let not_before = self.timestamp()?;
        let not_after = self.timestamp()?;
        // ValidityPeriod::new asserts ordering; reject instead of panicking.
        if not_after < not_before {
            return Err(RoapError::Malformed);
        }
        Ok(ValidityPeriod::new(not_before, not_after))
    }

    fn signature(&mut self) -> Result<PssSignature, RoapError> {
        Ok(PssSignature::from_bytes(self.bytes()?))
    }

    fn public_key(&mut self) -> Result<RsaPublicKey, RoapError> {
        let modulus = BigUint::from_bytes_be(&self.bytes()?);
        let exponent = BigUint::from_bytes_be(&self.bytes()?);
        Ok(RsaPublicKey::new(modulus, exponent))
    }

    fn role(&mut self) -> Result<EntityRole, RoapError> {
        Ok(match self.u8()? {
            0x01 => EntityRole::CertificationAuthority,
            0x02 => EntityRole::RightsIssuer,
            0x03 => EntityRole::DrmAgent,
            _ => return Err(RoapError::Malformed),
        })
    }

    fn certificate(&mut self) -> Result<Certificate, RoapError> {
        let tbs = TbsCertificate {
            serial: self.u64()?,
            issuer: self.str()?,
            subject: self.str()?,
            role: self.role()?,
            public_key: self.public_key()?,
            validity: self.validity()?,
        };
        let signature = self.signature()?;
        Ok(Certificate::new(tbs, signature))
    }

    fn ocsp(&mut self) -> Result<OcspResponse, RoapError> {
        let tbs = TbsOcspResponse {
            responder: self.str()?,
            serial: self.u64()?,
            status: match self.u8()? {
                0x00 => CertificateStatus::Good,
                0x01 => CertificateStatus::Revoked,
                0x02 => CertificateStatus::Unknown,
                _ => return Err(RoapError::Malformed),
            },
            produced_at: self.timestamp()?,
            nonce: self.bytes()?,
        };
        let signature = self.signature()?;
        Ok(OcspResponse::new(tbs, signature))
    }

    fn permission(&mut self) -> Result<Permission, RoapError> {
        Ok(match self.u8()? {
            1 => Permission::Play,
            2 => Permission::Display,
            3 => Permission::Execute,
            4 => Permission::Print,
            5 => Permission::Export,
            _ => return Err(RoapError::Malformed),
        })
    }

    fn constraint(&mut self) -> Result<Constraint, RoapError> {
        Ok(match self.u8()? {
            0 => Constraint::Unconstrained,
            1 => Constraint::Count(self.u32()?),
            2 => Constraint::Datetime(self.validity()?),
            3 => Constraint::Interval(self.u64()?),
            _ => return Err(RoapError::Malformed),
        })
    }

    fn rights(&mut self) -> Result<Rights, RoapError> {
        let count = self.u32()? as usize;
        if count > MAX_LIST_LEN {
            return Err(RoapError::Malformed);
        }
        let mut rights = Rights::new();
        for _ in 0..count {
            let permission = self.permission()?;
            let constraint = self.constraint()?;
            rights = rights.grant(permission, constraint);
        }
        Ok(rights)
    }

    fn digest(&mut self) -> Result<[u8; DIGEST_SIZE], RoapError> {
        Ok(self.take(DIGEST_SIZE)?.try_into().expect("digest size"))
    }

    fn protected_ro(&mut self) -> Result<ProtectedRightsObject, RoapError> {
        let payload = RightsObjectPayload {
            id: RightsObjectId::new(&self.str()?),
            rights_issuer: self.str()?,
            content_id: self.str()?,
            rights: self.rights()?,
            dcf_hash: self.digest()?,
            encrypted_cek: self.bytes()?,
            issued_at: self.timestamp()?,
        };
        let key_protection = match self.u8()? {
            0 => KeyProtection::Device(WrappedKeys {
                c1: self.bytes()?,
                c2: self.bytes()?,
            }),
            1 => KeyProtection::Domain {
                domain_id: DomainId::new(&self.str()?),
                generation: self.u32()?,
                wrapped: self.bytes()?,
            },
            _ => return Err(RoapError::Malformed),
        };
        let mac = self.digest()?;
        let signature = match self.u8()? {
            0 => None,
            1 => Some(self.signature()?),
            _ => return Err(RoapError::Malformed),
        };
        Ok(ProtectedRightsObject {
            payload,
            key_protection,
            mac,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hello_pdu() -> RoapPdu {
        RoapPdu::DeviceHello(DeviceHello::new("dev-1"))
    }

    #[test]
    fn envelope_roundtrip_and_header_layout() {
        let pdu = hello_pdu();
        let frame = pdu.encode();
        assert_eq!(&frame[..4], b"ROAP");
        assert_eq!(frame[4], WIRE_VERSION);
        assert_eq!(frame[5], TAG_DEVICE_HELLO);
        assert_eq!(RoapPdu::decode(&frame).unwrap(), pdu);
    }

    #[test]
    fn session_id_travels_in_the_header() {
        let pdu = RoapPdu::RiHello(RiHello {
            ri_id: "ri".into(),
            session_id: 0xdead_beef,
            ri_nonce: vec![7; 14],
            selected_algorithms: vec!["SHA-1".into()],
            trusted_authorities: vec!["cmla".into()],
        });
        let frame = pdu.encode();
        assert_eq!(
            u64::from_be_bytes(frame[6..14].try_into().unwrap()),
            0xdead_beef
        );
        assert_eq!(RoapPdu::decode(&frame).unwrap(), pdu);
    }

    #[test]
    fn frame_len_reassembles_from_any_prefix() {
        let frame = hello_pdu().encode();
        // Every strict prefix of the header asks for more bytes; a complete
        // header names the full frame length.
        for cut in 0..HEADER_LEN {
            assert_eq!(RoapPdu::frame_len(&frame[..cut]), Ok(None), "cut {cut}");
        }
        for cut in HEADER_LEN..=frame.len() {
            assert_eq!(RoapPdu::frame_len(&frame[..cut]), Ok(Some(frame.len())));
        }
        // Garbage is rejected as soon as the magic is readable, well before
        // a full header arrives.
        assert_eq!(
            RoapPdu::frame_len(b"HTTP"),
            Err(RoapError::Malformed),
            "wrong magic"
        );
        let mut wrong_version = frame.clone();
        wrong_version[4] = 9;
        assert_eq!(
            RoapPdu::frame_len(&wrong_version),
            Err(RoapError::UnsupportedVersion)
        );
        let mut hostile_len = frame;
        hostile_len[14..18].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(RoapPdu::frame_len(&hostile_len), Err(RoapError::Malformed));
    }

    #[test]
    fn nonzero_session_on_sessionless_pdu_rejected() {
        let mut frame = hello_pdu().encode();
        frame[13] = 1;
        assert_eq!(RoapPdu::decode(&frame), Err(RoapError::Malformed));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut frame = hello_pdu().encode();
        frame.push(0);
        assert_eq!(RoapPdu::decode(&frame), Err(RoapError::Malformed));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut frame = hello_pdu().encode();
        frame[4] = 2;
        assert_eq!(RoapPdu::decode(&frame), Err(RoapError::UnsupportedVersion));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut frame = hello_pdu().encode();
        frame[5] = 0xee;
        assert_eq!(RoapPdu::decode(&frame), Err(RoapError::UnknownPdu));
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut frame = hello_pdu().encode();
        let huge = (MAX_BODY_LEN as u32 + 1).to_be_bytes();
        frame[14..18].copy_from_slice(&huge);
        assert_eq!(RoapPdu::decode(&frame), Err(RoapError::Malformed));
    }

    #[test]
    fn status_codes_roundtrip() {
        let statuses = [
            RoapStatus::Ok,
            RoapStatus::NotInDomain,
            RoapStatus::Busy,
            RoapStatus::Roap(RoapError::UnknownSession),
            RoapStatus::Roap(RoapError::SignatureInvalid),
            RoapStatus::Roap(RoapError::CertificateInvalid),
            RoapStatus::Roap(RoapError::DeviceNotRegistered),
            RoapStatus::Roap(RoapError::UnknownRightsObject),
            RoapStatus::Roap(RoapError::UnknownDomain),
            RoapStatus::Roap(RoapError::DomainFull),
            RoapStatus::Roap(RoapError::Malformed),
            RoapStatus::Roap(RoapError::UnsupportedVersion),
            RoapStatus::Roap(RoapError::UnknownPdu),
            RoapStatus::NotPrimary(0),
        ];
        let mut codes: Vec<u8> = statuses.iter().map(RoapStatus::code).collect();
        for status in statuses {
            assert_eq!(RoapStatus::from_code(status.code()), Ok(status));
        }
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 14, "status codes are distinct");
        assert_eq!(RoapStatus::from_code(200), Err(RoapError::Malformed));
    }

    #[test]
    fn not_primary_redirect_hint_rides_the_status_body() {
        let pdu = RoapPdu::Status(RoapStatus::NotPrimary(7));
        let frame = pdu.encode();
        assert_eq!(RoapPdu::decode(&frame).unwrap(), pdu);
        // The hint is mandatory: a bare code-13 body is a truncated frame.
        let bare = &frame[..frame.len() - 4];
        let mut truncated = bare.to_vec();
        let body_len = (truncated.len() - HEADER_LEN) as u32;
        truncated[14..18].copy_from_slice(&body_len.to_be_bytes());
        assert_eq!(RoapPdu::decode(&truncated), Err(RoapError::Malformed));
        assert_eq!(
            RoapStatus::NotPrimary(7).into_result(),
            Err(DrmError::NotPrimary(7))
        );
        assert_eq!(
            RoapStatus::from(&DrmError::NotPrimary(7)),
            RoapStatus::NotPrimary(7)
        );
    }

    #[test]
    fn status_into_result() {
        assert_eq!(RoapStatus::Ok.into_result(), Ok(()));
        assert_eq!(
            RoapStatus::NotInDomain.into_result(),
            Err(DrmError::NotInDomain)
        );
        assert_eq!(
            RoapStatus::Roap(RoapError::DomainFull).into_result(),
            Err(DrmError::Roap(RoapError::DomainFull))
        );
        assert_eq!(RoapStatus::Busy.into_result(), Err(DrmError::Busy));
        assert_eq!(RoapStatus::from(&DrmError::Busy), RoapStatus::Busy);
    }

    #[test]
    fn decode_stream_splits_concatenated_frames() {
        let a = hello_pdu();
        let b = RoapPdu::Status(RoapStatus::Ok);
        let mut stream = a.encode();
        stream.extend_from_slice(&b.encode());
        assert_eq!(decode_stream(&stream).unwrap(), vec![a, b]);
        assert!(decode_stream(&stream[..stream.len() - 1]).is_err());
        assert_eq!(decode_stream(&[]).unwrap(), Vec::<RoapPdu>::new());
    }
}
