//! The Rights Object Acquisition Protocol (ROAP) message set.
//!
//! ROAP is the communication protocol between DRM Agent and Rights Issuer.
//! Modelled here are the 4-pass registration protocol (`DeviceHello`,
//! `RiHello`, `RegistrationRequest`, `RegistrationResponse`), the 2-pass
//! Rights Object acquisition protocol (`RoRequest`, `RoResponse`) and the
//! 2-pass domain join protocol (`JoinDomainRequest`, `JoinDomainResponse`).
//!
//! Every signed message exposes a canonical `signed_bytes()` encoding — the
//! exact bytes the sender signs and the receiver hashes — so that realistic
//! message sizes feed the hashing cost of the performance model.

use crate::domain::DomainId;
use crate::ro::{ProtectedRightsObject, RightsObjectId};
use oma_crypto::pss::PssSignature;
use oma_crypto::CryptoEngine;
use oma_pki::ocsp::OcspResponse;
use oma_pki::{Certificate, Timestamp};
use std::error::Error;
use std::fmt;

/// ROAP protocol version implemented by this crate.
pub const ROAP_VERSION: &str = "2.0";

/// Length in bytes of ROAP nonces.
pub const NONCE_LEN: usize = 14;

/// Protocol-level failures a Rights Issuer (or Agent) can signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RoapError {
    /// The message referenced an unknown or expired session.
    UnknownSession,
    /// A message signature did not verify.
    SignatureInvalid,
    /// The peer certificate failed validation.
    CertificateInvalid,
    /// The device is not registered with this Rights Issuer.
    DeviceNotRegistered,
    /// The requested Rights Object / content is unknown.
    UnknownRightsObject,
    /// The requested domain is unknown.
    UnknownDomain,
    /// The domain has reached its maximum number of members.
    DomainFull,
    /// The message was malformed or referenced mismatching identities.
    Malformed,
    /// The wire envelope carried a protocol version this peer does not speak.
    UnsupportedVersion,
    /// The wire envelope carried a PDU type this peer does not know.
    UnknownPdu,
}

impl fmt::Display for RoapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RoapError::UnknownSession => "unknown roap session",
            RoapError::SignatureInvalid => "roap message signature invalid",
            RoapError::CertificateInvalid => "peer certificate invalid",
            RoapError::DeviceNotRegistered => "device not registered",
            RoapError::UnknownRightsObject => "unknown rights object or content",
            RoapError::UnknownDomain => "unknown domain",
            RoapError::DomainFull => "domain is full",
            RoapError::Malformed => "malformed roap message",
            RoapError::UnsupportedVersion => "unsupported roap wire version",
            RoapError::UnknownPdu => "unknown roap pdu type",
        };
        f.write_str(s)
    }
}

impl Error for RoapError {}

fn push_field(out: &mut Vec<u8>, name: &str, value: &[u8]) {
    out.push(b'<');
    out.extend_from_slice(name.as_bytes());
    out.push(b'>');
    out.extend_from_slice(&(value.len() as u32).to_be_bytes());
    out.extend_from_slice(value);
}

/// Pass 1: the Device advertises itself and its capabilities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceHello {
    /// Device identifier (hash of its public key in the real standard).
    pub device_id: String,
    /// Protocol version.
    pub version: String,
    /// Algorithm suites the device supports. The mandatory suite of §2.4.5
    /// is always present.
    pub supported_algorithms: Vec<String>,
}

impl DeviceHello {
    /// A hello advertising the mandatory algorithm suite.
    pub fn new(device_id: &str) -> Self {
        DeviceHello {
            device_id: device_id.to_string(),
            version: ROAP_VERSION.to_string(),
            supported_algorithms: vec![
                "SHA-1".into(),
                "HMAC-SHA-1".into(),
                "AES-128-CBC".into(),
                "AES-128-WRAP".into(),
                "RSA-PSS".into(),
                "RSA-1024".into(),
                "KDF2".into(),
            ],
        }
    }

    /// Approximate on-the-wire size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.device_id.len()
            + self.version.len()
            + self
                .supported_algorithms
                .iter()
                .map(String::len)
                .sum::<usize>()
            + 32
    }
}

/// Pass 2: the Rights Issuer answers with its identity and a session id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RiHello {
    /// Rights Issuer identifier.
    pub ri_id: String,
    /// Session identifier the device must echo in the RegistrationRequest.
    pub session_id: u64,
    /// Nonce chosen by the Rights Issuer.
    pub ri_nonce: Vec<u8>,
    /// The algorithm suite selected for the session.
    pub selected_algorithms: Vec<String>,
    /// Trust anchors (CA names) the Rights Issuer accepts.
    pub trusted_authorities: Vec<String>,
}

/// Pass 3: the Device requests registration, signed with its private key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistrationRequest {
    /// Session from the RiHello.
    pub session_id: u64,
    /// Device identity.
    pub device_id: String,
    /// Fresh device nonce.
    pub device_nonce: Vec<u8>,
    /// Request time, for replay detection.
    pub request_time: Timestamp,
    /// The device certificate chain (single certificate in this model).
    pub certificate: Certificate,
    /// Device signature over [`RegistrationRequest::signed_bytes`].
    pub signature: PssSignature,
}

impl RegistrationRequest {
    /// The canonical bytes covered by the device signature.
    pub fn signed_bytes(
        session_id: u64,
        device_id: &str,
        device_nonce: &[u8],
        request_time: Timestamp,
        certificate: &Certificate,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(512);
        out.extend_from_slice(b"roap:RegistrationRequest\n");
        out.extend_from_slice(&session_id.to_be_bytes());
        push_field(&mut out, "deviceID", device_id.as_bytes());
        push_field(&mut out, "nonce", device_nonce);
        out.extend_from_slice(&request_time.to_bytes());
        push_field(&mut out, "certificate", &certificate.tbs().to_bytes());
        out
    }

    /// Approximate on-the-wire size in bytes.
    pub fn encoded_len(&self) -> usize {
        Self::signed_bytes(
            self.session_id,
            &self.device_id,
            &self.device_nonce,
            self.request_time,
            &self.certificate,
        )
        .len()
            + self.certificate.signature().len()
            + self.signature.len()
    }
}

/// Pass 4: the Rights Issuer accepts the registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistrationResponse {
    /// Echoed session.
    pub session_id: u64,
    /// Rights Issuer identity.
    pub ri_id: String,
    /// Echo of the device nonce.
    pub device_nonce: Vec<u8>,
    /// The Rights Issuer certificate.
    pub ri_certificate: Certificate,
    /// A current OCSP response proving the RI certificate is not revoked.
    pub ocsp_response: OcspResponse,
    /// Rights Issuer signature over [`RegistrationResponse::signed_bytes`].
    pub signature: PssSignature,
}

impl RegistrationResponse {
    /// The canonical bytes covered by the Rights Issuer signature.
    pub fn signed_bytes(
        session_id: u64,
        ri_id: &str,
        device_nonce: &[u8],
        ri_certificate: &Certificate,
        ocsp_response: &OcspResponse,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(1024);
        out.extend_from_slice(b"roap:RegistrationResponse\n");
        out.extend_from_slice(&session_id.to_be_bytes());
        push_field(&mut out, "riID", ri_id.as_bytes());
        push_field(&mut out, "nonce", device_nonce);
        push_field(&mut out, "certificate", &ri_certificate.tbs().to_bytes());
        push_field(&mut out, "ocsp", &ocsp_response.tbs().to_bytes());
        out
    }

    /// Approximate on-the-wire size in bytes.
    pub fn encoded_len(&self) -> usize {
        Self::signed_bytes(
            self.session_id,
            &self.ri_id,
            &self.device_nonce,
            &self.ri_certificate,
            &self.ocsp_response,
        )
        .len()
            + self.ri_certificate.signature().len()
            + self.ocsp_response.signature().len()
            + self.signature.len()
    }
}

/// First pass of RO acquisition: the Device asks for a license.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoRequest {
    /// Device identity.
    pub device_id: String,
    /// Rights Issuer identity.
    pub ri_id: String,
    /// Content the device wants a license for.
    pub content_id: String,
    /// Optional domain the Rights Object should target.
    pub domain_id: Option<DomainId>,
    /// Fresh device nonce.
    pub device_nonce: Vec<u8>,
    /// Request time.
    pub request_time: Timestamp,
    /// Device signature over [`RoRequest::signed_bytes`].
    pub signature: PssSignature,
}

impl RoRequest {
    /// The canonical bytes covered by the device signature.
    pub fn signed_bytes(
        device_id: &str,
        ri_id: &str,
        content_id: &str,
        domain_id: Option<&DomainId>,
        device_nonce: &[u8],
        request_time: Timestamp,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(b"roap:RORequest\n");
        push_field(&mut out, "deviceID", device_id.as_bytes());
        push_field(&mut out, "riID", ri_id.as_bytes());
        push_field(&mut out, "contentID", content_id.as_bytes());
        if let Some(domain) = domain_id {
            push_field(&mut out, "domainID", domain.as_str().as_bytes());
        }
        push_field(&mut out, "nonce", device_nonce);
        out.extend_from_slice(&request_time.to_bytes());
        out
    }

    /// Approximate on-the-wire size in bytes.
    pub fn encoded_len(&self) -> usize {
        Self::signed_bytes(
            &self.device_id,
            &self.ri_id,
            &self.content_id,
            self.domain_id.as_ref(),
            &self.device_nonce,
            self.request_time,
        )
        .len()
            + self.signature.len()
    }
}

/// Second pass of RO acquisition: the Rights Issuer delivers the license.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoResponse {
    /// Device identity.
    pub device_id: String,
    /// Rights Issuer identity.
    pub ri_id: String,
    /// Echo of the device nonce.
    pub device_nonce: Vec<u8>,
    /// The protected Rights Object.
    pub rights_object: ProtectedRightsObject,
    /// Rights Issuer signature over [`RoResponse::signed_bytes`].
    pub signature: PssSignature,
}

impl RoResponse {
    /// The canonical bytes covered by the Rights Issuer signature.
    pub fn signed_bytes(
        device_id: &str,
        ri_id: &str,
        device_nonce: &[u8],
        rights_object: &ProtectedRightsObject,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(1024);
        out.extend_from_slice(b"roap:ROResponse\n");
        push_field(&mut out, "deviceID", device_id.as_bytes());
        push_field(&mut out, "riID", ri_id.as_bytes());
        push_field(&mut out, "nonce", device_nonce);
        push_field(&mut out, "roPayload", &rights_object.payload.to_bytes());
        push_field(&mut out, "mac", &rights_object.mac);
        out
    }

    /// The Rights Object identifier carried in this response.
    pub fn ro_id(&self) -> &RightsObjectId {
        self.rights_object.id()
    }

    /// Agent-side verification of the response: checks the nonce echo and
    /// the Rights Issuer signature over [`RoResponse::signed_bytes`]. This is
    /// the check the DRM Agent runs before it trusts a delivered Rights
    /// Object; it is exposed so adversarial tests can exercise it against
    /// tampered responses directly.
    ///
    /// # Errors
    ///
    /// * [`RoapError::Malformed`] — the device nonce does not echo
    ///   `expected_nonce`,
    /// * [`RoapError::SignatureInvalid`] — the signature does not verify
    ///   under `ri_certificate`.
    pub fn verify(
        &self,
        engine: &CryptoEngine,
        ri_certificate: &Certificate,
        expected_nonce: &[u8],
    ) -> Result<(), RoapError> {
        if self.device_nonce != expected_nonce {
            return Err(RoapError::Malformed);
        }
        let signed = Self::signed_bytes(
            &self.device_id,
            &self.ri_id,
            &self.device_nonce,
            &self.rights_object,
        );
        if !engine.pss_verify(ri_certificate.public_key(), &signed, &self.signature) {
            return Err(RoapError::SignatureInvalid);
        }
        Ok(())
    }

    /// Approximate on-the-wire size in bytes.
    pub fn encoded_len(&self) -> usize {
        Self::signed_bytes(
            &self.device_id,
            &self.ri_id,
            &self.device_nonce,
            &self.rights_object,
        )
        .len()
            + self.rights_object.key_protection.encoded_len()
            + self.signature.len()
    }
}

/// Request to join a domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinDomainRequest {
    /// Device identity.
    pub device_id: String,
    /// Rights Issuer identity.
    pub ri_id: String,
    /// Domain to join.
    pub domain_id: DomainId,
    /// Fresh device nonce.
    pub device_nonce: Vec<u8>,
    /// Request time.
    pub request_time: Timestamp,
    /// Device signature over [`JoinDomainRequest::signed_bytes`].
    pub signature: PssSignature,
}

impl JoinDomainRequest {
    /// The canonical bytes covered by the device signature.
    pub fn signed_bytes(
        device_id: &str,
        ri_id: &str,
        domain_id: &DomainId,
        device_nonce: &[u8],
        request_time: Timestamp,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(b"roap:JoinDomainRequest\n");
        push_field(&mut out, "deviceID", device_id.as_bytes());
        push_field(&mut out, "riID", ri_id.as_bytes());
        push_field(&mut out, "domainID", domain_id.as_str().as_bytes());
        push_field(&mut out, "nonce", device_nonce);
        out.extend_from_slice(&request_time.to_bytes());
        out
    }
}

/// Response carrying the (device-encrypted) domain key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinDomainResponse {
    /// Device identity.
    pub device_id: String,
    /// Rights Issuer identity.
    pub ri_id: String,
    /// Domain joined.
    pub domain_id: DomainId,
    /// Domain-key generation delivered.
    pub generation: u32,
    /// The 128-bit domain key, RSA-encrypted to the device public key.
    pub encrypted_domain_key: Vec<u8>,
    /// Echo of the device nonce.
    pub device_nonce: Vec<u8>,
    /// Rights Issuer signature over [`JoinDomainResponse::signed_bytes`].
    pub signature: PssSignature,
}

impl JoinDomainResponse {
    /// The canonical bytes covered by the Rights Issuer signature.
    pub fn signed_bytes(
        device_id: &str,
        ri_id: &str,
        domain_id: &DomainId,
        generation: u32,
        encrypted_domain_key: &[u8],
        device_nonce: &[u8],
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(512);
        out.extend_from_slice(b"roap:JoinDomainResponse\n");
        push_field(&mut out, "deviceID", device_id.as_bytes());
        push_field(&mut out, "riID", ri_id.as_bytes());
        push_field(&mut out, "domainID", domain_id.as_str().as_bytes());
        out.extend_from_slice(&generation.to_be_bytes());
        push_field(&mut out, "domainKey", encrypted_domain_key);
        push_field(&mut out, "nonce", device_nonce);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_hello_advertises_mandatory_suite() {
        let hello = DeviceHello::new("device-1");
        assert_eq!(hello.version, ROAP_VERSION);
        assert!(hello
            .supported_algorithms
            .iter()
            .any(|a| a == "AES-128-WRAP"));
        assert!(hello.encoded_len() > hello.device_id.len());
    }

    #[test]
    fn signed_bytes_depend_on_all_fields() {
        let base = RoRequest::signed_bytes("d", "r", "cid:x", None, &[1, 2], Timestamp::new(5));
        assert_ne!(
            RoRequest::signed_bytes("d", "r", "cid:y", None, &[1, 2], Timestamp::new(5)),
            base
        );
        assert_ne!(
            RoRequest::signed_bytes("d", "r", "cid:x", None, &[1, 3], Timestamp::new(5)),
            base
        );
        assert_ne!(
            RoRequest::signed_bytes("d", "r", "cid:x", None, &[1, 2], Timestamp::new(6)),
            base
        );
        let with_domain = RoRequest::signed_bytes(
            "d",
            "r",
            "cid:x",
            Some(&DomainId::new("dom")),
            &[1, 2],
            Timestamp::new(5),
        );
        assert_ne!(with_domain, base);
    }

    #[test]
    fn join_domain_bytes_include_generation() {
        let a = JoinDomainResponse::signed_bytes("d", "r", &DomainId::new("x"), 0, &[9], &[1]);
        let b = JoinDomainResponse::signed_bytes("d", "r", &DomainId::new("x"), 1, &[9], &[1]);
        assert_ne!(a, b);
    }

    #[test]
    fn roap_error_display() {
        for e in [
            RoapError::UnknownSession,
            RoapError::SignatureInvalid,
            RoapError::CertificateInvalid,
            RoapError::DeviceNotRegistered,
            RoapError::UnknownRightsObject,
            RoapError::UnknownDomain,
            RoapError::DomainFull,
            RoapError::Malformed,
            RoapError::UnsupportedVersion,
            RoapError::UnknownPdu,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
