//! The DRM Agent: the trusted logical entity inside the user's terminal.
//!
//! The agent drives the four phases of the consumption life-cycle and is the
//! only actor whose cryptographic footprint matters for the paper's cost
//! model. Every operation runs through the agent's instrumented
//! [`CryptoEngine`]; callers (in particular `oma-perf`) snapshot the engine
//! trace around each phase to obtain the per-phase operation lists.

use crate::client::{RoapClient, RoapTransport};
use crate::dcf::Dcf;
use crate::domain::DomainId;
use crate::error::DrmError;
use crate::rel::Permission;
use crate::ro::{KeyProtection, ProtectedRightsObject, RightsObjectId};
use crate::roap::{
    DeviceHello, JoinDomainRequest, JoinDomainResponse, RegistrationRequest, RegistrationResponse,
    RiHello, RoRequest, RoResponse, RoapError, NONCE_LEN,
};
use crate::service::RiService;
use crate::session::{AgentEvent, AgentSessionState};
use crate::storage::{DeviceStorage, InstalledRightsObject};
use oma_crypto::backend::{CryptoBackend, SoftwareBackend};
use oma_crypto::rsa::RsaKeyPair;
use oma_crypto::CryptoEngine;
use oma_pki::{
    verify::verify_certificate_role, Certificate, CertificationAuthority, EntityRole, Timestamp,
    ValidityPeriod,
};
use rand::RngCore;
use std::collections::HashMap;
use std::sync::Arc;

/// Maximum age of an OCSP response the agent accepts (one week).
pub const OCSP_MAX_AGE_SECONDS: u64 = 7 * 24 * 3600;

use crate::CERT_VALIDITY_SECONDS;

/// The trusted relationship a DRM Agent keeps per Rights Issuer after a
/// successful registration ("RI Context" in the standard).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RiContext {
    /// Rights Issuer identifier.
    pub ri_id: String,
    /// The verified Rights Issuer certificate.
    pub ri_certificate: Certificate,
    /// When the registration completed.
    pub registered_at: Timestamp,
    /// The ROAP session id used during registration.
    pub session_id: u64,
}

/// The DRM Agent actor.
#[derive(Debug)]
pub struct DrmAgent {
    device_id: String,
    keys: RsaKeyPair,
    certificate: Certificate,
    ca_root: Certificate,
    engine: CryptoEngine,
    storage: DeviceStorage,
    ri_contexts: HashMap<String, RiContext>,
}

impl DrmAgent {
    /// Creates a DRM Agent: generates the device RSA key pair and the
    /// device storage key `K_DEV`, and obtains a device certificate from
    /// `ca`. The agent's cryptography runs on the pure-software backend;
    /// use [`DrmAgent::with_backend`] to model a terminal with hardware
    /// crypto macros.
    pub fn new<R: RngCore + ?Sized>(
        device_id: &str,
        modulus_bits: usize,
        ca: &mut CertificationAuthority,
        rng: &mut R,
    ) -> Self {
        Self::with_backend(
            device_id,
            modulus_bits,
            ca,
            Arc::new(SoftwareBackend::new()),
            rng,
        )
    }

    /// Creates a DRM Agent whose cryptography executes on `backend` — the
    /// terminal architecture under evaluation. `oma-perf` maps each
    /// `Architecture` variant onto a backend and measures the protocol on
    /// it.
    pub fn with_backend<R: RngCore + ?Sized>(
        device_id: &str,
        modulus_bits: usize,
        ca: &mut CertificationAuthority,
        backend: Arc<dyn CryptoBackend>,
        rng: &mut R,
    ) -> Self {
        let keys = RsaKeyPair::generate(modulus_bits, rng);
        let certificate = ca.issue(
            device_id,
            EntityRole::DrmAgent,
            keys.public().clone(),
            ValidityPeriod::starting_at(Timestamp::new(0), CERT_VALIDITY_SECONDS),
        );
        let ca_root = ca.root_certificate().clone();
        Self::with_credentials(device_id, keys, certificate, ca_root, backend, rng)
    }

    /// Assembles an agent from pre-provisioned credentials: a key pair and a
    /// matching device certificate obtained earlier. This lets callers
    /// generate the (expensive) RSA key pair outside any lock guarding a
    /// shared [`CertificationAuthority`] — the `oma-load` fleet harness
    /// provisions its devices this way so worker threads never serialise on
    /// key generation.
    pub fn with_credentials<R: RngCore + ?Sized>(
        device_id: &str,
        keys: RsaKeyPair,
        certificate: Certificate,
        ca_root: Certificate,
        backend: Arc<dyn CryptoBackend>,
        rng: &mut R,
    ) -> Self {
        let engine = CryptoEngine::with_backend(backend, rng.next_u64());
        let mut kdev = [0u8; 16];
        rng.fill_bytes(&mut kdev);
        DrmAgent {
            device_id: device_id.to_string(),
            keys,
            certificate,
            ca_root,
            engine,
            storage: DeviceStorage::new(kdev),
            ri_contexts: HashMap::new(),
        }
    }

    /// The device identifier.
    pub fn device_id(&self) -> &str {
        &self.device_id
    }

    /// The device certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.certificate
    }

    /// The instrumented crypto engine. `oma-perf` snapshots its trace around
    /// each protocol phase.
    pub fn engine(&self) -> &CryptoEngine {
        &self.engine
    }

    /// Whether a trusted relationship with `ri_id` exists.
    pub fn is_registered_with(&self, ri_id: &str) -> bool {
        self.ri_contexts.contains_key(ri_id)
    }

    /// The typed session-machine state of the relationship with `ri_id`:
    /// [`AgentSessionState::Registered`] once an RI Context is pinned,
    /// [`AgentSessionState::Idle`] otherwise. The in-flight exchange states
    /// (`HelloSent`, `ChallengeReceived`, ...) are scoped to one driver run
    /// — [`DrmAgent::register_via`] and friends step the machine through
    /// them and only the `Registered` outcome persists, as the RI Context.
    pub fn session_state(&self, ri_id: &str) -> AgentSessionState {
        if self.ri_contexts.contains_key(ri_id) {
            AgentSessionState::Registered
        } else {
            AgentSessionState::Idle
        }
    }

    /// The RI Context for `ri_id`, if registered.
    pub fn ri_context(&self, ri_id: &str) -> Option<&RiContext> {
        self.ri_contexts.get(ri_id)
    }

    /// Identifiers of all installed Rights Objects.
    pub fn installed_rights(&self) -> Vec<RightsObjectId> {
        self.storage.installed_ids().cloned().collect()
    }

    /// Installed Rights Objects covering `content_id`.
    pub fn rights_for_content(&self, content_id: &str) -> Vec<RightsObjectId> {
        self.storage
            .find_for_content(content_id)
            .map(|ro| ro.payload.id.clone())
            .collect()
    }

    /// Remaining use count for `permission` under an installed Rights
    /// Object, if it is count-constrained.
    pub fn remaining_count(&self, ro_id: &RightsObjectId, permission: Permission) -> Option<u32> {
        self.storage
            .get(ro_id)
            .and_then(|ro| ro.usage.get(&permission))
            .and_then(|state| state.remaining_count())
    }

    /// Domains this device has joined.
    pub fn joined_domains(&self) -> Vec<DomainId> {
        self.storage.domains().cloned().collect()
    }

    // ----- phase 1: registration -------------------------------------------------

    /// Runs the 4-pass ROAP registration protocol (paper §2.4.1) against a
    /// shared [`RiService`], establishing an RI Context — the form the
    /// device fleet harness uses, where many agents on many threads register
    /// with one service instance. Equivalent to [`DrmAgent::register_via`]
    /// over an in-process transport.
    ///
    /// # Errors
    ///
    /// See [`DrmAgent::register_via`].
    pub fn register_with(&mut self, ri: &RiService, now: Timestamp) -> Result<(), DrmError> {
        self.register_via(&RoapClient::in_proc(ri), now)
    }

    /// Runs the 4-pass registration protocol over a [`RoapClient`] — every
    /// message crosses the client's transport as encoded PDU frames, whether
    /// that transport is an in-process call or a byte channel.
    ///
    /// # Errors
    ///
    /// [`DrmError::Roap`] when the Rights Issuer rejects the registration,
    /// [`DrmError::Pki`] when the Rights Issuer certificate or its OCSP
    /// response does not verify, and [`DrmError::Transport`] when the
    /// transport fails.
    pub fn register_via<T: RoapTransport>(
        &mut self,
        client: &RoapClient<T>,
        now: Timestamp,
    ) -> Result<(), DrmError> {
        // The driver is a walk of the typed agent machine: each protocol
        // action is a machine step, and a misordered exchange would be
        // rejected with the machine's stable code instead of limping on.
        let state = AgentSessionState::Idle.step(AgentEvent::SendHello)?;
        // Pass 1 and 2: the hello exchange negotiates algorithms; it involves
        // no cryptography.
        let hello = client.hello(&DeviceHello::new(&self.device_id))?;
        let state = state.step(AgentEvent::ChallengeReceived)?;
        // Pass 3: signed RegistrationRequest.
        let request = self.registration_request(&hello, now)?;
        let state = state.step(AgentEvent::SendRegistration)?;
        let response = client.register(&request)?;
        // Pass 4: verify the RegistrationResponse.
        self.complete_registration(&hello, &request, &response, now)?;
        debug_assert_eq!(
            state.step(AgentEvent::ResponseVerified),
            Ok(AgentSessionState::Registered)
        );
        Ok(())
    }

    /// Builds the signed `RegistrationRequest` answering `hello` (pass 3 of
    /// registration) without sending it — the sans-io form batching drivers
    /// use to assemble many requests before one bulk exchange.
    ///
    /// # Errors
    ///
    /// [`DrmError::Crypto`] when signing fails (device key too small).
    pub fn registration_request(
        &mut self,
        hello: &RiHello,
        now: Timestamp,
    ) -> Result<RegistrationRequest, DrmError> {
        let device_nonce = self.engine.random_nonce(NONCE_LEN);
        let signed = RegistrationRequest::signed_bytes(
            hello.session_id,
            &self.device_id,
            &device_nonce,
            now,
            &self.certificate,
        );
        let signature = self.engine.pss_sign(self.keys.private(), &signed)?;
        Ok(RegistrationRequest {
            session_id: hello.session_id,
            device_id: self.device_id.clone(),
            device_nonce,
            request_time: now,
            certificate: self.certificate.clone(),
            signature,
        })
    }

    /// Verifies the `RegistrationResponse` to `request` (pass 4) and, on
    /// success, establishes the RI Context: checks the nonce and identity
    /// echoes, the response signature, the Rights Issuer certificate chain
    /// and the freshness of its OCSP response.
    ///
    /// # Errors
    ///
    /// [`DrmError::Roap`] for echo or signature failures, [`DrmError::Pki`]
    /// for certificate or OCSP failures.
    pub fn complete_registration(
        &mut self,
        hello: &RiHello,
        request: &RegistrationRequest,
        response: &RegistrationResponse,
        now: Timestamp,
    ) -> Result<(), DrmError> {
        if response.device_nonce != request.device_nonce || response.ri_id != hello.ri_id {
            return Err(DrmError::Roap(RoapError::Malformed));
        }
        // Pin the claimed RI identity to the certificate: on a real wire the
        // hello and the response come from the same (untrusted) peer, so the
        // only authority binding `ri_id` to a key is the CA-attested subject.
        if response.ri_certificate.subject() != response.ri_id {
            return Err(DrmError::Roap(RoapError::CertificateInvalid));
        }
        let signed = RegistrationResponse::signed_bytes(
            response.session_id,
            &response.ri_id,
            &response.device_nonce,
            &response.ri_certificate,
            &response.ocsp_response,
        );
        if !self.engine.pss_verify(
            response.ri_certificate.public_key(),
            &signed,
            &response.signature,
        ) {
            return Err(DrmError::Roap(RoapError::SignatureInvalid));
        }
        verify_certificate_role(
            &self.engine,
            &response.ri_certificate,
            &self.ca_root,
            EntityRole::RightsIssuer,
            now,
        )?;
        response.ocsp_response.verify(
            &self.engine,
            &response.ri_certificate,
            &self.ca_root,
            None,
            now,
            OCSP_MAX_AGE_SECONDS,
        )?;

        self.ri_contexts.insert(
            response.ri_id.clone(),
            RiContext {
                ri_id: response.ri_id.clone(),
                ri_certificate: response.ri_certificate.clone(),
                registered_at: now,
                session_id: response.session_id,
            },
        );
        Ok(())
    }

    // ----- phase 2: acquisition ----------------------------------------------------

    /// Acquires a Device Rights Object for `content_id` (paper §2.4.2)
    /// against a shared [`RiService`].
    ///
    /// # Errors
    ///
    /// See [`DrmAgent::acquire_rights_via`].
    pub fn acquire_rights_with(
        &mut self,
        ri: &RiService,
        content_id: &str,
        now: Timestamp,
    ) -> Result<RoResponse, DrmError> {
        self.acquire_rights_via(&RoapClient::in_proc(ri), ri.id(), content_id, now)
    }

    /// Device-RO acquisition over a [`RoapClient`]. `ri_id` names the Rights
    /// Issuer (known from the registration that established the RI Context).
    ///
    /// # Errors
    ///
    /// [`DrmError::NotRegistered`] without a prior registration,
    /// [`DrmError::Roap`] when the Rights Issuer rejects the request or its
    /// response does not verify, and [`DrmError::Transport`] when the
    /// transport fails.
    pub fn acquire_rights_via<T: RoapTransport>(
        &mut self,
        client: &RoapClient<T>,
        ri_id: &str,
        content_id: &str,
        now: Timestamp,
    ) -> Result<RoResponse, DrmError> {
        // Machine step: acquisition is only legal from a registered state;
        // an unregistered relationship is rejected before anything is
        // signed or sent.
        let state = self
            .session_state(ri_id)
            .step(AgentEvent::SendRoRequest)
            .map_err(|_| DrmError::NotRegistered)?;
        let request = self.ro_request(ri_id, content_id, None, now)?;
        let response = client.request_ro(&request)?;
        self.verify_ro_response(&request, &response)?;
        debug_assert_eq!(
            state
                .step(AgentEvent::RoVerified)
                .map(AgentSessionState::settle),
            Ok(AgentSessionState::Registered)
        );
        Ok(response)
    }

    /// Acquires a Domain Rights Object for `content_id` targeting
    /// `domain_id` against a shared [`RiService`]. The device must have
    /// joined the domain first.
    ///
    /// # Errors
    ///
    /// See [`DrmAgent::acquire_domain_rights_via`].
    pub fn acquire_domain_rights_with(
        &mut self,
        ri: &RiService,
        content_id: &str,
        domain_id: &DomainId,
        now: Timestamp,
    ) -> Result<RoResponse, DrmError> {
        self.acquire_domain_rights_via(
            &RoapClient::in_proc(ri),
            ri.id(),
            content_id,
            domain_id,
            now,
        )
    }

    /// Domain-RO acquisition over a [`RoapClient`].
    ///
    /// # Errors
    ///
    /// Same as [`DrmAgent::acquire_rights_via`], plus
    /// [`DrmError::NotInDomain`] when the device has not joined `domain_id`.
    pub fn acquire_domain_rights_via<T: RoapTransport>(
        &mut self,
        client: &RoapClient<T>,
        ri_id: &str,
        content_id: &str,
        domain_id: &DomainId,
        now: Timestamp,
    ) -> Result<RoResponse, DrmError> {
        if self.storage.domain_key(domain_id).is_none() {
            return Err(DrmError::NotInDomain);
        }
        // Machine step: same registered-state gate as
        // [`DrmAgent::acquire_rights_via`].
        let state = self
            .session_state(ri_id)
            .step(AgentEvent::SendRoRequest)
            .map_err(|_| DrmError::NotRegistered)?;
        let request = self.ro_request(ri_id, content_id, Some(domain_id.clone()), now)?;
        let response = client.request_ro(&request)?;
        self.verify_ro_response(&request, &response)?;
        debug_assert_eq!(
            state
                .step(AgentEvent::RoVerified)
                .map(AgentSessionState::settle),
            Ok(AgentSessionState::Registered)
        );
        Ok(response)
    }

    /// Builds a signed `RORequest` without sending it — the sans-io form
    /// batching drivers use. Device-RO when `domain_id` is `None`, Domain-RO
    /// otherwise (the caller is responsible for the membership check that
    /// [`DrmAgent::acquire_domain_rights_via`] performs).
    ///
    /// # Errors
    ///
    /// [`DrmError::NotRegistered`] without an RI Context for `ri_id`,
    /// [`DrmError::Crypto`] when signing fails.
    pub fn ro_request(
        &mut self,
        ri_id: &str,
        content_id: &str,
        domain_id: Option<DomainId>,
        now: Timestamp,
    ) -> Result<RoRequest, DrmError> {
        // Machine step: the RI-context map is the `Registered` witness —
        // the machine rejects acquisition from any other state before the
        // nonce is drawn or anything is signed.
        if self
            .session_state(ri_id)
            .step(AgentEvent::SendRoRequest)
            .is_err()
        {
            return Err(DrmError::NotRegistered);
        }
        let context_ri_id = ri_id.to_string();
        let device_nonce = self.engine.random_nonce(NONCE_LEN);
        let signed = RoRequest::signed_bytes(
            &self.device_id,
            &context_ri_id,
            content_id,
            domain_id.as_ref(),
            &device_nonce,
            now,
        );
        let signature = self.engine.pss_sign(self.keys.private(), &signed)?;
        Ok(RoRequest {
            device_id: self.device_id.clone(),
            ri_id: context_ri_id,
            content_id: content_id.to_string(),
            domain_id,
            device_nonce,
            request_time: now,
            signature,
        })
    }

    /// Agent-side verification of the `ROResponse` to `request`: the nonce
    /// echo and the Rights Issuer signature, checked against the RI Context
    /// established at registration.
    ///
    /// # Errors
    ///
    /// [`DrmError::NotRegistered`] without an RI Context,
    /// [`DrmError::Roap`] when the echo or signature is wrong.
    pub fn verify_ro_response(
        &self,
        request: &RoRequest,
        response: &RoResponse,
    ) -> Result<(), DrmError> {
        let context = self
            .ri_contexts
            .get(&request.ri_id)
            .ok_or(DrmError::NotRegistered)?;
        response.verify(&self.engine, &context.ri_certificate, &request.device_nonce)?;
        Ok(())
    }

    // ----- phase 3: installation ----------------------------------------------------

    /// Installs the Rights Object carried by a verified `ROResponse`
    /// (paper §2.4.3 and Figure 3): unwraps `K_MAC ‖ K_REK`, checks the RO
    /// MAC (and signature for Domain ROs), then re-wraps the keys under the
    /// device key `K_DEV` so later accesses need only symmetric operations.
    ///
    /// # Errors
    ///
    /// [`DrmError::RightsObjectIntegrity`] when the MAC check fails,
    /// [`DrmError::RightsObjectSignature`] when the mandatory Domain RO
    /// signature is missing or invalid, [`DrmError::NotInDomain`] when the
    /// device lacks the domain key, and [`DrmError::Crypto`] when key
    /// unwrapping fails (wrong recipient).
    pub fn install_rights(
        &mut self,
        response: &RoResponse,
        now: Timestamp,
    ) -> Result<RightsObjectId, DrmError> {
        self.install_protected_ro(&response.rights_object, &response.ri_id, now)
    }

    /// Installs a protected Rights Object obtained outside a `ROResponse`
    /// (e.g. a Domain RO copied from another member device).
    ///
    /// # Errors
    ///
    /// See [`DrmAgent::install_rights`]; additionally
    /// [`DrmError::NotRegistered`] if no RI Context exists for `ri_id`.
    pub fn install_protected_ro(
        &mut self,
        ro: &ProtectedRightsObject,
        ri_id: &str,
        _now: Timestamp,
    ) -> Result<RightsObjectId, DrmError> {
        let context = self
            .ri_contexts
            .get(ri_id)
            .cloned()
            .ok_or(DrmError::NotRegistered)?;

        // Recover K_MAC || K_REK.
        let (kmac, krek, domain_id) = match &ro.key_protection {
            KeyProtection::Device(wrapped) => {
                let (kmac, krek) = self.engine.kem_unwrap(self.keys.private(), wrapped)?;
                (kmac, krek, None)
            }
            KeyProtection::Domain {
                domain_id,
                generation,
                wrapped,
            } => {
                let (stored_generation, key) = self
                    .storage
                    .domain_key(domain_id)
                    .ok_or(DrmError::NotInDomain)?;
                if stored_generation != *generation {
                    return Err(DrmError::NotInDomain);
                }
                let key = *key;
                let material = self.engine.aes_unwrap(&key, wrapped)?;
                if material.len() != 32 {
                    return Err(DrmError::Crypto(
                        oma_crypto::CryptoError::MalformedPlaintext(
                            "domain-wrapped key material must be 32 bytes",
                        ),
                    ));
                }
                let mut kmac = [0u8; 16];
                let mut krek = [0u8; 16];
                kmac.copy_from_slice(&material[..16]);
                krek.copy_from_slice(&material[16..]);
                (kmac, krek, Some(domain_id.clone()))
            }
        };

        // Integrity and authenticity.
        let payload_bytes = ro.payload.to_bytes();
        if !self.engine.hmac_sha1_verify(&kmac, &payload_bytes, &ro.mac) {
            return Err(DrmError::RightsObjectIntegrity);
        }
        match (&ro.signature, ro.key_protection.is_domain()) {
            (Some(signature), _) => {
                if !self.engine.pss_verify(
                    context.ri_certificate.public_key(),
                    &payload_bytes,
                    signature,
                ) {
                    return Err(DrmError::RightsObjectSignature);
                }
            }
            (None, true) => return Err(DrmError::RightsObjectSignature),
            (None, false) => {}
        }

        // Re-wrap K_MAC || K_REK under the device key (C2dev of Figure 3).
        let mut key_material = [0u8; 32];
        key_material[..16].copy_from_slice(&kmac);
        key_material[16..].copy_from_slice(&krek);
        let c2dev = self.engine.aes_wrap(self.storage.kdev(), &key_material)?;

        let id = ro.payload.id.clone();
        self.storage.install(InstalledRightsObject {
            payload: ro.payload.clone(),
            mac: ro.mac,
            c2dev,
            domain_id,
            usage: HashMap::new(),
        });
        Ok(id)
    }

    // ----- phase 4: consumption -------------------------------------------------------

    /// Consumes protected content: performs the per-access processing steps
    /// of paper §2.4.4 and returns the decrypted plaintext.
    ///
    /// Steps, in order: unwrap `C2dev` with `K_DEV`; verify the RO MAC;
    /// verify the DCF hash; enforce the REL constraint for `permission`;
    /// unwrap `K_CEK` with `K_REK`; AES-CBC-decrypt the payload.
    ///
    /// # Errors
    ///
    /// [`DrmError::RightsObjectNotInstalled`], [`DrmError::ContentMismatch`],
    /// [`DrmError::RightsObjectIntegrity`], [`DrmError::DcfIntegrity`],
    /// [`DrmError::PermissionNotGranted`], [`DrmError::ConstraintViolated`],
    /// or [`DrmError::Crypto`] for key-unwrap failures.
    pub fn consume(
        &mut self,
        ro_id: &RightsObjectId,
        dcf: &Dcf,
        permission: Permission,
        now: Timestamp,
    ) -> Result<Vec<u8>, DrmError> {
        let kdev = *self.storage.kdev();
        let installed = self
            .storage
            .get(ro_id)
            .ok_or(DrmError::RightsObjectNotInstalled)?;

        if installed.payload.content_id != dcf.content_id() {
            return Err(DrmError::ContentMismatch);
        }

        // Step 1: decrypt C2dev using K_DEV.
        let material = self.engine.aes_unwrap(&kdev, &installed.c2dev)?;
        let mut kmac = [0u8; 16];
        let mut krek = [0u8; 16];
        kmac.copy_from_slice(&material[..16]);
        krek.copy_from_slice(&material[16..]);

        // Step 2: verify RO integrity via its MAC.
        let payload_bytes = installed.payload.to_bytes();
        if !self
            .engine
            .hmac_sha1_verify(&kmac, &payload_bytes, &installed.mac)
        {
            return Err(DrmError::RightsObjectIntegrity);
        }

        // Step 3: verify DCF integrity against the hash inside the RO.
        let dcf_hash = dcf.hash_with(&self.engine);
        if dcf_hash != installed.payload.dcf_hash {
            return Err(DrmError::DcfIntegrity);
        }

        // Step 4: enforce the usage rights.
        let constraint = installed
            .payload
            .rights
            .constraint_for(permission)
            .ok_or(DrmError::PermissionNotGranted)?;
        let encrypted_cek = installed.payload.encrypted_cek.clone();
        let iv = *dcf.iv();
        {
            let installed = self
                .storage
                .get_mut(ro_id)
                .ok_or(DrmError::RightsObjectNotInstalled)?;
            installed
                .usage_mut(permission)
                .check_and_consume(constraint, now)
                .map_err(|_| DrmError::ConstraintViolated)?;
        }

        // Step 5: unwrap K_CEK with K_REK and decrypt the content.
        let cek = self.engine.aes_unwrap(&krek, &encrypted_cek)?;
        let plaintext = self
            .engine
            .aes_cbc_decrypt(&cek, &iv, dcf.encrypted_payload())?;
        Ok(plaintext)
    }

    // ----- domains ----------------------------------------------------------------------

    /// Joins a domain operated by a shared [`RiService`], obtaining and
    /// storing the shared domain key.
    ///
    /// # Errors
    ///
    /// See [`DrmAgent::join_domain_via`].
    pub fn join_domain_with(
        &mut self,
        ri: &RiService,
        domain_id: &DomainId,
        now: Timestamp,
    ) -> Result<(), DrmError> {
        self.join_domain_via(&RoapClient::in_proc(ri), ri.id(), domain_id, now)
    }

    /// Domain join over a [`RoapClient`].
    ///
    /// # Errors
    ///
    /// [`DrmError::NotRegistered`] without a prior registration,
    /// [`DrmError::Roap`] when the Rights Issuer rejects the join or its
    /// response does not verify, and [`DrmError::Transport`] when the
    /// transport fails.
    pub fn join_domain_via<T: RoapTransport>(
        &mut self,
        client: &RoapClient<T>,
        ri_id: &str,
        domain_id: &DomainId,
        now: Timestamp,
    ) -> Result<(), DrmError> {
        let request = self.join_request(ri_id, domain_id, now)?;
        let response = client.join_domain(&request)?;
        self.complete_join(&request, &response)
    }

    /// Builds a signed `JoinDomainRequest` without sending it (sans-io form).
    ///
    /// # Errors
    ///
    /// [`DrmError::NotRegistered`] without an RI Context for `ri_id`,
    /// [`DrmError::Crypto`] when signing fails.
    pub fn join_request(
        &mut self,
        ri_id: &str,
        domain_id: &DomainId,
        now: Timestamp,
    ) -> Result<JoinDomainRequest, DrmError> {
        // Machine step: domain join requires the `Registered` state, same
        // gate as `ro_request`.
        if self
            .session_state(ri_id)
            .step(AgentEvent::SendRoRequest)
            .is_err()
        {
            return Err(DrmError::NotRegistered);
        }
        let context_ri_id = ri_id.to_string();
        let device_nonce = self.engine.random_nonce(NONCE_LEN);
        let signed = JoinDomainRequest::signed_bytes(
            &self.device_id,
            &context_ri_id,
            domain_id,
            &device_nonce,
            now,
        );
        let signature = self.engine.pss_sign(self.keys.private(), &signed)?;
        Ok(JoinDomainRequest {
            device_id: self.device_id.clone(),
            ri_id: context_ri_id,
            domain_id: domain_id.clone(),
            device_nonce,
            request_time: now,
            signature,
        })
    }

    /// Verifies the `JoinDomainResponse` to `request`, decrypts the domain
    /// key and stores it: the echoes, the Rights Issuer signature, then one
    /// RSA private-key operation to recover the key.
    ///
    /// # Errors
    ///
    /// [`DrmError::NotRegistered`] without an RI Context, [`DrmError::Roap`]
    /// for echo or signature failures, [`DrmError::Crypto`] when the key
    /// fails to decrypt.
    pub fn complete_join(
        &mut self,
        request: &JoinDomainRequest,
        response: &JoinDomainResponse,
    ) -> Result<(), DrmError> {
        let context = self
            .ri_contexts
            .get(&request.ri_id)
            .cloned()
            .ok_or(DrmError::NotRegistered)?;
        if response.device_nonce != request.device_nonce || response.domain_id != request.domain_id
        {
            return Err(DrmError::Roap(RoapError::Malformed));
        }
        let signed = JoinDomainResponse::signed_bytes(
            &response.device_id,
            &response.ri_id,
            &response.domain_id,
            response.generation,
            &response.encrypted_domain_key,
            &response.device_nonce,
        );
        if !self.engine.pss_verify(
            context.ri_certificate.public_key(),
            &signed,
            &response.signature,
        ) {
            return Err(DrmError::Roap(RoapError::SignatureInvalid));
        }
        let decrypted = self
            .engine
            .rsa_decrypt(self.keys.private(), &response.encrypted_domain_key)?;
        if decrypted.len() < 16 {
            return Err(DrmError::Crypto(
                oma_crypto::CryptoError::MalformedPlaintext("domain key too short"),
            ));
        }
        let mut key = [0u8; 16];
        key.copy_from_slice(&decrypted[decrypted.len() - 16..]);
        self.storage
            .store_domain_key(request.domain_id.clone(), response.generation, key);
        Ok(())
    }

    /// Leaves a domain operated by a shared [`RiService`]: forgets the
    /// domain key locally and notifies the Rights Issuer.
    ///
    /// # Errors
    ///
    /// See [`DrmAgent::leave_domain_via`].
    pub fn leave_domain_with(
        &mut self,
        ri: &RiService,
        domain_id: &DomainId,
    ) -> Result<(), DrmError> {
        self.leave_domain_via(&RoapClient::in_proc(ri), domain_id)
    }

    /// Domain leave over a [`RoapClient`]. The local domain key is removed
    /// even when the Rights Issuer reports a failure.
    ///
    /// # Errors
    ///
    /// Propagates the Rights Issuer's failure reason —
    /// [`DrmError::Roap`]/[`RoapError::UnknownDomain`] for an unknown domain
    /// or [`DrmError::NotInDomain`] when the device was not a member — and
    /// [`DrmError::Transport`] when the transport fails. The local domain
    /// key is removed in every case.
    pub fn leave_domain_via<T: RoapTransport>(
        &mut self,
        client: &RoapClient<T>,
        domain_id: &DomainId,
    ) -> Result<(), DrmError> {
        self.storage.remove_domain_key(domain_id);
        client.leave_domain(&self.device_id, domain_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::RightsTemplate;
    use crate::ri::RightsIssuer;
    use crate::ContentIssuer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct World {
        ca: CertificationAuthority,
        ri: RightsIssuer,
        agent: DrmAgent,
        dcf: Dcf,
    }

    fn world(template: RightsTemplate) -> World {
        let mut rng = StdRng::seed_from_u64(0x0acace);
        let mut ca = CertificationAuthority::new("cmla", 512, &mut rng);
        let mut ri = RightsIssuer::new("ri.example.com", 512, &mut ca, &mut rng);
        let agent = DrmAgent::new("phone-001", 512, &mut ca, &mut rng);
        let ci = ContentIssuer::new("ci.example.com");
        let (dcf, cek) = ci.package(b"some protected audio content", "cid:track", &mut rng);
        ri.add_content("cid:track", cek, &dcf, template);
        World { ca, ri, agent, dcf }
    }

    #[test]
    fn full_lifecycle_device_ro() {
        let mut w = world(RightsTemplate::unlimited(Permission::Play));
        let now = Timestamp::new(1_000);
        assert!(!w.agent.is_registered_with("ri.example.com"));
        w.agent.register_with(w.ri.service(), now).unwrap();
        assert!(w.agent.is_registered_with("ri.example.com"));
        assert!(w.ri.is_registered("phone-001"));
        assert_eq!(
            w.agent.ri_context("ri.example.com").unwrap().ri_id,
            "ri.example.com"
        );

        let response = w
            .agent
            .acquire_rights_with(w.ri.service(), "cid:track", now)
            .unwrap();
        let ro_id = w.agent.install_rights(&response, now).unwrap();
        assert_eq!(w.agent.installed_rights(), vec![ro_id.clone()]);
        assert_eq!(w.agent.rights_for_content("cid:track"), vec![ro_id.clone()]);

        let plaintext = w
            .agent
            .consume(&ro_id, &w.dcf, Permission::Play, now)
            .unwrap();
        assert_eq!(plaintext, b"some protected audio content");
        // Unconstrained play works repeatedly.
        assert!(w
            .agent
            .consume(&ro_id, &w.dcf, Permission::Play, now.plus(5))
            .is_ok());
    }

    #[test]
    fn acquisition_requires_registration() {
        let mut w = world(RightsTemplate::unlimited(Permission::Play));
        let now = Timestamp::new(1_000);
        assert_eq!(
            w.agent
                .acquire_rights_with(w.ri.service(), "cid:track", now),
            Err(DrmError::NotRegistered)
        );
    }

    #[test]
    fn unknown_content_rejected_by_ri() {
        let mut w = world(RightsTemplate::unlimited(Permission::Play));
        let now = Timestamp::new(1_000);
        w.agent.register_with(w.ri.service(), now).unwrap();
        assert_eq!(
            w.agent
                .acquire_rights_with(w.ri.service(), "cid:other", now),
            Err(DrmError::Roap(RoapError::UnknownRightsObject))
        );
    }

    #[test]
    fn count_constraint_enforced_across_consumptions() {
        let mut w = world(RightsTemplate::counted(Permission::Play, 2));
        let now = Timestamp::new(1_000);
        w.agent.register_with(w.ri.service(), now).unwrap();
        let response = w
            .agent
            .acquire_rights_with(w.ri.service(), "cid:track", now)
            .unwrap();
        let ro_id = w.agent.install_rights(&response, now).unwrap();
        assert_eq!(
            w.agent.remaining_count(&ro_id, Permission::Play),
            None,
            "state starts lazily"
        );
        assert!(w
            .agent
            .consume(&ro_id, &w.dcf, Permission::Play, now)
            .is_ok());
        assert_eq!(w.agent.remaining_count(&ro_id, Permission::Play), Some(1));
        assert!(w
            .agent
            .consume(&ro_id, &w.dcf, Permission::Play, now)
            .is_ok());
        assert_eq!(
            w.agent.consume(&ro_id, &w.dcf, Permission::Play, now),
            Err(DrmError::ConstraintViolated)
        );
    }

    #[test]
    fn wrong_permission_rejected() {
        let mut w = world(RightsTemplate::unlimited(Permission::Play));
        let now = Timestamp::new(1_000);
        w.agent.register_with(w.ri.service(), now).unwrap();
        let response = w
            .agent
            .acquire_rights_with(w.ri.service(), "cid:track", now)
            .unwrap();
        let ro_id = w.agent.install_rights(&response, now).unwrap();
        assert_eq!(
            w.agent.consume(&ro_id, &w.dcf, Permission::Print, now),
            Err(DrmError::PermissionNotGranted)
        );
    }

    #[test]
    fn tampered_dcf_detected() {
        let mut w = world(RightsTemplate::unlimited(Permission::Play));
        let now = Timestamp::new(1_000);
        w.agent.register_with(w.ri.service(), now).unwrap();
        let response = w
            .agent
            .acquire_rights_with(w.ri.service(), "cid:track", now)
            .unwrap();
        let ro_id = w.agent.install_rights(&response, now).unwrap();
        let tampered = w.dcf.tampered();
        assert_eq!(
            w.agent.consume(&ro_id, &tampered, Permission::Play, now),
            Err(DrmError::DcfIntegrity)
        );
    }

    #[test]
    fn tampered_rights_object_detected_at_install() {
        let mut w = world(RightsTemplate::unlimited(Permission::Play));
        let now = Timestamp::new(1_000);
        w.agent.register_with(w.ri.service(), now).unwrap();
        let mut response = w
            .agent
            .acquire_rights_with(w.ri.service(), "cid:track", now)
            .unwrap();
        // Flip a MAC bit.
        response.rights_object.mac[0] ^= 1;
        assert_eq!(
            w.agent
                .install_protected_ro(&response.rights_object, "ri.example.com", now),
            Err(DrmError::RightsObjectIntegrity)
        );
    }

    #[test]
    fn rights_object_for_other_device_cannot_be_installed() {
        let mut w = world(RightsTemplate::unlimited(Permission::Play));
        let now = Timestamp::new(1_000);
        let mut rng = StdRng::seed_from_u64(77);
        let mut other = DrmAgent::new("phone-002", 512, &mut w.ca, &mut rng);
        w.agent.register_with(w.ri.service(), now).unwrap();
        other.register_with(w.ri.service(), now).unwrap();
        // The RO is addressed to `agent`, not `other`.
        let response = w
            .agent
            .acquire_rights_with(w.ri.service(), "cid:track", now)
            .unwrap();
        let result = other.install_protected_ro(&response.rights_object, "ri.example.com", now);
        assert!(result.is_err(), "foreign device must not unwrap the keys");
    }

    #[test]
    fn revoked_rights_issuer_is_rejected_at_registration() {
        let mut w = world(RightsTemplate::unlimited(Permission::Play));
        let now = Timestamp::new(1_000);
        w.ca.revoke(w.ri.certificate().serial());
        w.ri.refresh_ocsp(&w.ca, now);
        let err = w.agent.register_with(w.ri.service(), now).unwrap_err();
        assert_eq!(err, DrmError::Pki(oma_pki::PkiError::CertificateRevoked));
        assert!(!w.agent.is_registered_with("ri.example.com"));
    }

    #[test]
    fn stale_ocsp_requires_refresh() {
        let mut w = world(RightsTemplate::unlimited(Permission::Play));
        // The RI fetched its OCSP response at t=0; far in the future it is stale.
        let far_future = Timestamp::new(OCSP_MAX_AGE_SECONDS + 10_000);
        let err = w
            .agent
            .register_with(w.ri.service(), far_future)
            .unwrap_err();
        assert_eq!(err, DrmError::Pki(oma_pki::PkiError::OcspResponseStale));
        w.ri.refresh_ocsp(&w.ca, far_future);
        assert!(w.agent.register_with(w.ri.service(), far_future).is_ok());
    }

    #[test]
    fn domain_lifecycle_share_license_between_devices() {
        let mut w = world(RightsTemplate::unlimited(Permission::Play));
        let now = Timestamp::new(1_000);
        let mut rng = StdRng::seed_from_u64(88);
        let mut player = DrmAgent::new("mp3-player", 512, &mut w.ca, &mut rng);

        w.agent.register_with(w.ri.service(), now).unwrap();
        player.register_with(w.ri.service(), now).unwrap();

        let domain = w.ri.create_domain("family", 4);
        w.agent
            .join_domain_with(w.ri.service(), &domain, now)
            .unwrap();
        player
            .join_domain_with(w.ri.service(), &domain, now)
            .unwrap();
        assert_eq!(w.ri.domain_member_count(&domain), Some(2));
        assert_eq!(w.agent.joined_domains(), vec![domain.clone()]);

        // The phone acquires a Domain RO; the player installs the very same RO.
        let response = w
            .agent
            .acquire_domain_rights_with(w.ri.service(), "cid:track", &domain, now)
            .unwrap();
        assert!(response.rights_object.is_domain_ro());
        let ro_id = w.agent.install_rights(&response, now).unwrap();
        let ro_id_player = player
            .install_protected_ro(&response.rights_object, "ri.example.com", now)
            .unwrap();
        assert_eq!(ro_id, ro_id_player);

        assert_eq!(
            w.agent
                .consume(&ro_id, &w.dcf, Permission::Play, now)
                .unwrap(),
            b"some protected audio content"
        );
        assert_eq!(
            player
                .consume(&ro_id_player, &w.dcf, Permission::Play, now)
                .unwrap(),
            b"some protected audio content"
        );

        // A device outside the domain cannot install the Domain RO.
        let mut outsider = DrmAgent::new("outsider", 512, &mut w.ca, &mut rng);
        outsider.register_with(w.ri.service(), now).unwrap();
        assert_eq!(
            outsider.install_protected_ro(&response.rights_object, "ri.example.com", now),
            Err(DrmError::NotInDomain)
        );

        // Leaving the domain removes the key.
        w.agent.leave_domain_with(w.ri.service(), &domain).unwrap();
        assert!(w.agent.joined_domains().is_empty());
        assert_eq!(w.ri.domain_member_count(&domain), Some(1));
        // Leaving again fails with the specific reason.
        assert_eq!(
            w.agent.leave_domain_with(w.ri.service(), &domain),
            Err(DrmError::NotInDomain)
        );
    }

    #[test]
    fn domain_rights_require_membership() {
        let mut w = world(RightsTemplate::unlimited(Permission::Play));
        let now = Timestamp::new(1_000);
        w.agent.register_with(w.ri.service(), now).unwrap();
        let domain = w.ri.create_domain("family", 4);
        assert_eq!(
            w.agent
                .acquire_domain_rights_with(w.ri.service(), "cid:track", &domain, now),
            Err(DrmError::NotInDomain)
        );
    }

    #[test]
    fn engine_trace_accumulates_per_phase() {
        use oma_crypto::Algorithm;
        let mut w = world(RightsTemplate::unlimited(Permission::Play));
        let now = Timestamp::new(1_000);
        w.agent.engine().reset_trace();

        w.agent.register_with(w.ri.service(), now).unwrap();
        let registration = w.agent.engine().take_trace();
        assert_eq!(registration.count(Algorithm::RsaPrivate).invocations, 1);
        assert_eq!(registration.count(Algorithm::RsaPublic).invocations, 3);

        let response = w
            .agent
            .acquire_rights_with(w.ri.service(), "cid:track", now)
            .unwrap();
        let acquisition = w.agent.engine().take_trace();
        assert_eq!(acquisition.count(Algorithm::RsaPrivate).invocations, 1);
        assert_eq!(acquisition.count(Algorithm::RsaPublic).invocations, 1);

        let ro_id = w.agent.install_rights(&response, now).unwrap();
        let installation = w.agent.engine().take_trace();
        assert_eq!(installation.count(Algorithm::RsaPrivate).invocations, 1);
        assert!(installation.count(Algorithm::AesDecrypt).blocks > 0);
        assert!(installation.count(Algorithm::AesEncrypt).blocks > 0);
        assert_eq!(installation.count(Algorithm::HmacSha1).invocations, 1);

        w.agent
            .consume(&ro_id, &w.dcf, Permission::Play, now)
            .unwrap();
        let consumption = w.agent.engine().take_trace();
        assert_eq!(consumption.count(Algorithm::RsaPrivate).invocations, 0);
        assert_eq!(consumption.count(Algorithm::RsaPublic).invocations, 0);
        assert_eq!(consumption.count(Algorithm::HmacSha1).invocations, 1);
        assert_eq!(consumption.count(Algorithm::Sha1).invocations, 1);
        assert!(consumption.count(Algorithm::AesDecrypt).blocks > 0);
    }
}
