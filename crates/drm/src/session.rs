//! Typed ROAP session state machines for both protocol ends.
//!
//! The 4-pass registration and 2-pass acquisition flows used to live as
//! imperative handler code where wrong-state transitions were caught ad
//! hoc. This module makes each end's session lifecycle an explicit machine
//! with a **total** transition function: every `(state, input)` pair either
//! steps to the next state or returns the documented [`RoapError`] the wire
//! answers with. The handlers in [`service`](crate::service) and the
//! drivers in [`agent`](crate::agent) consult these machines for state
//! legality and keep only the crypto and data plumbing — so the protocol's
//! reachable-state space is auditable in one place, and the `oma-explore`
//! model checker can replay the same machine as its reference model.
//!
//! # Server machine ([`RiSessionState`])
//!
//! One machine instance per device id, derived from the service's session
//! and registration tables:
//!
//! ```text
//!            DeviceHello                 RegistrationRequest
//!   Idle ───────────────▶ ChallengeIssued ───────────────▶ Registered
//!    │                        │     ▲                        │    ▲
//!    │ RoRequest /            │     │ DeviceHello            │    │ RoRequest /
//!    │ JoinDomain /           │     │ (supersede)            │    │ JoinDomain /
//!    │ LeaveDomain            │     │                        │    │ LeaveDomain
//!    ▼                        ▼     │       DeviceHello      ▼    │ (self loops)
//!   DeviceNotRegistered   DeviceNotRegistered ◀──────── Reregistering
//! ```
//!
//! `Reregistering` is `Registered` with a fresh challenge outstanding: a
//! registered device may say hello again (fleet re-registration), and the
//! two facts — trusted relationship, pending challenge — coexist until the
//! new pass 3 consumes the challenge.
//!
//! # Agent machine ([`AgentSessionState`])
//!
//! One machine instance per RI relationship, driving the split-phase
//! methods of [`DrmAgent`](crate::agent::DrmAgent):
//!
//! ```text
//!        SendHello        RiHello        SendRegistration    ResponseVerified
//!   Idle ─────────▶ HelloSent ─────▶ ChallengeReceived ─▶ RegistrationSent ─▶ Registered
//!                                                                              │   ▲
//!                                                                    SendRoRequest │ RoVerified
//!                                                                              ▼   │
//!                                                                           RoRequested ─▶ RoDelivered
//! ```
//!
//! `RoDelivered` collapses back into `Registered` (acquisition is a
//! sub-cycle of an established relationship). Illegal agent transitions are
//! reported as [`RoapError::UnknownSession`] (no challenge outstanding) or
//! surfaced by the agent as `DrmError::NotRegistered` before anything is
//! signed or sent.

use crate::roap::RoapError;
use crate::wire::RoapPdu;
use std::fmt;

/// The shape of a ROAP PDU with the payload abstracted away — the input
/// alphabet of the server machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names mirror `RoapPdu` one-for-one
pub enum PduKind {
    DeviceHello,
    RiHello,
    RegistrationRequest,
    RegistrationResponse,
    RoRequest,
    RoResponse,
    JoinDomainRequest,
    JoinDomainResponse,
    LeaveDomainRequest,
    Status,
}

impl PduKind {
    /// Every kind, in wire-tag order — the iteration basis for exhaustive
    /// `(state, input)` coverage tests.
    pub const ALL: [PduKind; 10] = [
        PduKind::DeviceHello,
        PduKind::RiHello,
        PduKind::RegistrationRequest,
        PduKind::RegistrationResponse,
        PduKind::RoRequest,
        PduKind::RoResponse,
        PduKind::JoinDomainRequest,
        PduKind::JoinDomainResponse,
        PduKind::LeaveDomainRequest,
        PduKind::Status,
    ];

    /// Classifies a decoded PDU.
    pub fn of(pdu: &RoapPdu) -> PduKind {
        match pdu {
            RoapPdu::DeviceHello(_) => PduKind::DeviceHello,
            RoapPdu::RiHello(_) => PduKind::RiHello,
            RoapPdu::RegistrationRequest(_) => PduKind::RegistrationRequest,
            RoapPdu::RegistrationResponse(_) => PduKind::RegistrationResponse,
            RoapPdu::RoRequest(_) => PduKind::RoRequest,
            RoapPdu::RoResponse(_) => PduKind::RoResponse,
            RoapPdu::JoinDomainRequest(_) => PduKind::JoinDomainRequest,
            RoapPdu::JoinDomainResponse(_) => PduKind::JoinDomainResponse,
            RoapPdu::LeaveDomainRequest { .. } => PduKind::LeaveDomainRequest,
            RoapPdu::Status(_) => PduKind::Status,
        }
    }

    /// Whether this kind is a request a server accepts (response kinds
    /// arriving where a request belongs are rejected as malformed).
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            PduKind::DeviceHello
                | PduKind::RegistrationRequest
                | PduKind::RoRequest
                | PduKind::JoinDomainRequest
                | PduKind::LeaveDomainRequest
        )
    }
}

impl fmt::Display for PduKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PduKind::DeviceHello => "DeviceHello",
            PduKind::RiHello => "RiHello",
            PduKind::RegistrationRequest => "RegistrationRequest",
            PduKind::RegistrationResponse => "RegistrationResponse",
            PduKind::RoRequest => "RoRequest",
            PduKind::RoResponse => "RoResponse",
            PduKind::JoinDomainRequest => "JoinDomainRequest",
            PduKind::JoinDomainResponse => "JoinDomainResponse",
            PduKind::LeaveDomainRequest => "LeaveDomainRequest",
            PduKind::Status => "Status",
        };
        f.write_str(name)
    }
}

/// Server-side session state of one device id, as derivable from the
/// service's pending-session and registered-device tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RiSessionState {
    /// The device has never completed a hello that is still pending, and is
    /// not registered.
    #[default]
    Idle,
    /// An `RiHello` challenge is outstanding (pending session) but the
    /// device is not registered yet.
    ChallengeIssued,
    /// Registration consumed the challenge; the device holds a trusted
    /// relationship and no challenge is outstanding.
    Registered,
    /// A registered device said hello again: trusted relationship *and* a
    /// fresh challenge outstanding, until pass 3 consumes it.
    Reregistering,
}

impl RiSessionState {
    /// Every server state — the iteration basis for exhaustive coverage.
    pub const ALL: [RiSessionState; 4] = [
        RiSessionState::Idle,
        RiSessionState::ChallengeIssued,
        RiSessionState::Registered,
        RiSessionState::Reregistering,
    ];

    /// Reconstructs the machine state from the two facts the service
    /// tracks per device.
    pub fn derive(registered: bool, challenge_pending: bool) -> RiSessionState {
        match (registered, challenge_pending) {
            (false, false) => RiSessionState::Idle,
            (false, true) => RiSessionState::ChallengeIssued,
            (true, false) => RiSessionState::Registered,
            (true, true) => RiSessionState::Reregistering,
        }
    }

    /// Whether the device holds a trusted relationship in this state.
    pub fn is_registered(&self) -> bool {
        matches!(
            self,
            RiSessionState::Registered | RiSessionState::Reregistering
        )
    }

    /// Whether a challenge is outstanding in this state.
    pub fn challenge_pending(&self) -> bool {
        matches!(
            self,
            RiSessionState::ChallengeIssued | RiSessionState::Reregistering
        )
    }

    /// The total transition function of the server machine.
    ///
    /// Every `(state, kind)` pair either steps to the next state or
    /// returns the stable protocol error the wire answers with:
    ///
    /// | state \ input | `DeviceHello` | `RegistrationRequest` | `RoRequest` / `JoinDomainRequest` / `LeaveDomainRequest` | response kinds |
    /// |---|---|---|---|---|
    /// | `Idle` | → `ChallengeIssued` | `UnknownSession` | `DeviceNotRegistered` | `Malformed` |
    /// | `ChallengeIssued` | → `ChallengeIssued` (supersede) | → `Registered` | `DeviceNotRegistered` | `Malformed` |
    /// | `Registered` | → `Reregistering` | `UnknownSession` (no challenge: replay) | → self | `Malformed` |
    /// | `Reregistering` | → `Reregistering` (supersede) | → `Registered` | → self | `Malformed` |
    ///
    /// The machine decides *state* legality only. A request in a legal
    /// state can still be rejected by the handler's data and crypto checks
    /// (wrong session id, bad signature, unknown content, ...), which is
    /// why [`RiService`](crate::service::RiService) consults the machine
    /// first and keeps its crypto pipeline unchanged.
    pub fn step(self, kind: PduKind) -> Result<RiSessionState, RoapError> {
        match kind {
            // Hello is unauthenticated and always accepted: it opens (or
            // supersedes) a challenge without touching registration.
            PduKind::DeviceHello => Ok(RiSessionState::derive(self.is_registered(), true)),
            PduKind::RegistrationRequest => {
                if self.challenge_pending() {
                    // Pass 3 consumes the challenge; the device ends up
                    // registered whether or not it already was.
                    Ok(RiSessionState::Registered)
                } else {
                    // No challenge outstanding: the session was never
                    // opened, already consumed, or the request is a replay.
                    Err(RoapError::UnknownSession)
                }
            }
            PduKind::RoRequest | PduKind::JoinDomainRequest | PduKind::LeaveDomainRequest => {
                if self.is_registered() {
                    Ok(self)
                } else {
                    Err(RoapError::DeviceNotRegistered)
                }
            }
            // Response PDUs are never valid requests.
            PduKind::RiHello
            | PduKind::RegistrationResponse
            | PduKind::RoResponse
            | PduKind::JoinDomainResponse
            | PduKind::Status => Err(RoapError::Malformed),
        }
    }
}

impl fmt::Display for RiSessionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RiSessionState::Idle => "Idle",
            RiSessionState::ChallengeIssued => "ChallengeIssued",
            RiSessionState::Registered => "Registered",
            RiSessionState::Reregistering => "Reregistering",
        };
        f.write_str(name)
    }
}

/// Events of the agent machine: the protocol actions a device takes (or
/// observes) while driving one RI relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgentEvent {
    /// Pass 1: the device sends its `DeviceHello`.
    SendHello,
    /// Pass 2: the RI's `RiHello` challenge arrived.
    ChallengeReceived,
    /// Pass 3: the device signs and sends its `RegistrationRequest`.
    SendRegistration,
    /// Pass 4: the `RegistrationResponse` verified — RI context pinned.
    ResponseVerified,
    /// Acquisition pass 1: the device signs and sends an `RoRequest`.
    SendRoRequest,
    /// Acquisition pass 2: the `RoResponse` verified against the nonce.
    RoVerified,
}

impl AgentEvent {
    /// Every agent event — the iteration basis for exhaustive coverage.
    pub const ALL: [AgentEvent; 6] = [
        AgentEvent::SendHello,
        AgentEvent::ChallengeReceived,
        AgentEvent::SendRegistration,
        AgentEvent::ResponseVerified,
        AgentEvent::SendRoRequest,
        AgentEvent::RoVerified,
    ];
}

impl fmt::Display for AgentEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AgentEvent::SendHello => "SendHello",
            AgentEvent::ChallengeReceived => "ChallengeReceived",
            AgentEvent::SendRegistration => "SendRegistration",
            AgentEvent::ResponseVerified => "ResponseVerified",
            AgentEvent::SendRoRequest => "SendRoRequest",
            AgentEvent::RoVerified => "RoVerified",
        };
        f.write_str(name)
    }
}

/// Device-side session state of one RI relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AgentSessionState {
    /// No relationship and no exchange in flight.
    #[default]
    Idle,
    /// `DeviceHello` sent, waiting for the RI's challenge.
    HelloSent,
    /// `RiHello` received: the device holds the session id and RI nonce it
    /// must echo into its signed pass 3.
    ChallengeReceived,
    /// Signed `RegistrationRequest` sent, waiting for pass 4.
    RegistrationSent,
    /// The `RegistrationResponse` verified: an RI context is pinned and
    /// acquisition sub-cycles may start.
    Registered,
    /// Signed `RoRequest` sent, waiting for the protected Rights Object.
    RoRequested,
    /// The `RoResponse` verified against the request nonce — terminal state
    /// of one acquisition sub-cycle; collapses back into [`Registered`]
    /// via [`AgentSessionState::settle`].
    ///
    /// [`Registered`]: AgentSessionState::Registered
    RoDelivered,
}

impl AgentSessionState {
    /// Every agent state — the iteration basis for exhaustive coverage.
    pub const ALL: [AgentSessionState; 7] = [
        AgentSessionState::Idle,
        AgentSessionState::HelloSent,
        AgentSessionState::ChallengeReceived,
        AgentSessionState::RegistrationSent,
        AgentSessionState::Registered,
        AgentSessionState::RoRequested,
        AgentSessionState::RoDelivered,
    ];

    /// Whether the agent holds a pinned RI context in this state.
    pub fn is_registered(&self) -> bool {
        matches!(
            self,
            AgentSessionState::Registered
                | AgentSessionState::RoRequested
                | AgentSessionState::RoDelivered
        )
    }

    /// The total transition function of the agent machine.
    ///
    /// | state \ event | `SendHello` | `ChallengeReceived` | `SendRegistration` | `ResponseVerified` | `SendRoRequest` | `RoVerified` |
    /// |---|---|---|---|---|---|---|
    /// | `Idle` | → `HelloSent` | `UnknownSession` | `UnknownSession` | `UnknownSession` | `DeviceNotRegistered` | `UnknownSession` |
    /// | `HelloSent` | → `HelloSent` (retry) | → `ChallengeReceived` | `UnknownSession` | `UnknownSession` | `DeviceNotRegistered` | `UnknownSession` |
    /// | `ChallengeReceived` | → `HelloSent` (restart) | → `ChallengeReceived` (supersede) | → `RegistrationSent` | `UnknownSession` | `DeviceNotRegistered` | `UnknownSession` |
    /// | `RegistrationSent` | → `HelloSent` (restart) | → `ChallengeReceived` | → `RegistrationSent` (retry) | → `Registered` | `DeviceNotRegistered` | `UnknownSession` |
    /// | `Registered` | → `HelloSent` (re-register) | `UnknownSession` | `UnknownSession` | `UnknownSession` | → `RoRequested` | `UnknownSession` |
    /// | `RoRequested` | → `HelloSent` | `UnknownSession` | `UnknownSession` | `UnknownSession` | → `RoRequested` (retry) | → `RoDelivered` |
    /// | `RoDelivered` | → `HelloSent` | `UnknownSession` | `UnknownSession` | `UnknownSession` | → `RoRequested` | `UnknownSession` |
    ///
    /// Wrong-order events map to [`RoapError::UnknownSession`] (no matching
    /// exchange in flight) except acquisition attempts without a pinned RI
    /// context, which map to [`RoapError::DeviceNotRegistered`] — mirroring
    /// the error the *server* would answer were the agent to misbehave, so
    /// both ends reject the same misstep with the same stable code.
    pub fn step(self, event: AgentEvent) -> Result<AgentSessionState, RoapError> {
        use AgentSessionState as S;
        match event {
            // A device may restart registration from anywhere; hello
            // supersession on the server mirrors this.
            AgentEvent::SendHello => Ok(S::HelloSent),
            AgentEvent::ChallengeReceived => match self {
                S::HelloSent | S::ChallengeReceived | S::RegistrationSent => {
                    Ok(S::ChallengeReceived)
                }
                _ => Err(RoapError::UnknownSession),
            },
            AgentEvent::SendRegistration => match self {
                S::ChallengeReceived | S::RegistrationSent => Ok(S::RegistrationSent),
                _ => Err(RoapError::UnknownSession),
            },
            AgentEvent::ResponseVerified => match self {
                S::RegistrationSent => Ok(S::Registered),
                _ => Err(RoapError::UnknownSession),
            },
            AgentEvent::SendRoRequest => {
                if self.is_registered() {
                    Ok(S::RoRequested)
                } else {
                    Err(RoapError::DeviceNotRegistered)
                }
            }
            AgentEvent::RoVerified => match self {
                S::RoRequested => Ok(S::RoDelivered),
                _ => Err(RoapError::UnknownSession),
            },
        }
    }

    /// Collapses a completed acquisition sub-cycle back into
    /// [`AgentSessionState::Registered`]; every other state is unchanged.
    pub fn settle(self) -> AgentSessionState {
        match self {
            AgentSessionState::RoDelivered => AgentSessionState::Registered,
            other => other,
        }
    }
}

impl fmt::Display for AgentSessionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AgentSessionState::Idle => "Idle",
            AgentSessionState::HelloSent => "HelloSent",
            AgentSessionState::ChallengeReceived => "ChallengeReceived",
            AgentSessionState::RegistrationSent => "RegistrationSent",
            AgentSessionState::Registered => "Registered",
            AgentSessionState::RoRequested => "RoRequested",
            AgentSessionState::RoDelivered => "RoDelivered",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_transition_table_is_total() {
        for state in RiSessionState::ALL {
            for kind in PduKind::ALL {
                // Every pair either steps or rejects — `step` never panics,
                // and rejection codes are the documented ones.
                match state.step(kind) {
                    Ok(next) => assert!(RiSessionState::ALL.contains(&next)),
                    Err(e) => assert!(matches!(
                        e,
                        RoapError::UnknownSession
                            | RoapError::DeviceNotRegistered
                            | RoapError::Malformed
                    )),
                }
            }
        }
    }

    #[test]
    fn honest_registration_path_reaches_registered() {
        let s = RiSessionState::Idle;
        let s = s.step(PduKind::DeviceHello).unwrap();
        assert_eq!(s, RiSessionState::ChallengeIssued);
        let s = s.step(PduKind::RegistrationRequest).unwrap();
        assert_eq!(s, RiSessionState::Registered);
        assert_eq!(s.step(PduKind::RoRequest).unwrap(), s);
        assert_eq!(s.step(PduKind::LeaveDomainRequest).unwrap(), s);
    }

    #[test]
    fn replayed_pass_three_is_unknown_session() {
        let s = RiSessionState::Registered;
        assert_eq!(
            s.step(PduKind::RegistrationRequest),
            Err(RoapError::UnknownSession)
        );
    }

    #[test]
    fn unregistered_devices_cannot_touch_domains_or_ros() {
        for state in [RiSessionState::Idle, RiSessionState::ChallengeIssued] {
            for kind in [
                PduKind::RoRequest,
                PduKind::JoinDomainRequest,
                PduKind::LeaveDomainRequest,
            ] {
                assert_eq!(state.step(kind), Err(RoapError::DeviceNotRegistered));
            }
        }
    }

    #[test]
    fn reregistration_keeps_trust_and_consumes_challenge() {
        let s = RiSessionState::Registered;
        let s = s.step(PduKind::DeviceHello).unwrap();
        assert_eq!(s, RiSessionState::Reregistering);
        // Still trusted while the new challenge is outstanding.
        assert_eq!(s.step(PduKind::RoRequest).unwrap(), s);
        let s = s.step(PduKind::RegistrationRequest).unwrap();
        assert_eq!(s, RiSessionState::Registered);
    }

    #[test]
    fn derive_roundtrips_through_flags() {
        for state in RiSessionState::ALL {
            assert_eq!(
                RiSessionState::derive(state.is_registered(), state.challenge_pending()),
                state
            );
        }
    }

    #[test]
    fn agent_transition_table_is_total() {
        for state in AgentSessionState::ALL {
            for event in AgentEvent::ALL {
                match state.step(event) {
                    Ok(next) => assert!(AgentSessionState::ALL.contains(&next)),
                    Err(e) => assert!(matches!(
                        e,
                        RoapError::UnknownSession | RoapError::DeviceNotRegistered
                    )),
                }
            }
        }
    }

    #[test]
    fn agent_lifecycle_walks_the_happy_path() {
        let s = AgentSessionState::Idle;
        let s = s.step(AgentEvent::SendHello).unwrap();
        let s = s.step(AgentEvent::ChallengeReceived).unwrap();
        let s = s.step(AgentEvent::SendRegistration).unwrap();
        let s = s.step(AgentEvent::ResponseVerified).unwrap();
        assert_eq!(s, AgentSessionState::Registered);
        let s = s.step(AgentEvent::SendRoRequest).unwrap();
        let s = s.step(AgentEvent::RoVerified).unwrap();
        assert_eq!(s, AgentSessionState::RoDelivered);
        assert_eq!(s.settle(), AgentSessionState::Registered);
    }

    #[test]
    fn acquisition_without_registration_is_rejected_before_signing() {
        assert_eq!(
            AgentSessionState::Idle.step(AgentEvent::SendRoRequest),
            Err(RoapError::DeviceNotRegistered)
        );
        assert_eq!(
            AgentSessionState::HelloSent.step(AgentEvent::SendRoRequest),
            Err(RoapError::DeviceNotRegistered)
        );
    }

    #[test]
    fn out_of_order_pass_four_is_rejected() {
        assert_eq!(
            AgentSessionState::ChallengeReceived.step(AgentEvent::ResponseVerified),
            Err(RoapError::UnknownSession)
        );
    }

    #[test]
    fn pdu_kind_covers_every_pdu_shape() {
        assert_eq!(PduKind::ALL.len(), 10);
        assert!(PduKind::DeviceHello.is_request());
        assert!(!PduKind::Status.is_request());
        assert_eq!(PduKind::RoRequest.to_string(), "RoRequest");
    }
}
