//! The error type of the DRM layer.

use crate::roap::RoapError;
use std::error::Error;
use std::fmt;

/// Errors reported by the DRM Agent, Rights Issuer and Content Issuer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DrmError {
    /// No trusted relationship (RI Context) exists with the Rights Issuer.
    NotRegistered,
    /// The referenced Rights Object is not installed on the device.
    RightsObjectNotInstalled,
    /// The Rights Issuer does not offer rights for the requested content.
    UnknownContent,
    /// The Rights Object does not grant the requested permission.
    PermissionNotGranted,
    /// A count constraint is exhausted or a datetime/interval constraint is
    /// violated.
    ConstraintViolated,
    /// The Rights Object MAC check failed (integrity violation).
    RightsObjectIntegrity,
    /// The mandatory signature on a Domain Rights Object is missing or wrong.
    RightsObjectSignature,
    /// The DCF hash does not match the hash recorded in the Rights Object.
    DcfIntegrity,
    /// The Rights Object references a different content identifier.
    ContentMismatch,
    /// The device is not a member of the domain the Rights Object targets.
    NotInDomain,
    /// A ROAP protocol failure.
    Roap(RoapError),
    /// A transport-level failure while exchanging ROAP PDUs (the peer hung
    /// up, the channel closed, ...). Protocol-level rejections arrive as
    /// [`DrmError::Roap`] instead.
    Transport(String),
    /// The server shed the connection because it is at capacity (wire code
    /// [`RoapStatus::Busy`](crate::wire::RoapStatus::Busy)). Unlike
    /// [`DrmError::Transport`], the request itself was fine — back off and
    /// retry.
    Busy,
    /// The node addressed is not the current primary of the shard that owns
    /// the device (wire code
    /// [`RoapStatus::NotPrimary`](crate::wire::RoapStatus::NotPrimary)).
    /// Like [`DrmError::Busy`] the request itself was fine — the payload is
    /// the redirect hint (the shard index whose current primary should be
    /// re-resolved), so the client retargets and retries instead of giving
    /// up.
    NotPrimary(u32),
    /// A durable-store failure (write-ahead log or snapshot could not be
    /// read or made durable).
    Store(String),
    /// A PKI failure (certificate, OCSP).
    Pki(oma_pki::PkiError),
    /// An underlying cryptographic failure.
    Crypto(oma_crypto::CryptoError),
}

impl fmt::Display for DrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrmError::NotRegistered => write!(f, "no ri context: device is not registered"),
            DrmError::RightsObjectNotInstalled => write!(f, "rights object not installed"),
            DrmError::UnknownContent => write!(f, "rights issuer has no rights for this content"),
            DrmError::PermissionNotGranted => write!(f, "permission not granted by rights object"),
            DrmError::ConstraintViolated => write!(f, "usage constraint violated"),
            DrmError::RightsObjectIntegrity => write!(f, "rights object mac verification failed"),
            DrmError::RightsObjectSignature => {
                write!(f, "rights object signature missing or invalid")
            }
            DrmError::DcfIntegrity => write!(f, "dcf hash mismatch"),
            DrmError::ContentMismatch => write!(f, "rights object covers different content"),
            DrmError::NotInDomain => write!(f, "device is not a member of the domain"),
            DrmError::Roap(e) => write!(f, "roap failure: {e}"),
            DrmError::Transport(reason) => write!(f, "roap transport failure: {reason}"),
            DrmError::Busy => write!(f, "server busy: connection shed, retry later"),
            DrmError::NotPrimary(shard) => {
                write!(f, "not the primary of shard {shard}: re-resolve and retry")
            }
            DrmError::Store(reason) => write!(f, "durable store failure: {reason}"),
            DrmError::Pki(e) => write!(f, "pki failure: {e}"),
            DrmError::Crypto(e) => write!(f, "cryptographic failure: {e}"),
        }
    }
}

impl Error for DrmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DrmError::Roap(e) => Some(e),
            DrmError::Pki(e) => Some(e),
            DrmError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RoapError> for DrmError {
    fn from(e: RoapError) -> Self {
        DrmError::Roap(e)
    }
}

impl From<oma_pki::PkiError> for DrmError {
    fn from(e: oma_pki::PkiError) -> Self {
        DrmError::Pki(e)
    }
}

impl From<oma_crypto::CryptoError> for DrmError {
    fn from(e: oma_crypto::CryptoError) -> Self {
        DrmError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_sources() {
        let errors = [
            DrmError::NotRegistered,
            DrmError::ConstraintViolated,
            DrmError::Pki(oma_pki::PkiError::CertificateRevoked),
            DrmError::Crypto(oma_crypto::CryptoError::InvalidPadding),
            DrmError::Roap(RoapError::UnknownSession),
        ];
        for e in &errors {
            assert!(!e.to_string().is_empty());
        }
        assert!(errors[2].source().is_some());
        assert!(errors[0].source().is_none());
    }

    #[test]
    fn conversions() {
        let e: DrmError = oma_pki::PkiError::CertificateExpired.into();
        assert_eq!(e, DrmError::Pki(oma_pki::PkiError::CertificateExpired));
        let e: DrmError = oma_crypto::CryptoError::KeyUnwrapIntegrity.into();
        assert!(matches!(e, DrmError::Crypto(_)));
        let e: DrmError = RoapError::SignatureInvalid.into();
        assert!(matches!(e, DrmError::Roap(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<DrmError>();
    }
}
