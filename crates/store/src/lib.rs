//! Durable Rights Issuer storage: a write-ahead log plus full-state
//! snapshots, with crash recovery that rebuilds the service byte-for-byte.
//!
//! The paper's Rights Issuer holds the whole trust fabric in server state —
//! which devices registered, which Rights Object ids were consumed, which
//! nonces are outstanding. `oma-store` makes that state survive power loss:
//!
//! * every mutation [`RiService`] performs is appended to a CRC-framed,
//!   length-prefixed log record ([`codec`]) *before* the response leaves
//!   the service,
//! * periodic [`snapshots`](RiStore::snapshot) capture the complete state
//!   (RSA identity and the engine's random-stream checkpoint included) and
//!   compact the segments they cover,
//! * [`RiService::recover`] replays snapshot + surviving records into a
//!   serving instance whose *next* signature is byte-identical to what an
//!   uninterrupted run would have produced,
//! * a torn or bit-flipped tail is detected by the CRC and recovery stops
//!   cleanly at the last valid record — it never panics.
//!
//! The log backends ([`MemLog`] in memory, [`FileLog`] on disk) share one
//! byte format, so the deterministic corruption corpus exercises exactly
//! the bytes a production directory would hold. How eagerly appends reach
//! the platter is the operator's call via [`FsyncPolicy`].
//!
//! # Recover and serve
//!
//! Restarting a durable server is three lines — open the store, recover the
//! service, serve (the TCP server journals through the store and snapshots
//! on graceful shutdown):
//!
//! ```
//! # use oma_drm::{DrmAgent, RiService};
//! # use oma_net::{RoapTcpServer, ServerConfig, TcpTransport};
//! # use oma_pki::{CertificationAuthority, Timestamp};
//! # use oma_store::{RiStore, StoreConfig};
//! # use oma_drm::journal::RiJournal;
//! # use rand::SeedableRng;
//! # use std::sync::Arc;
//! # fn main() -> Result<(), oma_drm::DrmError> {
//! # let dir = std::env::temp_dir().join(format!("oma-store-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! # let now = Timestamp::new(1_000);
//! # { // First boot: genesis snapshot, one registration, graceful shutdown.
//! #     let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! #     let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
//! #     let service = Arc::new(RiService::new("ri.example.com", 384, &mut ca, &mut rng));
//! #     let store = Arc::new(RiStore::open_dir(&dir, StoreConfig::default())?);
//! #     service.set_journal(Arc::clone(&store) as Arc<dyn RiJournal>);
//! #     store.snapshot(&|| service.state_image())?;
//! #     let mut agent = DrmAgent::new("phone-001", 384, &mut ca, &mut rng);
//! #     agent.register_with(&service, now)?;
//! #     store.flush()?;
//! # }
//! let store = Arc::new(RiStore::open_dir(&dir, StoreConfig::default())?);
//! let service = Arc::new(RiService::recover(&store)?);
//! let server = RoapTcpServer::bind(
//!     Arc::clone(&service),
//!     ServerConfig::durable(store).with_clock(now),
//! )?;
//! # assert!(service.is_registered("phone-001"), "state survived the restart");
//! # server.shutdown();
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(()) }
//! ```
//!
//! [`RiService`]: oma_drm::RiService
//! [`RiService::recover`]: oma_drm::RiService::recover

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod log;

use codec::Record;
pub use log::{FileLog, MemLog, Wal};
use oma_drm::journal::{RiEvent, RiJournal, RiStateImage, StateSource};
use oma_drm::DrmError;
use oma_obs::{Histogram, ObsConfig};
use std::error::Error;
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Errors of the durable store.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The backend failed to move bytes (disk full, permission, ...).
    Io(String),
    /// Stored bytes failed validation (CRC mismatch, bad framing, ...).
    Corrupt(String),
    /// A record exceeded [`codec::MAX_RECORD_LEN`] and was refused: no
    /// decoder would accept it, so appending it would silently cut off all
    /// later history at the next recovery.
    RecordTooLarge(usize),
    /// No genesis snapshot exists; events alone cannot rebuild a service
    /// identity.
    NoGenesis,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(reason) => write!(f, "log i/o failure: {reason}"),
            StoreError::Corrupt(reason) => write!(f, "corrupt log data: {reason}"),
            StoreError::RecordTooLarge(size) => {
                write!(
                    f,
                    "journal record of {size} bytes exceeds the decodable cap"
                )
            }
            StoreError::NoGenesis => write!(f, "no genesis snapshot in store"),
        }
    }
}

impl Error for StoreError {}

impl From<StoreError> for DrmError {
    fn from(e: StoreError) -> Self {
        DrmError::Store(e.to_string())
    }
}

/// When appended records are forced onto durable media.
///
/// The policy trades write latency against the amount of *acknowledged*
/// work a power loss may undo: `Always` loses nothing, `EveryN(n)` at most
/// the last `n - 1` acknowledged responses, `OnSnapshot` everything since
/// the last explicit flush or snapshot. Recovery is identical under every
/// policy — the log simply ends earlier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every record — the response a peer holds is always
    /// durable.
    Always,
    /// fsync every `n` records (clamped to at least 1).
    EveryN(u64),
    /// fsync only on [`RiStore::flush`] and [`RiStore::snapshot`].
    OnSnapshot,
}

/// Tuning knobs of a [`RiStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Durability policy for appended records.
    pub fsync: FsyncPolicy,
    /// Segment size at which the log rotates to a fresh segment file.
    /// Rotation never splits a record.
    pub segment_max_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            fsync: FsyncPolicy::Always,
            segment_max_bytes: 4 << 20,
        }
    }
}

/// What recovery found in the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal records replayed on top of the snapshot.
    pub events_applied: u64,
    /// Sequence number of the last surviving record (the snapshot's
    /// coverage watermark when no record survived).
    pub last_sequence: u64,
    /// Why the scan stopped before the physical end of the log, if it did —
    /// a torn tail, a CRC mismatch, a broken segment. `None` means the log
    /// was clean to the end.
    pub stopped_early: Option<String>,
}

struct Appender {
    next_sequence: u64,
    unsynced: u64,
    segment_bytes: u64,
    fault: Option<StoreError>,
}

/// The valid log tail after a watermark, as raw record frames — what a
/// replication primary ships to a follower (see [`RiStore::records_after`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordTail {
    /// One framed record per entry (CRC header included), in sequence
    /// order — each is exactly the byte string [`codec::decode_record_prefix`]
    /// accepts, so a follower can validate and append them verbatim.
    pub frames: Vec<Vec<u8>>,
    /// Sequence number of the last frame (the watermark when `frames` is
    /// empty).
    pub last_sequence: u64,
    /// Why the scan stopped before the physical end of the log, if it did —
    /// the same torn-tail / gap reporting as [`RecoveryReport`].
    pub stopped_early: Option<String>,
}

/// The durable Rights Issuer store: a write-ahead log with snapshots over
/// any [`Wal`] backend.
///
/// `RiStore` implements [`RiJournal`], so it plugs straight into
/// [`RiService::set_journal`](oma_drm::RiService::set_journal), and
/// [`StateSource`], so [`RiService::recover`](oma_drm::RiService::recover)
/// can rebuild a service from it.
///
/// # Fault latching
///
/// [`RiJournal::record`] cannot return an error into the middle of a ROAP
/// handler, so the first backend failure is *latched*: later appends are
/// dropped, and the fault surfaces from [`RiStore::flush`],
/// [`RiStore::snapshot`] and [`RiStore::fault`]. A server should treat a
/// latched fault as "durability lost since that point" and stop
/// acknowledging work it cannot persist.
pub struct RiStore<L: Wal> {
    log: L,
    config: StoreConfig,
    appender: Mutex<Appender>,
    obs: OnceLock<StoreObs>,
}

/// Pre-resolved observability handles: the WAL's three latency
/// histograms. Installed once via [`RiStore::set_obs`]; every write-path
/// site then costs one lock-free `OnceLock` read (an `Option` check when
/// observability is off).
struct StoreObs {
    append_nanos: Arc<Histogram>,
    fsync_nanos: Arc<Histogram>,
    snapshot_nanos: Arc<Histogram>,
}

impl RiStore<MemLog> {
    /// An in-memory store with default config — the deterministic test
    /// backend.
    pub fn in_memory() -> Self {
        Self::new(MemLog::new(), StoreConfig::default()).expect("memory log cannot fail to open")
    }

    /// An in-memory store with explicit config.
    pub fn in_memory_with(config: StoreConfig) -> Self {
        Self::new(MemLog::new(), config).expect("memory log cannot fail to open")
    }
}

impl RiStore<FileLog> {
    /// Opens (or creates) a store in a directory. Appending resumes after
    /// the last valid record; a torn tail left by a crash is fenced off by
    /// rotating to a fresh segment.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be opened.
    pub fn open_dir(dir: impl AsRef<Path>, config: StoreConfig) -> Result<Self, StoreError> {
        Self::new(FileLog::open(dir)?, config)
    }
}

impl<L: Wal> RiStore<L> {
    /// Wraps a log backend. Scans existing segments to find where the valid
    /// log ends: appending resumes at the next sequence number, and if the
    /// scan stopped early (torn tail) the log rotates so new records never
    /// sit behind garbage.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the backend cannot be scanned, and
    /// [`StoreError::Corrupt`] when an existing snapshot fails validation —
    /// a store that can never recover must refuse to open and accept more
    /// appends, not fail silently at the *next* recovery.
    pub fn new(log: L, config: StoreConfig) -> Result<Self, StoreError> {
        let snapshot_watermark = match log.read_snapshot()? {
            Some(bytes) => Some(codec::decode_snapshot(&bytes)?.1),
            None => None,
        };
        let mut last_sequence = snapshot_watermark.unwrap_or(0);
        for segment in log.segments()? {
            let bytes = log.read_segment(segment)?;
            let scan = scan_segment(&bytes, &mut |record| {
                last_sequence = last_sequence.max(record.sequence);
            });
            if scan.error.is_some() {
                if scan.valid_len == 0 {
                    // The segment header itself is unreadable: nothing in
                    // this segment (or after it) can be trusted; recovery
                    // will stop here too. Fence by rotating past it.
                    log.rotate()?;
                    break;
                }
                // Torn tail (a crash mid-append): amputate the garbage so
                // records appended from now on — and recovery's scan —
                // never sit behind it, then keep scanning later segments
                // (an earlier reopen may already have continued there).
                log.truncate_segment(segment, scan.valid_len as u64)?;
            }
        }
        let segment_bytes = log.segment_len()?;
        Ok(RiStore {
            log,
            config,
            appender: Mutex::new(Appender {
                next_sequence: last_sequence + 1,
                unsynced: 0,
                segment_bytes,
                fault: None,
            }),
            obs: OnceLock::new(),
        })
    }

    /// The underlying log backend (test hook: `MemLog`'s corruption helpers
    /// live here).
    pub fn log(&self) -> &L {
        &self.log
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The sequence number the next record will receive.
    pub fn next_sequence(&self) -> u64 {
        self.appender.lock().expect("appender lock").next_sequence
    }

    /// The first backend failure since opening, if any (see the type-level
    /// notes on fault latching).
    pub fn fault(&self) -> Option<StoreError> {
        self.appender.lock().expect("appender lock").fault.clone()
    }

    /// Publishes this store's WAL latency into `obs` (when on):
    /// `store_append_nanos` (encode + segment append, rotation included),
    /// `store_fsync_nanos` (every policy-driven or explicit sync) and
    /// `store_snapshot_nanos` (full snapshot + compaction). One-shot:
    /// the first surface installed wins, later calls are ignored.
    pub fn set_obs(&self, obs: &ObsConfig) {
        if let Some(obs) = obs.obs() {
            let registry = obs.registry();
            let _ = self.obs.set(StoreObs {
                append_nanos: registry.histogram("store_append_nanos"),
                fsync_nanos: registry.histogram("store_fsync_nanos"),
                snapshot_nanos: registry.histogram("store_snapshot_nanos"),
            });
        }
    }

    /// Times `op` into `pick(handles)` when observability is installed.
    fn timed<T>(&self, pick: impl Fn(&StoreObs) -> &Histogram, op: impl FnOnce() -> T) -> T {
        match self.obs.get() {
            None => op(),
            Some(handles) => {
                let started = Instant::now();
                let out = op();
                pick(handles).record_duration(started.elapsed());
                out
            }
        }
    }

    fn append_locked(
        &self,
        appender: &mut Appender,
        event: &RiEvent,
        rng_after: [u8; 32],
    ) -> Result<(), StoreError> {
        let record = Record {
            sequence: appender.next_sequence,
            rng_after,
            event: event.clone(),
        };
        let framed = codec::encode_record(&record);
        if framed.len() - codec::RECORD_HEADER_LEN > codec::MAX_RECORD_LEN {
            // Appending a record no decoder will accept would silently
            // truncate all later history at the next recovery. Refuse it
            // and latch the fault instead — durability loss is visible,
            // never silent.
            return Err(StoreError::RecordTooLarge(
                framed.len() - codec::RECORD_HEADER_LEN,
            ));
        }
        self.timed(
            |h| &h.append_nanos,
            || -> Result<(), StoreError> {
                if appender.segment_bytes + framed.len() as u64 > self.config.segment_max_bytes {
                    self.log.rotate()?;
                    appender.segment_bytes = self.log.segment_len()?;
                }
                self.log.append(&framed)?;
                Ok(())
            },
        )?;
        appender.next_sequence += 1;
        appender.segment_bytes += framed.len() as u64;
        match self.config.fsync {
            FsyncPolicy::Always => self.timed(|h| &h.fsync_nanos, || self.log.sync())?,
            FsyncPolicy::EveryN(n) => {
                appender.unsynced += 1;
                if appender.unsynced >= n.max(1) {
                    self.timed(|h| &h.fsync_nanos, || self.log.sync())?;
                    appender.unsynced = 0;
                }
            }
            FsyncPolicy::OnSnapshot => appender.unsynced += 1,
        }
        Ok(())
    }

    /// Recovers the state: latest snapshot plus every surviving record, in
    /// order, with the RNG checkpoint of the last surviving record.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoGenesis`] when no snapshot was ever written,
    /// [`StoreError::Corrupt`] when the snapshot itself fails validation,
    /// [`StoreError::Io`] when the backend cannot be read. A corrupt *log*
    /// tail is not an error — the report says where and why the scan
    /// stopped.
    pub fn load_with_report(&self) -> Result<(RiStateImage, RecoveryReport), StoreError> {
        let snapshot = self.log.read_snapshot()?.ok_or(StoreError::NoGenesis)?;
        let (mut image, watermark) = codec::decode_snapshot(&snapshot)?;
        let mut report = RecoveryReport {
            events_applied: 0,
            last_sequence: watermark,
            stopped_early: None,
        };
        'segments: for segment in self.log.segments()? {
            let bytes = self.log.read_segment(segment)?;
            let mut failed = None;
            let scan = scan_segment(&bytes, &mut |record| {
                if record.sequence <= report.last_sequence {
                    // Covered by the snapshot (compaction may not have
                    // caught up); skip.
                    return;
                }
                if record.sequence != report.last_sequence + 1 {
                    failed = Some(format!(
                        "sequence gap: expected {}, found {}",
                        report.last_sequence + 1,
                        record.sequence
                    ));
                    return;
                }
                image.apply(&record.event);
                image.rng_state = record.rng_after;
                report.last_sequence = record.sequence;
                report.events_applied += 1;
            });
            if let Some(gap) = failed {
                report.stopped_early = Some(gap);
                break 'segments;
            }
            if let Some(e) = scan.error {
                report.stopped_early = Some(e.to_string());
                break 'segments;
            }
        }
        Ok((image, report))
    }

    /// Reads every valid record with a sequence number beyond `watermark`,
    /// as raw frames a peer can re-validate and append verbatim — the
    /// read side replication is built on, so no caller ever parses segment
    /// files itself.
    ///
    /// A torn tail, a CRC mismatch or a sequence gap ends the tail cleanly
    /// (`stopped_early` says why), exactly like recovery: the frames before
    /// the damage are still the authoritative durable history.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the backend cannot be read. Corruption is
    /// *not* an error — the tail simply ends early.
    pub fn records_after(&self, watermark: u64) -> Result<RecordTail, StoreError> {
        let mut tail = RecordTail {
            frames: Vec::new(),
            last_sequence: watermark,
            stopped_early: None,
        };
        'segments: for segment in self.log.segments()? {
            let bytes = self.log.read_segment(segment)?;
            let Some(mut rest) = bytes.strip_prefix(&log::SEGMENT_HEADER[..]) else {
                tail.stopped_early = Some(format!("segment {segment}: bad segment header"));
                break;
            };
            while !rest.is_empty() {
                let (record, consumed) = match codec::decode_record_prefix(rest) {
                    Ok(frame) => frame,
                    Err(e) => {
                        tail.stopped_early = Some(e.to_string());
                        break 'segments;
                    }
                };
                if record.sequence > tail.last_sequence {
                    if record.sequence != tail.last_sequence + 1 {
                        tail.stopped_early = Some(format!(
                            "sequence gap: expected {}, found {}",
                            tail.last_sequence + 1,
                            record.sequence
                        ));
                        break 'segments;
                    }
                    tail.frames.push(rest[..consumed].to_vec());
                    tail.last_sequence = record.sequence;
                }
                rest = &rest[consumed..];
            }
        }
        Ok(tail)
    }

    /// Streams the valid prefix of one segment — header plus every record
    /// that passes CRC, with any torn tail already cut off. `None` for a
    /// segment index the log no longer holds (compacted away or never
    /// written).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the backend cannot be read.
    pub fn segment_bytes(&self, segment: u64) -> Result<Option<Vec<u8>>, StoreError> {
        if !self.log.segments()?.contains(&segment) {
            return Ok(None);
        }
        let bytes = self.log.read_segment(segment)?;
        let scan = scan_segment(&bytes, &mut |_| {});
        Ok(Some(bytes[..scan.valid_len].to_vec()))
    }

    /// The raw snapshot blob and the sequence watermark it covers, for
    /// bootstrapping a follower that is behind the compaction horizon. The
    /// blob is exactly what [`codec::decode_snapshot`] accepts.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the backend cannot be read,
    /// [`StoreError::Corrupt`] when the stored snapshot fails validation.
    pub fn snapshot_blob(&self) -> Result<Option<(Vec<u8>, u64)>, StoreError> {
        match self.log.read_snapshot()? {
            None => Ok(None),
            Some(blob) => {
                let (_, watermark) = codec::decode_snapshot(&blob)?;
                Ok(Some((blob, watermark)))
            }
        }
    }
}

/// What scanning one segment found.
struct SegmentScan {
    /// Length of the valid prefix, header included (0 when the header
    /// itself is unreadable).
    valid_len: usize,
    /// Why the scan stopped before the end, if it did.
    error: Option<StoreError>,
}

/// Iterates the records of one segment, calling `f` for each, and reports
/// how far the valid prefix reaches — the caller decides whether to stop
/// (recovery) or amputate the garbage (reopen).
fn scan_segment(bytes: &[u8], f: &mut impl FnMut(&Record)) -> SegmentScan {
    let Some(mut rest) = bytes.strip_prefix(&log::SEGMENT_HEADER[..]) else {
        return SegmentScan {
            valid_len: 0,
            error: Some(StoreError::Corrupt("bad segment header".into())),
        };
    };
    let mut valid_len = log::SEGMENT_HEADER.len();
    while !rest.is_empty() {
        match codec::decode_record_prefix(rest) {
            Ok((record, consumed)) => {
                f(&record);
                rest = &rest[consumed..];
                valid_len += consumed;
            }
            Err(e) => {
                return SegmentScan {
                    valid_len,
                    error: Some(e),
                };
            }
        }
    }
    SegmentScan {
        valid_len,
        error: None,
    }
}

impl<L: Wal> RiJournal for RiStore<L> {
    fn record(&self, event: &RiEvent, rng_checkpoint: &dyn Fn() -> [u8; 32]) {
        let mut appender = self.appender.lock().expect("appender lock");
        if appender.fault.is_some() {
            return;
        }
        // The checkpoint is read *inside* the appender critical section, so
        // checkpoints are monotone in log order: recovery restoring the
        // last record's checkpoint can only skip forward over draws of
        // not-yet-journaled handlers, never rewind behind a journaled one.
        let rng_after = rng_checkpoint();
        if let Err(e) = self.append_locked(&mut appender, event, rng_after) {
            appender.fault = Some(e);
        }
    }

    fn flush(&self) -> Result<(), DrmError> {
        let mut appender = self.appender.lock().expect("appender lock");
        if let Some(fault) = &appender.fault {
            return Err(fault.clone().into());
        }
        if let Err(e) = self.timed(|h| &h.fsync_nanos, || self.log.sync()) {
            // Latch: callers that discard the Result (drop-path shutdown)
            // still leave the failure visible through `fault()`.
            appender.fault = Some(e.clone());
            return Err(e.into());
        }
        appender.unsynced = 0;
        Ok(())
    }

    fn snapshot(&self, capture: &dyn Fn() -> RiStateImage) -> Result<(), DrmError> {
        let mut appender = self.appender.lock().expect("appender lock");
        if let Some(fault) = &appender.fault {
            return Err(fault.clone().into());
        }
        match self.timed(
            |h| &h.snapshot_nanos,
            || self.snapshot_locked(&mut appender, capture),
        ) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Latch, for the same reason as `flush`.
                appender.fault = Some(e.clone());
                Err(e.into())
            }
        }
    }

    fn health(&self) -> Result<(), DrmError> {
        match self.fault() {
            None => Ok(()),
            Some(fault) => Err(fault.into()),
        }
    }
}

impl<L: Wal> RiStore<L> {
    fn snapshot_locked(
        &self,
        appender: &mut Appender,
        capture: &dyn Fn() -> RiStateImage,
    ) -> Result<(), StoreError> {
        // The image is captured while the appender lock pins the sequence:
        // no record can slip between the capture and the watermark below,
        // so the snapshot can never claim to cover an event it predates.
        let image = capture();
        // The WAL must be durable up to the coverage watermark before the
        // snapshot claims to cover it.
        self.log.sync()?;
        appender.unsynced = 0;
        let last_sequence = appender.next_sequence - 1;
        let blob = codec::encode_snapshot(&image, last_sequence);
        self.log.write_snapshot(&blob)?;
        // Everything up to `last_sequence` now lives in the snapshot:
        // rotate and drop the covered segments.
        let fresh = self.log.rotate()?;
        self.log.remove_segments_before(fresh)?;
        appender.segment_bytes = self.log.segment_len()?;
        Ok(())
    }
}

impl<L: Wal> StateSource for RiStore<L> {
    fn load_state(&self) -> Result<RiStateImage, DrmError> {
        self.load_with_report()
            .map(|(image, _)| image)
            .map_err(DrmError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oma_drm::domain::DomainId;
    use oma_drm::journal::RiJournal;
    use oma_drm::roap::DeviceHello;
    use oma_drm::RiService;
    use oma_pki::{CertificationAuthority, Timestamp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn world() -> (CertificationAuthority, RiService, StdRng) {
        let mut rng = StdRng::seed_from_u64(0xd0_15);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let service = RiService::new("ri", 384, &mut ca, &mut rng);
        (ca, service, rng)
    }

    fn durable_world() -> (
        CertificationAuthority,
        Arc<RiService>,
        Arc<RiStore<MemLog>>,
        StdRng,
    ) {
        let (ca, service, rng) = world();
        let service = Arc::new(service);
        let store = Arc::new(RiStore::in_memory());
        service.set_journal(Arc::clone(&store) as Arc<dyn RiJournal>);
        store.snapshot(&|| service.state_image()).unwrap();
        (ca, service, store, rng)
    }

    #[test]
    fn wal_latency_lands_in_the_obs_histograms() {
        let (_ca, service, _rng) = world();
        let service = Arc::new(service);
        let store = Arc::new(RiStore::in_memory_with(StoreConfig {
            fsync: FsyncPolicy::Always,
            ..StoreConfig::default()
        }));
        let obs = oma_obs::Obs::new();
        store.set_obs(&ObsConfig::On(Arc::clone(&obs)));
        service.set_journal(Arc::clone(&store) as Arc<dyn RiJournal>);
        store.snapshot(&|| service.state_image()).unwrap();
        for i in 0..3 {
            service.hello_at(&DeviceHello::new(&format!("dev-{i}")), Timestamp::new(0));
        }

        let count = |name: &str| {
            obs.registry()
                .find_histogram(name)
                .unwrap_or_else(|| panic!("{name} not registered"))
                .snapshot()
                .count()
        };
        // One timed append per journaled event; `Always` fsyncs each of
        // them; the genesis snapshot was timed too.
        assert_eq!(count("store_append_nanos"), 3);
        assert!(count("store_fsync_nanos") >= 3);
        assert_eq!(count("store_snapshot_nanos"), 1);
    }

    #[test]
    fn genesis_snapshot_alone_recovers_the_identity() {
        let (_ca, service, store, _rng) = durable_world();
        let recovered = RiService::recover(&*store).unwrap();
        assert_eq!(recovered.state_image(), service.state_image());
    }

    #[test]
    fn no_genesis_is_an_explicit_error() {
        let store = RiStore::in_memory();
        assert_eq!(store.load_with_report(), Err(StoreError::NoGenesis));
    }

    #[test]
    fn events_replay_on_top_of_the_snapshot() {
        let (_ca, service, store, _rng) = durable_world();
        service.create_domain("family", 4);
        for i in 0..5 {
            service.hello_at(
                &DeviceHello::new(&format!("dev-{i}")),
                Timestamp::new(i as u64),
            );
        }
        let (image, report) = store.load_with_report().unwrap();
        assert_eq!(report.events_applied, 6);
        assert_eq!(report.stopped_early, None);
        assert_eq!(image, service.state_image());
        let recovered = RiService::recover(&*store).unwrap();
        assert!(recovered.has_domain(&DomainId::new("family")));
        assert_eq!(recovered.pending_session_count(), 5);
    }

    #[test]
    fn torn_tail_recovers_to_the_previous_record() {
        let (_ca, service, store, _rng) = durable_world();
        for i in 0..3 {
            service.hello_at(&DeviceHello::new(&format!("dev-{i}")), Timestamp::new(0));
        }
        let clean = store.load_with_report().unwrap();
        assert_eq!(clean.1.events_applied, 3);
        // Power fails mid-write of the last record.
        store.log().truncate_tail(5);
        let (image, report) = store.load_with_report().unwrap();
        assert_eq!(report.events_applied, 2);
        assert!(report.stopped_early.is_some());
        assert_eq!(image.sessions.len(), 2);
        // The RNG checkpoint is the one of the last *surviving* record: a
        // service recovered from the torn log re-issues dev-2's nonce
        // byte-identically.
        let recovered = RiService::recover(&*store).unwrap();
        let replayed = recovered.hello_at(&DeviceHello::new("dev-2"), Timestamp::new(0));
        let (original, _) = clean;
        assert_eq!(
            replayed.ri_nonce,
            original.sessions.last().unwrap().ri_nonce,
            "post-recovery draws must match the uninterrupted stream"
        );
    }

    #[test]
    fn reopening_continues_the_sequence_and_fences_garbage() {
        let (_ca, service, store, _rng) = durable_world();
        service.hello_at(&DeviceHello::new("dev-0"), Timestamp::new(0));
        let next_before = store.next_sequence();
        // Simulate a crash that tore the last record, then a reopen over
        // the same bytes.
        store.log().truncate_tail(3);
        let raw = store.log().raw_segments();
        let log = MemLog::new();
        for (index, bytes) in raw {
            while log.current_segment() < index {
                log.rotate().unwrap();
            }
            log.mutate_segment(index, |segment| *segment = bytes.clone());
        }
        log.write_snapshot(&store.log().read_snapshot().unwrap().unwrap())
            .unwrap();
        let reopened = RiStore::new(log, StoreConfig::default()).unwrap();
        // The torn record (sequence `next_before - 1`) is gone; the reopened
        // store hands out its sequence number again, and the garbage bytes
        // were amputated so nothing ever sits behind them.
        assert_eq!(reopened.next_sequence(), next_before - 1);
        let (_, report) = reopened.load_with_report().unwrap();
        assert_eq!(
            report.stopped_early, None,
            "the torn tail must be gone after reopen"
        );
    }

    #[test]
    fn records_appended_after_a_torn_tail_reopen_survive_the_next_recovery() {
        // Crash #1 tears the last record; the store is reopened over the
        // same bytes and keeps serving; crash #2 follows. Recovery must
        // replay the post-reopen records — the amputated garbage from
        // crash #1 must not hide them.
        let (_ca, service, store, _rng) = durable_world();
        service.hello_at(&DeviceHello::new("pre-crash"), Timestamp::new(0));
        store.log().truncate_tail(3); // crash #1: torn final record

        // Reopen over the surviving bytes (same dance as the reopen test).
        let raw = store.log().raw_segments();
        let log = MemLog::new();
        for (index, bytes) in raw {
            while log.current_segment() < index {
                log.rotate().unwrap();
            }
            log.mutate_segment(index, |segment| *segment = bytes.clone());
        }
        log.write_snapshot(&store.log().read_snapshot().unwrap().unwrap())
            .unwrap();
        let reopened = Arc::new(RiStore::new(log, StoreConfig::default()).unwrap());

        // The reopened service serves more traffic, all fsync'd...
        let recovered = RiService::recover(&*reopened).unwrap();
        recovered.set_journal(Arc::clone(&reopened) as Arc<dyn RiJournal>);
        recovered.hello_at(&DeviceHello::new("post-reopen"), Timestamp::new(1));
        drop(recovered); // ...crash #2: no flush, no snapshot.

        let (image, report) = reopened.load_with_report().unwrap();
        assert_eq!(report.stopped_early, None);
        assert!(
            image.sessions.iter().any(|s| s.device_id == "post-reopen"),
            "acknowledged post-reopen state must survive the second crash"
        );
    }

    #[test]
    fn segment_rotation_and_snapshot_compaction() {
        let (_ca, service, _store, _rng) = world_with_small_segments();
        let store = _store;
        for i in 0..40 {
            service.hello_at(&DeviceHello::new(&format!("dev-{i:03}")), Timestamp::new(0));
        }
        assert!(
            store.log().segments().unwrap().len() > 1,
            "tiny segments must have rotated"
        );
        let (image, report) = store.load_with_report().unwrap();
        assert_eq!(report.events_applied, 40);
        assert_eq!(image.sessions.len(), 40);
        // Snapshot: one fresh segment survives, replay needs no events.
        store.snapshot(&|| service.state_image()).unwrap();
        assert_eq!(store.log().segments().unwrap().len(), 1);
        let (image, report) = store.load_with_report().unwrap();
        assert_eq!(report.events_applied, 0);
        assert_eq!(image, service.state_image());
    }

    fn world_with_small_segments() -> (
        CertificationAuthority,
        Arc<RiService>,
        Arc<RiStore<MemLog>>,
        StdRng,
    ) {
        let (ca, service, rng) = world();
        let service = Arc::new(service);
        let store = Arc::new(RiStore::in_memory_with(StoreConfig {
            segment_max_bytes: 512,
            ..StoreConfig::default()
        }));
        service.set_journal(Arc::clone(&store) as Arc<dyn RiJournal>);
        store.snapshot(&|| service.state_image()).unwrap();
        (ca, service, store, rng)
    }

    #[test]
    fn every_n_policy_counts_appends() {
        let store = RiStore::in_memory_with(StoreConfig {
            fsync: FsyncPolicy::EveryN(3),
            ..StoreConfig::default()
        });
        for i in 0..7 {
            store.record(
                &RiEvent::RoIssued {
                    scope: "dev:a".into(),
                    sequence: i,
                },
                &|| [0; 32],
            );
        }
        assert_eq!(
            store.appender.lock().unwrap().unsynced,
            1,
            "6 of 7 appends were synced in groups of 3"
        );
        store.flush().unwrap();
        assert_eq!(store.appender.lock().unwrap().unsynced, 0);
        assert!(store.fault().is_none());
    }

    #[test]
    fn oversized_record_latches_a_visible_fault() {
        let store = RiStore::in_memory();
        // A device id near the wire body cap yields a record no decoder
        // would ever accept; appending it must refuse + latch, not poison
        // the log silently.
        store.record(
            &RiEvent::SessionOpened {
                session_id: 1,
                device_id: "x".repeat(codec::MAX_RECORD_LEN),
                ri_nonce: vec![0; 14],
                opened_at: Timestamp::new(0),
            },
            &|| [0; 32],
        );
        assert!(matches!(store.fault(), Some(StoreError::RecordTooLarge(_))));
        assert!(store.flush().is_err(), "fault surfaces at the next flush");
        // The log itself stays scannable: nothing after the refusal.
        assert_eq!(store.next_sequence(), 1);
    }

    #[test]
    fn ttl_changes_replay_with_the_ttl_that_was_in_force() {
        // The genesis snapshot carries session_ttl = 0; the TTL is raised
        // *afterwards*, sessions expire, and a sweep is journaled. Replay
        // must apply the journaled TTL change first, so the sweep removes
        // exactly what the live service removed.
        let (_ca, service, store, _rng) = durable_world();
        service.set_session_ttl(60);
        service.hello_at(&DeviceHello::new("ghost"), Timestamp::new(0));
        service.hello_at(&DeviceHello::new("alive"), Timestamp::new(90));
        assert_eq!(service.sweep_sessions(Timestamp::new(100)), 1);
        assert_eq!(service.pending_session_count(), 1);

        let recovered = RiService::recover(&*store).unwrap();
        assert_eq!(
            recovered.pending_session_count(),
            1,
            "swept sessions must not resurrect on recovery"
        );
        assert_eq!(recovered.session_ttl(), 60, "TTL config survives too");
        assert_eq!(recovered.state_image(), service.state_image());
    }

    #[test]
    fn records_after_ships_exactly_the_tail_beyond_the_watermark() {
        let (_ca, service, store, _rng) = durable_world();
        for i in 0..5 {
            service.hello_at(&DeviceHello::new(&format!("dev-{i}")), Timestamp::new(0));
        }
        let tail = store.records_after(2).unwrap();
        assert_eq!(tail.frames.len(), 3);
        assert_eq!(tail.last_sequence, 5);
        assert_eq!(tail.stopped_early, None);
        // Frames are verbatim log bytes: they re-validate and re-decode.
        for (offset, frame) in tail.frames.iter().enumerate() {
            let (record, consumed) = codec::decode_record_prefix(frame).unwrap();
            assert_eq!(consumed, frame.len());
            assert_eq!(record.sequence, 3 + offset as u64);
        }
        // A watermark at (or past) the head yields an empty tail.
        assert_eq!(store.records_after(5).unwrap().frames.len(), 0);
        assert_eq!(store.records_after(99).unwrap().last_sequence, 99);
    }

    #[test]
    fn records_after_stops_cleanly_at_a_torn_tail() {
        let (_ca, service, store, _rng) = durable_world();
        for i in 0..3 {
            service.hello_at(&DeviceHello::new(&format!("dev-{i}")), Timestamp::new(0));
        }
        store.log().truncate_tail(5);
        let tail = store.records_after(0).unwrap();
        assert_eq!(tail.frames.len(), 2, "the torn record never ships");
        assert_eq!(tail.last_sequence, 2);
        assert!(tail.stopped_early.is_some());
        // A bit flip mid-record is caught by the CRC the same way.
        let (_ca, service, store, _rng) = durable_world();
        for i in 0..3 {
            service.hello_at(&DeviceHello::new(&format!("dev-{i}")), Timestamp::new(0));
        }
        let current = store.log().current_segment();
        store.log().mutate_segment(current, |bytes| {
            let last = bytes.len() - 10;
            bytes[last] ^= 0xFF;
        });
        let tail = store.records_after(0).unwrap();
        assert_eq!(tail.frames.len(), 2);
        assert!(tail.stopped_early.is_some());
    }

    #[test]
    fn segment_bytes_streams_the_valid_prefix_only() {
        let (_ca, service, store, _rng) = durable_world();
        for i in 0..3 {
            service.hello_at(&DeviceHello::new(&format!("dev-{i}")), Timestamp::new(0));
        }
        let segment = store.log().current_segment();
        let clean = store.segment_bytes(segment).unwrap().unwrap();
        assert_eq!(
            clean,
            store.log().read_segment(segment).unwrap(),
            "a clean segment streams whole"
        );
        store.log().truncate_tail(5);
        let torn = store.segment_bytes(segment).unwrap().unwrap();
        assert!(torn.len() < clean.len(), "the torn tail is cut off");
        assert!(clean.starts_with(&torn));
        assert_eq!(store.segment_bytes(segment + 17).unwrap(), None);
    }

    #[test]
    fn snapshot_blob_exposes_the_genesis_watermark() {
        let (_ca, service, store, _rng) = durable_world();
        let (blob, watermark) = store.snapshot_blob().unwrap().unwrap();
        assert_eq!(watermark, 0, "genesis covers nothing");
        let (image, _) = codec::decode_snapshot(&blob).unwrap();
        assert_eq!(image, service.state_image());
        service.hello_at(&DeviceHello::new("dev-0"), Timestamp::new(0));
        store.snapshot(&|| service.state_image()).unwrap();
        let (_, watermark) = store.snapshot_blob().unwrap().unwrap();
        assert_eq!(watermark, 1);
        assert_eq!(RiStore::in_memory().snapshot_blob().unwrap(), None);
    }

    #[test]
    fn corrupt_snapshot_is_an_error_not_a_panic() {
        let (_ca, _service, store, _rng) = durable_world();
        store.log().mutate_snapshot(|bytes| {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
        });
        assert!(matches!(
            store.load_with_report(),
            Err(StoreError::Corrupt(_))
        ));
    }
}
