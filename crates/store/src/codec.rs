//! Binary encodings of journal records and state snapshots.
//!
//! The discipline mirrors `oma_drm::wire`: encoding is canonical (one byte
//! string per value), decoding is *total* — every malformed input returns
//! [`StoreError::Corrupt`], never panics, and length fields are validated
//! before any allocation, so a hostile or bit-rotted log cannot blow up
//! recovery. On top of the wire-style field codec, every record and the
//! snapshot carry a CRC-32 over their payload: storage that lies (torn
//! writes, flipped bits) is *detected*, not merely tolerated.
//!
//! ```text
//! record   := u32 payload_len | u32 crc32(payload) | payload
//! payload  := u64 sequence | rng_after[32] | event
//! snapshot := "OMSS" | u8 version | u64 last_sequence
//!             | u32 payload_len | u32 crc32(payload) | payload = image
//! ```

use crate::StoreError;
use oma_bignum::BigUint;
use oma_crypto::rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
use oma_crypto::sha1::DIGEST_SIZE;
use oma_drm::domain::DomainId;
use oma_drm::journal::{
    ContentImage, DomainImage, RegisteredImage, RiEvent, RiStateImage, SessionImage,
};
use oma_drm::rel::{Constraint, Permission, Rights, RightsTemplate};
use oma_pki::ocsp::{CertificateStatus, OcspResponse, TbsOcspResponse};
use oma_pki::{Certificate, EntityRole, TbsCertificate, Timestamp, ValidityPeriod};

/// Magic + version prefix of a snapshot blob.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"OMSS";

/// Snapshot format version emitted by this implementation.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Upper bound on a record payload. Journal records are an event plus fixed
/// overhead — hundreds of bytes, a few KiB with a certificate — so anything
/// claiming more is corruption and is rejected before allocation.
pub const MAX_RECORD_LEN: usize = 1 << 20;

/// Fixed size of a record frame header (`payload_len` + `crc`).
pub const RECORD_HEADER_LEN: usize = 8;

/// Bytes of a record payload that precede the event (sequence + RNG
/// checkpoint).
pub const RECORD_PREFIX_LEN: usize = 8 + 32;

const TAG_CONTENT_ADDED: u8 = 1;
const TAG_SESSION_OPENED: u8 = 2;
const TAG_DEVICE_REGISTERED: u8 = 3;
const TAG_RO_ISSUED: u8 = 4;
const TAG_DOMAIN_CREATED: u8 = 5;
const TAG_DOMAIN_JOINED: u8 = 6;
const TAG_DOMAIN_LEFT: u8 = 7;
const TAG_OCSP_REFRESHED: u8 = 8;
const TAG_SESSIONS_SWEPT: u8 = 9;
const TAG_SESSION_TTL_SET: u8 = 10;

fn corrupt(what: &str) -> StoreError {
    StoreError::Corrupt(what.to_string())
}

// ----- CRC-32 ----------------------------------------------------------------

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = !0u32;
    for byte in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(*byte)) & 0xFF) as usize];
    }
    !crc
}

// ----- field encoders --------------------------------------------------------

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_timestamp(out: &mut Vec<u8>, t: Timestamp) {
    put_u64(out, t.seconds());
}

fn put_biguint(out: &mut Vec<u8>, n: &BigUint) {
    put_bytes(out, &n.to_bytes_be());
}

fn put_public_key(out: &mut Vec<u8>, key: &RsaPublicKey) {
    put_biguint(out, key.modulus());
    put_biguint(out, key.exponent());
}

fn put_certificate(out: &mut Vec<u8>, cert: &Certificate) {
    let tbs = cert.tbs();
    put_u64(out, tbs.serial);
    put_str(out, &tbs.issuer);
    put_str(out, &tbs.subject);
    out.push(tbs.role.code());
    put_public_key(out, &tbs.public_key);
    put_timestamp(out, tbs.validity.not_before());
    put_timestamp(out, tbs.validity.not_after());
    put_bytes(out, cert.signature().as_bytes());
}

fn put_ocsp(out: &mut Vec<u8>, ocsp: &OcspResponse) {
    let tbs = ocsp.tbs();
    put_str(out, &tbs.responder);
    put_u64(out, tbs.serial);
    out.push(tbs.status.code());
    put_timestamp(out, tbs.produced_at);
    put_bytes(out, &tbs.nonce);
    put_bytes(out, ocsp.signature().as_bytes());
}

fn put_rights(out: &mut Vec<u8>, rights: &Rights) {
    let grants = rights.grants();
    put_u32(out, grants.len() as u32);
    for grant in grants {
        out.push(grant.permission.code());
        match grant.constraint {
            Constraint::Unconstrained => out.push(0),
            Constraint::Count(n) => {
                out.push(1);
                put_u32(out, n);
            }
            Constraint::Datetime(window) => {
                out.push(2);
                put_timestamp(out, window.not_before());
                put_timestamp(out, window.not_after());
            }
            Constraint::Interval(secs) => {
                out.push(3);
                put_u64(out, secs);
            }
        }
    }
}

// ----- bounded reader --------------------------------------------------------

/// A bounds-checked cursor over one payload; every read validates lengths
/// before allocating, so arbitrary bytes can never panic the decoder.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.buf.len() - self.pos < n {
            return Err(corrupt("truncated field"));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn finish(&self) -> Result<(), StoreError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(corrupt("trailing bytes"))
        }
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, StoreError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn str(&mut self) -> Result<String, StoreError> {
        String::from_utf8(self.bytes()?).map_err(|_| corrupt("invalid utf-8"))
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], StoreError> {
        Ok(self.take(N)?.try_into().expect("fixed size"))
    }

    fn timestamp(&mut self) -> Result<Timestamp, StoreError> {
        Ok(Timestamp::new(self.u64()?))
    }

    fn validity(&mut self) -> Result<ValidityPeriod, StoreError> {
        let not_before = self.timestamp()?;
        let not_after = self.timestamp()?;
        if not_after < not_before {
            return Err(corrupt("inverted validity period"));
        }
        Ok(ValidityPeriod::new(not_before, not_after))
    }

    fn biguint(&mut self) -> Result<BigUint, StoreError> {
        Ok(BigUint::from_bytes_be(&self.bytes()?))
    }

    fn public_key(&mut self) -> Result<RsaPublicKey, StoreError> {
        let modulus = self.biguint()?;
        let exponent = self.biguint()?;
        Ok(RsaPublicKey::new(modulus, exponent))
    }

    fn role(&mut self) -> Result<EntityRole, StoreError> {
        Ok(match self.u8()? {
            0x01 => EntityRole::CertificationAuthority,
            0x02 => EntityRole::RightsIssuer,
            0x03 => EntityRole::DrmAgent,
            _ => return Err(corrupt("unknown entity role")),
        })
    }

    fn signature(&mut self) -> Result<oma_crypto::pss::PssSignature, StoreError> {
        Ok(oma_crypto::pss::PssSignature::from_bytes(self.bytes()?))
    }

    fn certificate(&mut self) -> Result<Certificate, StoreError> {
        let tbs = TbsCertificate {
            serial: self.u64()?,
            issuer: self.str()?,
            subject: self.str()?,
            role: self.role()?,
            public_key: self.public_key()?,
            validity: self.validity()?,
        };
        let signature = self.signature()?;
        Ok(Certificate::new(tbs, signature))
    }

    fn ocsp(&mut self) -> Result<OcspResponse, StoreError> {
        let tbs = TbsOcspResponse {
            responder: self.str()?,
            serial: self.u64()?,
            status: match self.u8()? {
                0x00 => CertificateStatus::Good,
                0x01 => CertificateStatus::Revoked,
                0x02 => CertificateStatus::Unknown,
                _ => return Err(corrupt("unknown certificate status")),
            },
            produced_at: self.timestamp()?,
            nonce: self.bytes()?,
        };
        let signature = self.signature()?;
        Ok(OcspResponse::new(tbs, signature))
    }

    fn rights(&mut self) -> Result<Rights, StoreError> {
        let count = self.u32()? as usize;
        let mut rights = Rights::new();
        for _ in 0..count {
            let permission = match self.u8()? {
                1 => Permission::Play,
                2 => Permission::Display,
                3 => Permission::Execute,
                4 => Permission::Print,
                5 => Permission::Export,
                _ => return Err(corrupt("unknown permission")),
            };
            let constraint = match self.u8()? {
                0 => Constraint::Unconstrained,
                1 => Constraint::Count(self.u32()?),
                2 => Constraint::Datetime(self.validity()?),
                3 => Constraint::Interval(self.u64()?),
                _ => return Err(corrupt("unknown constraint")),
            };
            rights = rights.grant(permission, constraint);
        }
        Ok(rights)
    }
}

// ----- events ----------------------------------------------------------------

/// Encodes one event (the tail of a record payload).
pub fn encode_event(event: &RiEvent) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match event {
        RiEvent::ContentAdded {
            content_id,
            cek,
            dcf_hash,
            template,
        } => {
            out.push(TAG_CONTENT_ADDED);
            put_str(&mut out, content_id);
            out.extend_from_slice(cek);
            out.extend_from_slice(dcf_hash);
            put_rights(&mut out, template.rights());
        }
        RiEvent::SessionOpened {
            session_id,
            device_id,
            ri_nonce,
            opened_at,
        } => {
            out.push(TAG_SESSION_OPENED);
            put_u64(&mut out, *session_id);
            put_str(&mut out, device_id);
            put_bytes(&mut out, ri_nonce);
            put_timestamp(&mut out, *opened_at);
        }
        RiEvent::DeviceRegistered {
            session_id,
            device_id,
            certificate,
        } => {
            out.push(TAG_DEVICE_REGISTERED);
            put_u64(&mut out, *session_id);
            put_str(&mut out, device_id);
            put_certificate(&mut out, certificate);
        }
        RiEvent::RoIssued { scope, sequence } => {
            out.push(TAG_RO_ISSUED);
            put_str(&mut out, scope);
            put_u64(&mut out, *sequence);
        }
        RiEvent::DomainCreated {
            domain_id,
            key,
            max_members,
        } => {
            out.push(TAG_DOMAIN_CREATED);
            put_str(&mut out, domain_id.as_str());
            out.extend_from_slice(key);
            put_u64(&mut out, *max_members);
        }
        RiEvent::DomainJoined {
            domain_id,
            device_id,
            key,
            generation,
            max_members,
        } => {
            out.push(TAG_DOMAIN_JOINED);
            put_str(&mut out, domain_id.as_str());
            put_str(&mut out, device_id);
            out.extend_from_slice(key);
            put_u32(&mut out, *generation);
            put_u64(&mut out, *max_members);
        }
        RiEvent::DomainLeft {
            domain_id,
            device_id,
        } => {
            out.push(TAG_DOMAIN_LEFT);
            put_str(&mut out, domain_id.as_str());
            put_str(&mut out, device_id);
        }
        RiEvent::OcspRefreshed { response } => {
            out.push(TAG_OCSP_REFRESHED);
            put_ocsp(&mut out, response);
        }
        RiEvent::SessionsSwept { now, session_ids } => {
            out.push(TAG_SESSIONS_SWEPT);
            put_timestamp(&mut out, *now);
            put_u32(&mut out, session_ids.len() as u32);
            for id in session_ids {
                put_u64(&mut out, *id);
            }
        }
        RiEvent::SessionTtlSet { seconds } => {
            out.push(TAG_SESSION_TTL_SET);
            put_u64(&mut out, *seconds);
        }
    }
    out
}

fn decode_event(r: &mut Reader<'_>) -> Result<RiEvent, StoreError> {
    Ok(match r.u8()? {
        TAG_CONTENT_ADDED => RiEvent::ContentAdded {
            content_id: r.str()?,
            cek: r.array()?,
            dcf_hash: r.array::<DIGEST_SIZE>()?,
            template: RightsTemplate::from_rights(r.rights()?),
        },
        TAG_SESSION_OPENED => RiEvent::SessionOpened {
            session_id: r.u64()?,
            device_id: r.str()?,
            ri_nonce: r.bytes()?,
            opened_at: r.timestamp()?,
        },
        TAG_DEVICE_REGISTERED => RiEvent::DeviceRegistered {
            session_id: r.u64()?,
            device_id: r.str()?,
            certificate: r.certificate()?,
        },
        TAG_RO_ISSUED => RiEvent::RoIssued {
            scope: r.str()?,
            sequence: r.u64()?,
        },
        TAG_DOMAIN_CREATED => RiEvent::DomainCreated {
            domain_id: DomainId::new(&r.str()?),
            key: r.array()?,
            max_members: r.u64()?,
        },
        TAG_DOMAIN_JOINED => RiEvent::DomainJoined {
            domain_id: DomainId::new(&r.str()?),
            device_id: r.str()?,
            key: r.array()?,
            generation: r.u32()?,
            max_members: r.u64()?,
        },
        TAG_DOMAIN_LEFT => RiEvent::DomainLeft {
            domain_id: DomainId::new(&r.str()?),
            device_id: r.str()?,
        },
        TAG_OCSP_REFRESHED => RiEvent::OcspRefreshed {
            response: r.ocsp()?,
        },
        TAG_SESSIONS_SWEPT => RiEvent::SessionsSwept {
            now: r.timestamp()?,
            session_ids: {
                let count = r.u32()? as usize;
                let mut ids = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    ids.push(r.u64()?);
                }
                ids
            },
        },
        TAG_SESSION_TTL_SET => RiEvent::SessionTtlSet { seconds: r.u64()? },
        _ => return Err(corrupt("unknown event tag")),
    })
}

// ----- records ---------------------------------------------------------------

/// One decoded journal record.
#[derive(Clone, PartialEq, Eq)]
pub struct Record {
    /// Monotonic sequence number assigned at append time.
    pub sequence: u64,
    /// Engine RNG checkpoint captured right after the event committed.
    pub rng_after: [u8; 32],
    /// The state mutation itself.
    pub event: RiEvent,
}

impl std::fmt::Debug for Record {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The RNG checkpoint predicts every future nonce and salt; keep it
        // out of debug output like all other key material.
        f.debug_struct("Record")
            .field("sequence", &self.sequence)
            .field("rng_after", &"<redacted>")
            .field("event", &self.event)
            .finish()
    }
}

/// Encodes one record into its CRC-framed wire form.
pub fn encode_record(record: &Record) -> Vec<u8> {
    // No size assertion here: the encoder is total, and the append path
    // (`RiStore`) enforces `MAX_RECORD_LEN` as a hard, latched error — a
    // record no decoder would accept must never reach the log.
    let mut payload = Vec::with_capacity(RECORD_PREFIX_LEN + 64);
    put_u64(&mut payload, record.sequence);
    payload.extend_from_slice(&record.rng_after);
    payload.extend_from_slice(&encode_event(&record.event));
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Decodes one record from the front of `stream`, returning it and the
/// bytes it occupied.
///
/// # Errors
///
/// [`StoreError::Corrupt`] for truncation, an oversized or lying length
/// field, a CRC mismatch, or an undecodable event — the caller treats any
/// of these as the end of the valid log.
pub fn decode_record_prefix(stream: &[u8]) -> Result<(Record, usize), StoreError> {
    if stream.len() < RECORD_HEADER_LEN {
        return Err(corrupt("truncated record header"));
    }
    let len = u32::from_be_bytes(stream[0..4].try_into().expect("4")) as usize;
    if len > MAX_RECORD_LEN {
        return Err(corrupt("record length exceeds cap"));
    }
    if len < RECORD_PREFIX_LEN {
        return Err(corrupt("record shorter than its fixed prefix"));
    }
    let expected_crc = u32::from_be_bytes(stream[4..8].try_into().expect("4"));
    let rest = &stream[RECORD_HEADER_LEN..];
    if rest.len() < len {
        return Err(corrupt("truncated record payload"));
    }
    let payload = &rest[..len];
    if crc32(payload) != expected_crc {
        return Err(corrupt("record crc mismatch"));
    }
    let mut r = Reader::new(payload);
    let sequence = r.u64()?;
    let rng_after = r.array()?;
    let event = decode_event(&mut r)?;
    r.finish()?;
    Ok((
        Record {
            sequence,
            rng_after,
            event,
        },
        RECORD_HEADER_LEN + len,
    ))
}

// ----- snapshots -------------------------------------------------------------

/// Encodes a full state image (the payload of a snapshot blob).
pub fn encode_image(image: &RiStateImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    put_str(&mut out, &image.id);
    let private = image.keys.private();
    let (p, q) = private.primes();
    put_public_key(&mut out, image.keys.public());
    put_biguint(&mut out, private.d());
    put_biguint(&mut out, p);
    put_biguint(&mut out, q);
    put_certificate(&mut out, &image.certificate);
    put_certificate(&mut out, &image.ca_root);
    put_ocsp(&mut out, &image.ocsp);
    put_u64(&mut out, image.next_session);
    put_u64(&mut out, image.issued_ros);
    put_u64(&mut out, image.session_ttl);
    put_u32(&mut out, image.sessions.len() as u32);
    for session in &image.sessions {
        put_u64(&mut out, session.session_id);
        put_str(&mut out, &session.device_id);
        put_bytes(&mut out, &session.ri_nonce);
        put_timestamp(&mut out, session.opened_at);
    }
    put_u32(&mut out, image.registered.len() as u32);
    for device in &image.registered {
        put_str(&mut out, &device.device_id);
        put_certificate(&mut out, &device.certificate);
    }
    put_u32(&mut out, image.content.len() as u32);
    for content in &image.content {
        put_str(&mut out, &content.content_id);
        out.extend_from_slice(&content.cek);
        out.extend_from_slice(&content.dcf_hash);
        put_rights(&mut out, content.template.rights());
    }
    put_u32(&mut out, image.domains.len() as u32);
    for domain in &image.domains {
        put_str(&mut out, domain.domain_id.as_str());
        out.extend_from_slice(&domain.key);
        put_u32(&mut out, domain.generation);
        put_u64(&mut out, domain.max_members);
        put_u32(&mut out, domain.members.len() as u32);
        for member in &domain.members {
            put_str(&mut out, member);
        }
    }
    put_u32(&mut out, image.ro_sequences.len() as u32);
    for (scope, next) in &image.ro_sequences {
        put_str(&mut out, scope);
        put_u64(&mut out, *next);
    }
    out.extend_from_slice(&image.rng_state);
    out
}

/// Decodes a state image (the inverse of [`encode_image`]).
///
/// # Errors
///
/// [`StoreError::Corrupt`] for any malformed input, including RSA key
/// components that do not form a consistent key.
pub fn decode_image(bytes: &[u8]) -> Result<RiStateImage, StoreError> {
    let mut r = Reader::new(bytes);
    let id = r.str()?;
    let public = r.public_key()?;
    let d = r.biguint()?;
    let p = r.biguint()?;
    let q = r.biguint()?;
    let private = RsaPrivateKey::from_components(public, d, p, q)
        .map_err(|_| corrupt("inconsistent RSA key components"))?;
    let keys = RsaKeyPair::from_private(private);
    let certificate = r.certificate()?;
    let ca_root = r.certificate()?;
    let ocsp = r.ocsp()?;
    let next_session = r.u64()?;
    let issued_ros = r.u64()?;
    let session_ttl = r.u64()?;
    let count = r.u32()? as usize;
    let mut sessions = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        sessions.push(SessionImage {
            session_id: r.u64()?,
            device_id: r.str()?,
            ri_nonce: r.bytes()?,
            opened_at: r.timestamp()?,
        });
    }
    let count = r.u32()? as usize;
    let mut registered = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        registered.push(RegisteredImage {
            device_id: r.str()?,
            certificate: r.certificate()?,
        });
    }
    let count = r.u32()? as usize;
    let mut content = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        content.push(ContentImage {
            content_id: r.str()?,
            cek: r.array()?,
            dcf_hash: r.array::<DIGEST_SIZE>()?,
            template: RightsTemplate::from_rights(r.rights()?),
        });
    }
    let count = r.u32()? as usize;
    let mut domains = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let domain_id = DomainId::new(&r.str()?);
        let key = r.array()?;
        let generation = r.u32()?;
        let max_members = r.u64()?;
        let member_count = r.u32()? as usize;
        let mut members = Vec::with_capacity(member_count.min(1024));
        for _ in 0..member_count {
            members.push(r.str()?);
        }
        domains.push(DomainImage {
            domain_id,
            key,
            generation,
            max_members,
            members,
        });
    }
    let count = r.u32()? as usize;
    let mut ro_sequences = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        ro_sequences.push((r.str()?, r.u64()?));
    }
    let rng_state = r.array()?;
    r.finish()?;
    Ok(RiStateImage {
        id,
        keys,
        certificate,
        ca_root,
        ocsp,
        next_session,
        issued_ros,
        session_ttl,
        sessions,
        registered,
        content,
        domains,
        ro_sequences,
        rng_state,
    })
}

/// Encodes a snapshot blob: header, coverage watermark and CRC-protected
/// image payload.
pub fn encode_snapshot(image: &RiStateImage, last_sequence: u64) -> Vec<u8> {
    let payload = encode_image(image);
    let mut out = Vec::with_capacity(17 + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.push(SNAPSHOT_VERSION);
    put_u64(&mut out, last_sequence);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Decodes a snapshot blob, returning the image and the sequence number of
/// the last journal record it covers.
///
/// # Errors
///
/// [`StoreError::Corrupt`] for a bad magic/version, length, CRC or image.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(RiStateImage, u64), StoreError> {
    if bytes.len() < 21 {
        return Err(corrupt("truncated snapshot header"));
    }
    if bytes[0..4] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad snapshot magic"));
    }
    if bytes[4] != SNAPSHOT_VERSION {
        return Err(corrupt("unsupported snapshot version"));
    }
    let last_sequence = u64::from_be_bytes(bytes[5..13].try_into().expect("8"));
    let len = u32::from_be_bytes(bytes[13..17].try_into().expect("4")) as usize;
    let expected_crc = u32::from_be_bytes(bytes[17..21].try_into().expect("4"));
    let payload = &bytes[21..];
    if payload.len() != len {
        return Err(corrupt("snapshot length mismatch"));
    }
    if crc32(payload) != expected_crc {
        return Err(corrupt("snapshot crc mismatch"));
    }
    Ok((decode_image(payload)?, last_sequence))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn event_roundtrip_simple_variants() {
        let events = [
            RiEvent::RoIssued {
                scope: "dev:phone-001".into(),
                sequence: 7,
            },
            RiEvent::DomainCreated {
                domain_id: DomainId::new("family"),
                key: [3; 16],
                max_members: 4,
            },
            RiEvent::DomainJoined {
                domain_id: DomainId::new("family"),
                device_id: "phone-001".into(),
                key: [5; 16],
                generation: 1,
                max_members: 4,
            },
            RiEvent::DomainLeft {
                domain_id: DomainId::new("family"),
                device_id: "phone-001".into(),
            },
            RiEvent::SessionsSwept {
                now: Timestamp::new(1_000),
                session_ids: vec![3, 5, 8],
            },
            RiEvent::SessionOpened {
                session_id: 42,
                device_id: "phone-001".into(),
                ri_nonce: vec![7; 14],
                opened_at: Timestamp::new(5),
            },
        ];
        for event in events {
            let record = Record {
                sequence: 9,
                rng_after: [0xAB; 32],
                event: event.clone(),
            };
            let encoded = encode_record(&record);
            let (decoded, consumed) = decode_record_prefix(&encoded).unwrap();
            assert_eq!(consumed, encoded.len());
            assert_eq!(decoded, record, "event {event:?}");
        }
    }

    #[test]
    fn record_corruption_is_detected() {
        let record = Record {
            sequence: 1,
            rng_after: [0; 32],
            event: RiEvent::RoIssued {
                scope: "dev:a".into(),
                sequence: 0,
            },
        };
        let encoded = encode_record(&record);
        // Every single-bit flip anywhere in the record is caught (by the
        // length check, the CRC, or the event decoder).
        for byte in 0..encoded.len() {
            let mut bad = encoded.clone();
            bad[byte] ^= 1;
            let outcome = decode_record_prefix(&bad);
            if byte < 4 {
                // A flipped length bit may still describe a longer frame —
                // then the *caller's* buffer ends first (truncation) — or a
                // shorter one, which breaks the CRC. Either way: an error.
                assert!(outcome.is_err(), "flip in length field went unnoticed");
            } else {
                assert!(outcome.is_err(), "flip at byte {byte} went unnoticed");
            }
        }
        // Truncation at every point is an error, never a panic.
        for cut in 0..encoded.len() {
            assert!(decode_record_prefix(&encoded[..cut]).is_err());
        }
    }

    #[test]
    fn hostile_length_rejected_before_allocation() {
        let mut bytes = vec![0u8; RECORD_HEADER_LEN];
        bytes[0..4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            decode_record_prefix(&bytes),
            Err(StoreError::Corrupt("record length exceeds cap".into()))
        );
    }
}
